"""Typed, frozen trace-event records and their wire schema.

Every observable moment in the simulator maps to exactly one record
class below.  Records are frozen dataclasses: producers build them,
sinks serialize them, and nothing in between may mutate them — a trace
is a statement of what happened, not a scratchpad.

Each class declares its *topic*, the subscription unit of the
:class:`~repro.obs.bus.TraceBus`:

========== ==========================================================
topic      produced by
========== ==========================================================
packet     :class:`~repro.netsim.link.Link` per transmitted packet
queue      every :class:`~repro.netsim.queues.QueueDisc` drop
lbf        :class:`~repro.core.queue_disc.CebinaeQueueDisc` admission
           (delay / drop / ECN mark), rotation, fail-open transitions
hashpipe   :class:`~repro.heavyhitter.hashpipe.CebinaeFlowCache`
           insert / hit / uncounted outcomes
control    :class:`~repro.core.control_plane.CebinaeControlPlane`
           per-``dT``-round records (rates, membership, saturation,
           fail-open verdicts)
tcp        :class:`~repro.tcp.socket.TcpSender` cwnd samples and
           state transitions
fault      :class:`~repro.faults.schedule.FaultSchedule` structural
           events (folded from ``repro.netsim.tracing.FaultEvent``)
span       :mod:`repro.obs.spans` lifecycle spans (sweep → shard →
           task → run → phase / engine / control round), one record
           per *closed* span
========== ==========================================================

Determinism rules (see DESIGN.md §11): every field is derived from
simulation state only — integer-nanosecond times, flow ids rendered
with ``str(FlowId)``, and any set-valued field (⊤ membership) sorted
before it enters the frozen record.  Two runs with the same seed emit
byte-identical event streams on every scheduler backend.

One documented exception: :class:`SpanEvent.wall_s` measures host
wall-clock time by design (spans exist to explain where wall-clock
goes).  :data:`NONDETERMINISTIC_FIELDS` names such fields and
:func:`canonical_dict` strips them, so byte-identity checks compare
everything *except* the wall readings.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Mapping, Tuple, Type

#: Version of the JSONL record layout.  Bump when a field is renamed,
#: retyped, or removed (additions are backward compatible).  Version 2
#: added the ``span`` topic and :class:`SpanEvent`.
TRACE_SCHEMA_VERSION = 2

#: Every topic the bus accepts, in documentation order.
TOPICS: Tuple[str, ...] = ("packet", "queue", "lbf", "hashpipe",
                           "control", "tcp", "fault", "span")


@dataclass(frozen=True)
class TraceRecord:
    """Base class: a timestamped, topic-tagged, immutable record."""

    topic: ClassVar[str] = ""
    time_ns: int

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready payload including ``topic`` and ``type`` tags."""
        data: Dict[str, Any] = {"topic": self.topic,
                                "type": type(self).__name__}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, tuple):
                value = list(value)
            data[field.name] = value
        return data


@dataclass(frozen=True)
class PacketTx(TraceRecord):
    """One packet finished serializing onto a port's wire."""

    topic: ClassVar[str] = "packet"
    port: str = ""
    flow: str = ""
    ptype: str = "data"
    size_bytes: int = 0
    seq: int = 0
    ack: int = 0
    ecn: str = "NOT_ECT"


@dataclass(frozen=True)
class QueueDrop(TraceRecord):
    """A queue disc refused or discarded a packet."""

    topic: ClassVar[str] = "queue"
    port: str = ""
    reason: str = "tail"
    flow: str = ""
    size_bytes: int = 0


@dataclass(frozen=True)
class LbfDecisionEvent(TraceRecord):
    """An LBF admission outcome that shaped traffic (delay/drop/mark)."""

    topic: ClassVar[str] = "lbf"
    port: str = ""
    kind: str = "delay"  # delay | drop | mark | failopen_enqueue
    flow: str = ""
    group: str = ""      # top | bottom | aggregate
    size_bytes: int = 0
    queue_index: int = -1


@dataclass(frozen=True)
class LbfRotation(TraceRecord):
    """A ``dT`` queue rotation at one port."""

    topic: ClassVar[str] = "lbf"
    port: str = ""
    kind: str = "rotate"
    rotation: int = 0
    retired_queue: int = 0
    residue_packets: int = 0


@dataclass(frozen=True)
class CacheUpdate(TraceRecord):
    """One flow-cache update outcome (HashPipe-style stage walk)."""

    topic: ClassVar[str] = "hashpipe"
    port: str = ""
    action: str = "hit"  # insert | hit | uncounted
    flow: str = ""
    stage: int = -1
    nbytes: int = 0


@dataclass(frozen=True)
class ControlRound(TraceRecord):
    """One control-plane round: what the agent programmed (or failed to).

    ``kind`` is ``config`` for a normally applied reconfiguration,
    ``fail_open`` when the deadline passed and the port degraded, and
    ``missed`` when a dropped reconfiguration left the round
    unprogrammed without fail-open protection.  ``top_flows`` is sorted
    so records are byte-stable across processes.
    """

    topic: ClassVar[str] = "control"
    port: str = ""
    kind: str = "config"  # config | fail_open | missed
    round_index: int = 0
    retired_queue: int = -1
    saturated: bool = False
    utilization: float = 0.0
    top_rate_bytes_per_sec: float = 0.0
    bottom_rate_bytes_per_sec: float = 0.0
    top_flows: Tuple[str, ...] = ()
    recomputed: bool = False
    fail_open: bool = False


@dataclass(frozen=True)
class TcpStateEvent(TraceRecord):
    """A sender-side cwnd sample or state transition."""

    topic: ClassVar[str] = "tcp"
    flow: str = ""
    kind: str = "cwnd"  # start | cwnd | fast_recovery | exit_recovery
                        # | rto | ecn_backoff | complete
    cwnd_bytes: float = 0.0
    snd_una: int = 0
    snd_nxt: int = 0


@dataclass(frozen=True)
class FaultTraceEvent(TraceRecord):
    """A structural fault, mirrored from ``FaultSchedule``'s timeline."""

    topic: ClassVar[str] = "fault"
    kind: str = "link_down"
    target: str = ""


@dataclass(frozen=True)
class SpanEvent(TraceRecord):
    """One closed lifecycle span (see :mod:`repro.obs.spans`).

    Emitted exactly once, when the span *closes*: ``start_ns`` is the
    simulation clock at open and the inherited ``time_ns`` the clock
    at close (both 0 for host-level spans — sweep/shard/task — that
    run outside any one simulation).  ``span_id`` and ``parent_id``
    are deterministic tree-position digests
    (:func:`repro.obs.spans.derive_span_id`), so identical runs yield
    identical trees.  ``wall_s`` is the host wall-clock duration — the
    single nondeterministic field in the whole schema (see
    :data:`NONDETERMINISTIC_FIELDS`).  ``count`` is the span's natural
    volume unit: executed events for run/engine spans, fluid epochs
    for the fluid phase, completed tasks for sweep-level spans.
    """

    topic: ClassVar[str] = "span"
    span_id: str = ""
    parent_id: str = ""
    kind: str = "phase"  # sweep | shard | task | run | phase
                         # | engine | round
    name: str = ""
    start_ns: int = 0
    wall_s: float = 0.0
    count: int = 0
    status: str = "ok"   # ok | error


#: Registry of record classes by ``type`` tag, for schema validation.
RECORD_TYPES: Dict[str, Type[TraceRecord]] = {
    cls.__name__: cls
    for cls in (PacketTx, QueueDrop, LbfDecisionEvent, LbfRotation,
                CacheUpdate, ControlRound, TcpStateEvent,
                FaultTraceEvent, SpanEvent)
}

#: Record fields whose values come from host wall clocks rather than
#: simulation state, by record type.  Byte-identity comparisons strip
#: them via :func:`canonical_dict`; every other field of every record
#: is covered by the determinism contract.
NONDETERMINISTIC_FIELDS: Dict[str, Tuple[str, ...]] = {
    "SpanEvent": ("wall_s",),
}


def canonical_dict(data: Mapping[str, Any]) -> Dict[str, Any]:
    """``data`` minus its nondeterministic (wall-clock) fields."""
    drop = NONDETERMINISTIC_FIELDS.get(str(data.get("type")), ())
    if not drop:
        return dict(data)
    return {key: value for key, value in data.items()
            if key not in drop}

#: Python-type → the JSON primitive(s) it may serialize to.
_FIELD_JSON_TYPES: Dict[str, Tuple[type, ...]] = {
    "int": (int,),
    "str": (str,),
    "bool": (bool,),
    "float": (int, float),
    "Tuple[str, ...]": (list,),
}


def record_schema(cls: Type[TraceRecord]) -> Dict[str, Tuple[type, ...]]:
    """The required-field schema of one record class."""
    schema: Dict[str, Tuple[type, ...]] = {}
    for field in dataclasses.fields(cls):
        type_name = field.type if isinstance(field.type, str) else \
            getattr(field.type, "__name__", str(field.type))
        schema[field.name] = _FIELD_JSON_TYPES.get(type_name, (object,))
    return schema


class SchemaError(ValueError):
    """A serialized trace record does not match the event schema."""


def validate_record(data: Mapping[str, Any]) -> Type[TraceRecord]:
    """Check one decoded JSONL record against the schema.

    Returns the record class on success; raises :class:`SchemaError`
    with a precise complaint otherwise.  Unknown extra keys are
    rejected too — the schema is the contract CI replays against.
    """
    type_name = data.get("type")
    if not isinstance(type_name, str) or type_name not in RECORD_TYPES:
        raise SchemaError(f"unknown record type {type_name!r}")
    cls = RECORD_TYPES[type_name]
    if data.get("topic") != cls.topic:
        raise SchemaError(
            f"{type_name}: topic {data.get('topic')!r} != {cls.topic!r}")
    schema = record_schema(cls)
    for name, allowed in schema.items():
        if name not in data:
            raise SchemaError(f"{type_name}: missing field {name!r}")
        value = data[name]
        if object not in allowed and not isinstance(value, allowed):
            # bool is an int subclass; reject it where ints are expected.
            raise SchemaError(
                f"{type_name}.{name}: {type(value).__name__} is not "
                f"one of {[t.__name__ for t in allowed]}")
        if allowed == (int,) and isinstance(value, bool):
            raise SchemaError(f"{type_name}.{name}: bool is not int")
    extras = set(data) - set(schema) - {"topic", "type"}
    if extras:
        raise SchemaError(f"{type_name}: unexpected fields {sorted(extras)}")
    return cls


def sorted_flow_strings(flows: Any) -> Tuple[str, ...]:
    """Render a set of FlowIds as a sorted, hashable string tuple."""
    rendered: List[str] = [str(flow) for flow in flows]
    rendered.sort()
    return tuple(rendered)
