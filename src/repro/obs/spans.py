"""Hierarchical lifecycle spans: where wall-clock goes inside a run.

A span covers one phase of the fleet's lifecycle — outermost to
innermost: ``sweep`` (one worker process) → ``shard`` (one lease) →
``task`` (one manifest entry) → ``run`` (one scenario execution) →
``phase`` (warmup / stability-probe / fluid-epoch / drain), with
``engine`` spans for each ``Simulator.run`` and ``round`` leaf spans
for individual control-plane rounds nested below.  Every span records
both clocks: ``start_ns``/``time_ns`` are simulation time (0 for
host-level spans with no live simulation), ``wall_s`` is host
wall-clock — the one field the determinism contract explicitly
excludes (see :data:`repro.obs.events.NONDETERMINISTIC_FIELDS`).

**Zero-cost-off contract** (same as the bus, DESIGN.md §11):
:func:`open_span` consults :func:`repro.obs.bus.emitter_for` and
returns ``None`` when no bus carries the ``span`` topic, so producers
pay one ``is not None`` test per span boundary — and span boundaries
are per *run/phase/round*, never per event.  No bus ⇒ the identical
instruction stream as before this module existed.

**Deterministic ids**: a span's id is a digest of its *position in the
tree* — parent id, kind, name, and its index among the parent's
children (:func:`derive_span_id`) — not of process history or clocks.
Two identical runs therefore emit identical trees with identical ids,
which is what lets the CI obs-smoke job compare span streams byte-wise
(after stripping ``wall_s``).

Spans are process-global and single-threaded like the bus itself: the
open-span stack lives at module level, producers open/close in strict
LIFO order (the :func:`span` context manager guarantees it), and
:func:`close_span` pops any orphans left by an exception unwinding
through abandoned children.
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager
from typing import (Any, Dict, Iterable, Iterator, List, Mapping,
                    Optional)

from . import bus as obs_bus
from .events import SpanEvent

#: The span kinds, outermost to innermost.
SPAN_KINDS = ("sweep", "shard", "task", "run", "phase", "engine",
              "round")

#: The run phases the runner partitions execution into.  Packet-backend
#: runs are a single ``drain``; hybrid runs go ``warmup`` →
#: ``stability-probe``* → (``fluid-epoch`` | ``drain``).
RUN_PHASES = ("warmup", "stability-probe", "fluid-epoch", "drain")

#: Hex digits of the sha256 tree-position digest kept as a span id.
SPAN_ID_HEX = 16


def wall_now() -> float:
    """The blessed wall reading for span durations.

    Host-side observability only: the value lands in
    ``SpanEvent.wall_s`` and never flows back into simulation state.
    """
    return time.monotonic()  # simlint: allow[D103] span wall-clock durations


def derive_span_id(parent_id: str, kind: str, name: str,
                   index: int) -> str:
    """A deterministic id from the span's position in the tree.

    ``index`` is the span's ordinal among its parent's children (roots
    use 0 and ``parent_id=""``), so the id depends only on tree shape:
    reruns — in the same process or across processes — yield the same
    ids for the same execution structure.
    """
    text = f"{parent_id}/{kind}:{name}#{index}"
    return hashlib.sha256(
        text.encode("utf-8")).hexdigest()[:SPAN_ID_HEX]


class SpanHandle:
    """One *open* span: mutable bookkeeping until :func:`close_span`.

    Producers may set :attr:`count` (the span's volume unit) any time
    before close; everything else is fixed at open.
    """

    __slots__ = ("emit", "span_id", "parent_id", "kind", "name",
                 "start_ns", "sim_clock", "count", "wall_start",
                 "children", "closed")

    def __init__(self, emit: obs_bus.Emitter, span_id: str,
                 parent_id: str, kind: str, name: str, start_ns: int,
                 sim_clock: bool) -> None:
        self.emit = emit
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.name = name
        self.start_ns = start_ns
        self.sim_clock = sim_clock
        self.count = 0
        self.wall_start = wall_now()
        #: How many children this span has allocated ids for.
        self.children = 0
        self.closed = False

    def next_child(self) -> int:
        """Allocate the next child index (ids depend on it)."""
        index = self.children
        self.children += 1
        return index


#: The open-span stack of this process (innermost last).
_STACK: List[SpanHandle] = []


def enabled() -> bool:
    """True when an installed bus has a ``span`` subscriber."""
    return obs_bus.emitter_for("span") is not None


def current_id() -> str:
    """The innermost open span's id (``""`` at the root)."""
    return _STACK[-1].span_id if _STACK else ""


def open_span(kind: str, name: str,
              sim_clock: bool = True) -> Optional[SpanHandle]:
    """Open a span; None when the span topic is off (zero-cost path).

    ``sim_clock=False`` marks a host-level span (sweep/shard/task)
    whose sim times stay 0 — there is no single simulation clock to
    read at that level.
    """
    emit = obs_bus.emitter_for("span")
    if emit is None:
        return None
    bus = obs_bus.current()
    parent = _STACK[-1] if _STACK else None
    parent_id = parent.span_id if parent is not None else ""
    index = parent.next_child() if parent is not None else 0
    start_ns = bus.now_ns() if (sim_clock and bus is not None) else 0
    handle = SpanHandle(
        emit=emit,
        span_id=derive_span_id(parent_id, kind, name, index),
        parent_id=parent_id, kind=kind, name=name,
        start_ns=start_ns, sim_clock=sim_clock)
    _STACK.append(handle)
    return handle


def close_span(handle: SpanHandle, status: str = "ok") -> None:
    """Close ``handle``, emitting its :class:`SpanEvent` (idempotent).

    Any still-open children above ``handle`` on the stack were
    abandoned by an exception; they are popped unemitted so the stack
    stays consistent for the next producer.
    """
    if handle.closed:
        return
    handle.closed = True
    while _STACK:
        top = _STACK.pop()
        if top is handle:
            break
    bus = obs_bus.current()
    end_ns = bus.now_ns() if (handle.sim_clock and bus is not None) \
        else handle.start_ns
    handle.emit(SpanEvent(
        time_ns=end_ns, span_id=handle.span_id,
        parent_id=handle.parent_id, kind=handle.kind,
        name=handle.name, start_ns=handle.start_ns,
        wall_s=wall_now() - handle.wall_start,
        count=handle.count, status=status))


@contextmanager
def span(kind: str, name: str,
         sim_clock: bool = True) -> Iterator[Optional[SpanHandle]]:
    """Scope a span around a block; yields None when spans are off.

    An exception unwinding through the block closes the span with
    ``status="error"`` and re-raises.
    """
    handle = open_span(kind, name, sim_clock=sim_clock)
    if handle is None:
        yield None
        return
    try:
        yield handle
    except BaseException:
        close_span(handle, status="error")
        raise
    close_span(handle)


def emit_leaf(emit: obs_bus.Emitter, kind: str, name: str,
              time_ns: int, wall_s: float, count: int = 0,
              status: str = "ok") -> None:
    """Emit a childless span directly, under the innermost open span.

    For producers whose unit of work is a single callback (the control
    plane's per-round apply): no stack frame is pushed, but the leaf
    still claims a child index from its parent so ids stay positional.
    """
    parent = _STACK[-1] if _STACK else None
    parent_id = parent.span_id if parent is not None else ""
    index = parent.next_child() if parent is not None else 0
    emit(SpanEvent(
        time_ns=time_ns,
        span_id=derive_span_id(parent_id, kind, name, index),
        parent_id=parent_id, kind=kind, name=name, start_ns=time_ns,
        wall_s=wall_s, count=count, status=status))


def span_tree(
        records: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Index decoded :class:`SpanEvent` dicts into a validated tree.

    Returns ``{"nodes": {span_id: node}, "roots": [span_id, ...]}``
    where each node is the record dict plus a ``children`` list of
    ids, both in emission order.  Raises :class:`ValueError` on
    duplicate ids or a non-empty ``parent_id`` that names no emitted
    span — the structural validity CI asserts.
    """
    nodes: Dict[str, Dict[str, Any]] = {}
    for data in records:
        if data.get("type") != "SpanEvent":
            continue
        span_id = str(data["span_id"])
        if span_id in nodes:
            raise ValueError(f"duplicate span id {span_id!r}")
        node = dict(data)
        node["children"] = []
        nodes[span_id] = node
    roots: List[str] = []
    for span_id, node in nodes.items():
        parent_id = str(node["parent_id"])
        if not parent_id:
            roots.append(span_id)
            continue
        parent = nodes.get(parent_id)
        if parent is None:
            raise ValueError(
                f"span {span_id!r} names unknown parent "
                f"{parent_id!r}")
        parent["children"].append(span_id)
    return {"nodes": nodes, "roots": roots}


__all__ = [
    "RUN_PHASES", "SPAN_ID_HEX", "SPAN_KINDS", "SpanHandle",
    "close_span", "current_id", "derive_span_id", "emit_leaf",
    "enabled", "open_span", "span", "span_tree", "wall_now",
]
