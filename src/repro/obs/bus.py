"""The trace bus: topic-routed event delivery with a zero-cost off state.

Architecture (mirrors :mod:`repro.netsim.profiling`): a module-level
*active* bus that instrumented components consult **once, at
construction time**.  Each component asks for an emitter for its topic:

* no bus installed, or no sink subscribed to the topic → the emitter is
  ``None`` and the component's per-event cost is a single
  ``is not None`` test on an instance attribute (the same pattern as
  ``Link._on_transmit``);
* a sink is subscribed → the emitter is a bound closure that fans the
  frozen record out to every sink, in subscription order.

Because binding happens at construction, the bus (with its sinks) must
be installed *before* the simulation is built — the obs CLI and the
tests do exactly that.  This is what makes the disabled path free: a
run without a bus executes the identical instruction stream it executed
before this subsystem existed, preserving byte-identical
``ScenarioResult`` JSON.

The bus never schedules events, draws randomness, or reads wall
clocks, so enabling it cannot perturb the simulation itself — only
observe it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (Any, Callable, Dict, Iterable, Iterator, List,
                    Optional, Protocol, Union)

from .events import TOPICS, TraceRecord

#: The signature components hold: ``emit(record)``.
Emitter = Callable[[TraceRecord], None]


class TraceSink(Protocol):
    """Anything that can accept (and eventually persist) records."""

    def accept(self, record: TraceRecord) -> None: ...

    def close(self) -> None: ...


class _SimClock(Protocol):
    """The slice of ``Simulator`` the bus needs (avoids an import cycle)."""

    @property
    def now_ns(self) -> int: ...


class TraceBus:
    """Topic-routed delivery of frozen trace records to sinks."""

    def __init__(self) -> None:
        self._sinks: Dict[str, List[TraceSink]] = {}
        self._all_sinks: List[TraceSink] = []
        self._clock: Optional[_SimClock] = None
        #: Events delivered per topic (cheap run summary; deterministic).
        self.counts: Dict[str, int] = {}

    # -- wiring ------------------------------------------------------------
    def subscribe(self, topics: Union[str, Iterable[str]],
                  sink: TraceSink) -> None:
        """Route ``topics`` (a name, or an iterable of names) to ``sink``."""
        if isinstance(topics, str):
            topics = (topics,)
        for topic in topics:
            if topic not in TOPICS:
                raise ValueError(
                    f"unknown trace topic {topic!r}; choose from "
                    f"{list(TOPICS)}")
            self._sinks.setdefault(topic, []).append(sink)
        if sink not in self._all_sinks:
            self._all_sinks.append(sink)

    def set_clock(self, sim: _SimClock) -> None:
        """Bind the simulation clock (for producers that lack a ``sim``)."""
        self._clock = sim

    def now_ns(self) -> int:
        """The bound simulation time, or 0 before a clock is bound."""
        clock = self._clock
        return clock.now_ns if clock is not None else 0

    def topics(self) -> List[str]:
        """The topics with at least one subscriber, in schema order."""
        return [topic for topic in TOPICS if self._sinks.get(topic)]

    # -- production --------------------------------------------------------
    def emitter(self, topic: str) -> Optional[Emitter]:
        """A per-topic emit closure, or None when the topic is off.

        Components bind the result to an instance attribute at
        construction; a ``None`` binding keeps their hot path at one
        attribute test per potential event.
        """
        if topic not in TOPICS:
            raise ValueError(f"unknown trace topic {topic!r}")
        sinks = self._sinks.get(topic)
        if not sinks:
            return None
        counts = self.counts

        def emit(record: TraceRecord) -> None:
            counts[topic] = counts.get(topic, 0) + 1
            for sink in sinks:
                sink.accept(record)

        return emit

    def close(self) -> None:
        """Flush and close every subscribed sink (idempotent per sink)."""
        for sink in self._all_sinks:
            sink.close()


#: The installed bus, consulted by components at construction time.
_ACTIVE: Optional[TraceBus] = None


def install(bus: TraceBus) -> TraceBus:
    """Make ``bus`` the active bus for subsequently built components."""
    global _ACTIVE
    _ACTIVE = bus
    return bus


def uninstall() -> Optional[TraceBus]:
    """Deactivate tracing; returns the previously active bus."""
    global _ACTIVE
    bus, _ACTIVE = _ACTIVE, None
    return bus


def current() -> Optional[TraceBus]:
    """The active bus, or None when tracing is disabled (the default)."""
    return _ACTIVE


def emitter_for(topic: str) -> Optional[Emitter]:
    """Shorthand used by instrumented constructors: active-bus emitter."""
    bus = _ACTIVE
    if bus is None:
        return None
    return bus.emitter(topic)


@contextmanager
def tracing(bus: TraceBus) -> Iterator[TraceBus]:
    """Scope a bus around simulation *construction and execution*."""
    install(bus)
    try:
        yield bus
    finally:
        uninstall()


def flow_str(flow: Any) -> str:
    """Canonical flow rendering shared by every producer."""
    return str(flow)
