"""``cebinae-repro trace <scenario>``: run one scenario with tracing on.

The one place in :mod:`repro.obs` allowed to import the experiments
layer (see the package docstring).  It builds a figure-class scenario,
installs a :class:`~repro.obs.bus.TraceBus` with file sinks *before*
the topology is constructed (the binding contract of the bus), runs the
scenario, and writes a deterministic artifact directory::

    <out>/result.json             the ScenarioResult payload
    <out>/trace.jsonl             one record per line, event order
    <out>/control_timeline.jsonl  the per-dT control rounds alone
    <out>/pkts_<port>.log         per-port packet logs (packet topic)
    <out>/spans.jsonl             lifecycle spans alone (span topic)
    <out>/metrics.json            registry snapshot (--metrics-json)

Every file is byte-identical across repeated runs with the same
arguments, on either scheduler backend — that is what the CI
``obs-smoke`` job replays.  Spans live in their own file because each
:class:`~repro.obs.events.SpanEvent` carries the schema's one
wall-clock field (``wall_s``): ``trace.jsonl`` keeps the raw
byte-identity guarantee, and ``spans.jsonl`` is byte-identical after
:func:`~repro.obs.events.canonical_dict` strips the wall readings.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from ..experiments.runner import Discipline, run_scenario
from ..experiments.scenarios import DEFAULT_POLICY, ScenarioSpec
from . import bus as obs_bus
from . import metrics as obs_metrics
from .events import TOPICS
from .sinks import (ControlTimelineSink, JsonlSpanSink, JsonlTraceSink,
                    PacketLogSink, _JSON_KWARGS)

#: Paper scenarios the trace CLI can rebuild (figure-9-class default).
SCENARIOS = ("figure1", "figure7", "figure9")


def build_spec(scenario: str, duration_s: float,
               rtt_ms: float) -> ScenarioSpec:
    """The paper-scale spec for one traceable scenario."""
    if scenario == "figure1":
        return ScenarioSpec(name="figure1", rate_bps=100e6,
                            rtts_ms=(20.4, 40.0), buffer_mtus=350,
                            cca_mix=(("newreno", 1), ("newreno", 1)),
                            duration_s=duration_s)
    if scenario == "figure7":
        return ScenarioSpec(name="figure7", rate_bps=100e6,
                            rtts_ms=(100,), buffer_mtus=850,
                            cca_mix=(("vegas", 16), ("newreno", 1)),
                            duration_s=duration_s)
    if scenario == "figure9":
        return ScenarioSpec(name=f"figure9_rtt{int(rtt_ms)}",
                            rate_bps=400e6,
                            rtts_ms=(256.0, float(rtt_ms)),
                            buffer_mtus=2000,
                            cca_mix=(("cubic", 4), ("cubic", 4)),
                            duration_s=duration_s)
    raise ValueError(f"unknown scenario {scenario!r}")


def parse_topics(spec: str) -> List[str]:
    """``--events`` parser: comma-separated topics, or ``all``."""
    if spec == "all":
        return list(TOPICS)
    topics = [token.strip() for token in spec.split(",") if token.strip()]
    for topic in topics:
        if topic not in TOPICS:
            raise argparse.ArgumentTypeError(
                f"unknown topic {topic!r}; choose from "
                f"{', '.join(TOPICS)} or 'all'")
    if not topics:
        raise argparse.ArgumentTypeError("no topics given")
    return topics


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cebinae-repro trace",
        description="Run one scenario with structured tracing enabled "
                    "and write deterministic JSONL/metrics artifacts.")
    parser.add_argument("scenario", choices=SCENARIOS)
    parser.add_argument("--discipline", default="cebinae",
                        choices=[d.value for d in Discipline])
    parser.add_argument("--events", type=parse_topics, default="all",
                        help="comma-separated trace topics "
                             f"({', '.join(TOPICS)}) or 'all'")
    parser.add_argument("--out", default="trace-out", metavar="DIR",
                        help="artifact directory (created if missing)")
    parser.add_argument("--metrics-json", action="store_true",
                        help="also snapshot the metrics registry to "
                             "<out>/metrics.json")
    parser.add_argument("--duration", type=float, default=10.0,
                        metavar="SECONDS")
    parser.add_argument("--rtt-ms", type=float, default=64.0,
                        help="figure9 only: the swept flow group's RTT")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    topics = args.events if isinstance(args.events, list) \
        else parse_topics(args.events)
    spec = build_spec(args.scenario, args.duration, args.rtt_ms)
    scaled = DEFAULT_POLICY.apply(spec)
    os.makedirs(args.out, exist_ok=True)

    bus = obs_bus.TraceBus()
    # Spans go to their own file (wall_s is nondeterministic by
    # design); everything else keeps trace.jsonl raw byte identity.
    trace_topics = [topic for topic in topics if topic != "span"]
    if trace_topics:
        bus.subscribe(trace_topics, JsonlTraceSink(
            os.path.join(args.out, "trace.jsonl")))
    if "span" in topics:
        bus.subscribe("span", JsonlSpanSink(
            os.path.join(args.out, "spans.jsonl")))
    if "packet" in topics:
        bus.subscribe("packet", PacketLogSink(args.out))
    timeline: Optional[ControlTimelineSink] = None
    if "control" in topics:
        timeline = ControlTimelineSink()
        bus.subscribe("control", timeline)

    registry = obs_metrics.enable()
    try:
        with obs_bus.tracing(bus):
            result = run_scenario(scaled, Discipline(args.discipline),
                                  collect_series=True,
                                  record_history=True, seed=args.seed)
    finally:
        obs_metrics.disable()
        bus.close()

    with open(os.path.join(args.out, "result.json"), "w",
              encoding="utf-8") as handle:
        json.dump(result.to_dict(), handle, **_JSON_KWARGS)
        handle.write("\n")
    if timeline is not None:
        timeline.write_jsonl(
            os.path.join(args.out, "control_timeline.jsonl"))
    if args.metrics_json:
        registry.write_json(os.path.join(args.out, "metrics.json"))

    print(f"{result.name} [{result.discipline.value}] "
          f"JFI={result.jfi:.3f} "
          f"throughput={result.throughput_bps / 1e6:.2f} Mbps "
          f"events={result.events}")
    delivered = ", ".join(f"{topic}={bus.counts[topic]}"
                          for topic in TOPICS if topic in bus.counts)
    print(f"trace records: {delivered or 'none'}")
    if timeline is not None and timeline.rounds:
        from ..experiments.report import control_timeline_report
        print(control_timeline_report(timeline.rounds,
                                      jfi_series=result.jfi_series()))
    print(f"[artifacts in {args.out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
