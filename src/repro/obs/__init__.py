"""repro.obs: stack-wide observability (trace bus, metrics, sinks).

Three pieces:

* :mod:`repro.obs.bus` — the :class:`~repro.obs.bus.TraceBus`, a
  topic-routed delivery path for typed, frozen trace records that is a
  no-op when no bus is installed (the default);
* :mod:`repro.obs.events` — the record taxonomy and JSONL schema;
* :mod:`repro.obs.metrics` — labelled counters/gauges/histograms with
  versioned JSON snapshots, absorbing the PR 3 hot-path profiler;
* :mod:`repro.obs.sinks` — deterministic JSONL traces, pcap-style
  per-port packet logs, span JSONL files, and the control-plane
  timeline the report layer prints next to JFI series;
* :mod:`repro.obs.spans` — hierarchical lifecycle spans (sweep →
  shard → task → run → phase / engine / round) with deterministic
  tree-position ids, carried on the bus's ``span`` topic;
* :mod:`repro.obs.aggregate` — cross-worker snapshot merging and the
  fleet view ``cebinae-repro sweep watch`` renders.

This package never imports the simulator or the experiments layer
(``repro.obs.cli`` is the one exception and must be imported
explicitly), so any component can depend on it without cycles.
"""

from . import aggregate, bus, events, metrics, sinks, spans
from .aggregate import AGGREGATE_SCHEMA_VERSION, fleet_view, merge_snapshots
from .bus import TraceBus, tracing
from .events import (TRACE_SCHEMA_VERSION, TOPICS, SchemaError,
                     SpanEvent, TraceRecord, canonical_dict,
                     validate_record)
from .metrics import METRICS_SCHEMA_VERSION, MetricsRegistry, collected
from .sinks import (ControlTimelineSink, JsonlSpanSink, JsonlTraceSink,
                    MemorySink, PacketLogSink)
from .spans import span, span_tree

__all__ = [
    "AGGREGATE_SCHEMA_VERSION", "METRICS_SCHEMA_VERSION", "TOPICS",
    "TRACE_SCHEMA_VERSION", "ControlTimelineSink", "JsonlSpanSink",
    "JsonlTraceSink", "MemorySink", "MetricsRegistry", "PacketLogSink",
    "SchemaError", "SpanEvent", "TraceBus", "TraceRecord", "aggregate",
    "bus", "canonical_dict", "collected", "events", "fleet_view",
    "merge_snapshots", "metrics", "sinks", "span", "span_tree",
    "spans", "tracing", "validate_record",
]
