"""repro.obs: stack-wide observability (trace bus, metrics, sinks).

Three pieces:

* :mod:`repro.obs.bus` — the :class:`~repro.obs.bus.TraceBus`, a
  topic-routed delivery path for typed, frozen trace records that is a
  no-op when no bus is installed (the default);
* :mod:`repro.obs.events` — the record taxonomy and JSONL schema;
* :mod:`repro.obs.metrics` — labelled counters/gauges/histograms with
  versioned JSON snapshots, absorbing the PR 3 hot-path profiler;
* :mod:`repro.obs.sinks` — deterministic JSONL traces, pcap-style
  per-port packet logs, and the control-plane timeline the report
  layer prints next to JFI series.

This package never imports the simulator or the experiments layer
(``repro.obs.cli`` is the one exception and must be imported
explicitly), so any component can depend on it without cycles.
"""

from . import bus, events, metrics, sinks
from .bus import TraceBus, tracing
from .events import (TRACE_SCHEMA_VERSION, TOPICS, SchemaError,
                     TraceRecord, validate_record)
from .metrics import METRICS_SCHEMA_VERSION, MetricsRegistry, collected
from .sinks import (ControlTimelineSink, JsonlTraceSink, MemorySink,
                    PacketLogSink)

__all__ = [
    "METRICS_SCHEMA_VERSION", "TOPICS", "TRACE_SCHEMA_VERSION",
    "ControlTimelineSink", "JsonlTraceSink", "MemorySink",
    "MetricsRegistry", "PacketLogSink", "SchemaError", "TraceBus",
    "TraceRecord", "bus", "collected", "events", "metrics", "sinks",
    "tracing", "validate_record",
]
