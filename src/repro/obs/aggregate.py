"""Cross-worker aggregation: one fleet view over a sweep directory.

The PR 9 sweep fabric leaves N per-worker
:class:`~repro.obs.metrics.MetricsRegistry` snapshots under
``<sweep>/metrics/``; this module folds them — plus the sweep's
on-disk status and leases — into a single canonical *aggregate
document* that ``cebinae-repro sweep watch`` renders and tests/CI
consume via ``watch --once --json``.

Two layers:

* :func:`merge_snapshots` — the registry-level merge: counters sum,
  gauges take the maximum (a deterministic resolution that is
  independent of input order; in practice per-worker labels keep gauge
  rows disjoint anyway), histograms merge over the *union* of their
  bucket bounds so snapshots with different bucket layouts still
  combine with exact ``sum``/``count`` (each source bucket's count
  lands at its own upper bound's position in the union — cumulative
  counts at shared bounds are preserved exactly).
* :func:`fleet_view` — the sweep-level document: progress counts,
  per-worker throughput rows, cache hit ratio, an ETA derived from
  manifest size minus cached results, and the lost/duplicated-result
  integrity check the chaos drill asserts on.

Everything is computed from the directory alone (the fabric's design
invariant), so the document is byte-stable on a finished sweep: no
leases ⇒ no heartbeat ages, remaining work 0 ⇒ ETA 0.0, and every
other field comes from immutable or atomically written files.

``sweep`` arguments are duck-typed over
:class:`~repro.sweep.manifest.SweepDir` (``status()``,
``load_manifest()``, ``metrics_dir``, ``cache_dir``) — this package
never imports the sweep layer (see the package docstring), the sweep
CLI imports us.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import (Any, Callable, Dict, Iterable, List, Mapping,
                    Optional, Tuple)

from .metrics import (METRICS_SCHEMA_VERSION, SWEEP_EVENTS, LabelKey,
                      MetricsRegistry, _label_key)

#: Version of the aggregate document layout.  Bump on rename/removal.
AGGREGATE_SCHEMA_VERSION = 1


def merge_snapshots(
        documents: Iterable[Mapping[str, Any]]) -> MetricsRegistry:
    """Merge snapshot documents into one registry (see module doc).

    Raises :class:`ValueError` on a snapshot whose ``schema_version``
    does not match — callers reading from disk should pre-filter
    (:func:`read_worker_snapshots` does).
    """
    merged = MetricsRegistry()
    gauges: Dict[Tuple[str, LabelKey], float] = {}
    histograms: Dict[Tuple[str, LabelKey],
                     List[Mapping[str, Any]]] = {}
    for document in documents:
        version = document.get("schema_version")
        if version != METRICS_SCHEMA_VERSION:
            raise ValueError(
                f"cannot merge snapshot with schema_version "
                f"{version!r} (expected {METRICS_SCHEMA_VERSION})")
        for row in document.get("counters", ()):
            merged.counter(row["name"],
                           **row["labels"]).inc(row["value"])
        for row in document.get("gauges", ()):
            key = (str(row["name"]), _label_key(row["labels"]))
            value = float(row["value"])
            previous = gauges.get(key)
            gauges[key] = value if previous is None \
                else max(previous, value)
        for row in document.get("histograms", ()):
            key = (str(row["name"]), _label_key(row["labels"]))
            histograms.setdefault(key, []).append(row)
    for (name, labels), value in gauges.items():
        merged.gauge(name, **dict(labels)).set(value)
    for (name, labels), rows in histograms.items():
        bounds = sorted({float(bound)
                         for row in rows for bound in row["bounds"]})
        position = {bound: index
                    for index, bound in enumerate(bounds)}
        histogram = merged.histogram(name, bounds=bounds,
                                     **dict(labels))
        for row in rows:
            # Each source bucket "≤ b" lands at b's position in the
            # union (an upper bound, since the union refines below b);
            # overflow stays overflow.  sum/count merge exactly.
            for bound, count in zip(row["bounds"], row["counts"]):
                histogram.counts[position[float(bound)]] += count
            histogram.counts[-1] += row["counts"][-1]
            histogram.total += row["sum"]
            histogram.count += row["count"]
    return merged


def read_worker_snapshots(
        metrics_dir: Any) -> Tuple[Dict[str, Dict[str, Any]],
                                   List[str]]:
    """Worker name → snapshot document from a sweep's metrics dir.

    Unreadable, torn, or foreign-schema files are skipped and returned
    by name in the second element — a live fleet rewrites these files
    continuously (atomically, but an NFS reader can still lose a race)
    and the watch view must degrade, not crash.
    """
    snapshots: Dict[str, Dict[str, Any]] = {}
    errors: List[str] = []
    directory = Path(metrics_dir)
    if not directory.is_dir():
        return snapshots, errors
    for path in sorted(directory.glob("*.json")):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            errors.append(path.name)
            continue
        if (not isinstance(document, dict) or
                document.get("schema_version")
                != METRICS_SCHEMA_VERSION):
            errors.append(path.name)
            continue
        snapshots[path.stem] = document
    return snapshots, errors


# -- per-snapshot readers (operate on the JSON rows directly) -----------

def _rows(document: Mapping[str, Any], table: str,
          name: str) -> List[Mapping[str, Any]]:
    return [row for row in document.get(table, ())
            if row.get("name") == name]


def _counter_total(document: Mapping[str, Any], name: str) -> float:
    return float(sum(row["value"]
                     for row in _rows(document, "counters", name)))


def _gauge_value(document: Mapping[str, Any],
                 name: str) -> Optional[float]:
    rows = _rows(document, "gauges", name)
    return float(rows[0]["value"]) if rows else None


def _histogram_totals(document: Mapping[str, Any],
                      name: str) -> Tuple[float, int]:
    total, count = 0.0, 0
    for row in _rows(document, "histograms", name):
        total += float(row["sum"])
        count += int(row["count"])
    return total, count


def _worker_row(worker: str, document: Mapping[str, Any],
                manifest_tasks: List[Any],
                lease_info: List[Mapping[str, Any]]) -> Dict[str, Any]:
    completed = _counter_total(document, "sweep_tasks_completed_total")
    busy_s, observed = _histogram_totals(document,
                                         "sweep_task_wall_seconds")
    # Throughput over *busy* time (clock-free, hence byte-stable on a
    # finished sweep), not over an uptime the snapshot doesn't record.
    tasks_per_min = round(observed / (busy_s / 60.0), 3) \
        if busy_s > 0 else None
    last_task: Optional[Dict[str, Any]] = None
    last_index = _gauge_value(document, "sweep_last_task_index")
    if last_index is not None and \
            0 <= int(last_index) < len(manifest_tasks):
        task = manifest_tasks[int(last_index)]
        last_task = {"index": int(last_index),
                     "label": task.label,
                     "fingerprint": task.fingerprint}
    leases = [info for info in lease_info
              if info.get("worker") == worker]
    ages = [info["age_s"] for info in leases
            if isinstance(info.get("age_s"), (int, float))]
    return {
        "worker": worker,
        "completed": int(completed),
        "quarantined": int(_counter_total(
            document, "sweep_tasks_quarantined_total")),
        "busy_s": round(busy_s, 3),
        "tasks_per_min": tasks_per_min,
        "inflight_shards": int(_gauge_value(
            document, "sweep_inflight_shards") or 0),
        "quarantine_depth": int(_gauge_value(
            document, "sweep_quarantine_depth") or 0),
        "last_task": last_task,
        "captured_at": document.get("captured_at"),
        "shards": sorted(str(info["key"]) for info in leases),
        "heartbeat_age_s": round(min(ages), 3) if ages else None,
        "lease_expired": any(info.get("expired") for info in leases),
    }


def fleet_view(sweep: Any,
               clock: Optional[Callable[[], float]] = None
               ) -> Dict[str, Any]:
    """The canonical aggregate document for one sweep directory.

    ``clock`` (wall seconds, injectable for tests) feeds lease
    heartbeat ages; the default is the lease store's own wall clock.
    Raises :class:`~repro.sweep.manifest.ManifestError` via
    ``sweep.status()`` when the directory holds no readable manifest.
    """
    status = sweep.status(clock=clock)
    manifest = sweep.load_manifest()
    lease_info: List[Mapping[str, Any]] = status.get("lease_info", [])
    snapshots, errors = read_worker_snapshots(sweep.metrics_dir)
    merged = merge_snapshots(snapshots.values()).snapshot()

    workers = [_worker_row(worker, document, manifest.tasks,
                           lease_info)
               for worker, document in sorted(snapshots.items())]
    totals = {event: int(_counter_total(merged,
                                        f"sweep_{event}_total"))
              for event in SWEEP_EVENTS}

    counts = status["counts"]
    done = counts["done"]
    completed_by_workers = totals["tasks_completed"]
    # Done results nobody here computed came from the shared
    # fingerprint cache (warm starts, prior sweeps, overwritten
    # resume snapshots): the fleet's cache hit ratio.
    cache_hit_ratio = round(
        max(0, done - completed_by_workers) / done, 4) \
        if done else None

    remaining = counts["pending"] + counts["leased"]
    busy_total = sum(
        _histogram_totals(document, "sweep_task_wall_seconds")[0]
        for document in snapshots.values())
    active_workers = len({info["worker"] for info in lease_info
                          if not info.get("expired")})
    if remaining == 0:
        eta_s: Optional[float] = 0.0
    elif completed_by_workers > 0 and busy_total > 0:
        mean_task_s = busy_total / completed_by_workers
        eta_s = round(remaining * mean_task_s
                      / max(1, active_workers), 3)
    else:
        eta_s = None    # No throughput sample yet: unknowable.

    fingerprints = {task.fingerprint for task in manifest.tasks}
    cache_entries = {path.stem
                     for path in Path(sweep.cache_dir).glob("*.json")}
    integrity = {
        # Manifest tasks with no result anywhere (cache or
        # quarantine).  0 on a finished sweep — the chaos drill's
        # "zero lost" assertion.
        "missing_results": remaining,
        # Cache entries no manifest task owns — "zero duplicated".
        "orphan_results": len(cache_entries - fingerprints),
    }

    return {
        "aggregate_version": AGGREGATE_SCHEMA_VERSION,
        "sweep": status["name"],
        "total": status["total"],
        "counts": dict(counts),
        "totals": totals,
        "cache_hit_ratio": cache_hit_ratio,
        "eta_s": eta_s,
        "integrity": integrity,
        "workers": workers,
        "snapshot_errors": errors,
    }


__all__ = [
    "AGGREGATE_SCHEMA_VERSION", "fleet_view", "merge_snapshots",
    "read_worker_snapshots",
]
