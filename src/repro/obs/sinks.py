"""Trace sinks: JSONL files, per-port packet logs, control timelines.

Every sink accepts frozen :class:`~repro.obs.events.TraceRecord`
instances from the bus and persists them deterministically: JSON is
emitted with sorted keys and compact separators, files are written in
event order, and nothing here consults wall clocks or randomness — the
determinism contract is that one seed produces byte-identical sink
output on every run and scheduler backend (DESIGN.md §11).
"""

from __future__ import annotations

import json
import os
from typing import IO, Any, Dict, List, Optional

from .events import ControlRound, PacketTx, SpanEvent, TraceRecord

#: Compact, key-sorted JSON: the only encoding sinks use.
_JSON_KWARGS: Dict[str, Any] = {"sort_keys": True,
                                "separators": (",", ":")}


def encode_record(record: TraceRecord) -> str:
    """The canonical single-line JSON encoding of one record."""
    return json.dumps(record.to_dict(), **_JSON_KWARGS)


class MemorySink:
    """Collects records in a list — the test harness's sink."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []
        self.closed = False

    def accept(self, record: TraceRecord) -> None:
        self.records.append(record)

    def close(self) -> None:
        self.closed = True


class JsonlTraceSink:
    """One JSON object per line, in event order, to a single file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "w",
                                               encoding="utf-8")

    def accept(self, record: TraceRecord) -> None:
        handle = self._handle
        if handle is None:
            raise ValueError(f"trace sink {self.path!r} is closed")
        handle.write(encode_record(record))
        handle.write("\n")

    def close(self) -> None:
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()


def _sanitize(name: str) -> str:
    """A filesystem-safe rendering of a port name."""
    return "".join(ch if ch.isalnum() or ch in "-_." else "_"
                   for ch in name) or "port"


class PacketLogSink:
    """pcap-style per-port packet logs: one text file per egress port.

    Each :class:`~repro.obs.events.PacketTx` becomes one line in
    ``<dir>/pkts_<port>.log`` in the classic tcpdump column order —
    time, flow, type, seq/ack, length, ECN — so the logs diff cleanly
    between runs and read naturally next to real captures.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._handles: Dict[str, IO[str]] = {}

    def _handle_for(self, port: str) -> IO[str]:
        handle = self._handles.get(port)
        if handle is None:
            path = os.path.join(self.directory,
                                f"pkts_{_sanitize(port)}.log")
            handle = self._handles[port] = open(path, "w",
                                                encoding="utf-8")
        return handle

    def accept(self, record: TraceRecord) -> None:
        if not isinstance(record, PacketTx):
            return
        seconds, nanos = divmod(record.time_ns, 1_000_000_000)
        self._handle_for(record.port).write(
            f"{seconds}.{nanos:09d} {record.flow} {record.ptype}"
            f" seq={record.seq} ack={record.ack}"
            f" len={record.size_bytes} ecn={record.ecn}\n")

    def close(self) -> None:
        # Sorted for a deterministic close order (set/dict-order hygiene).
        for port in sorted(self._handles):
            self._handles[port].close()
        self._handles.clear()


class JsonlSpanSink:
    """Lifecycle spans alone, one JSON object per line, in close order.

    The file is everything needed to rebuild the span tree
    (:func:`repro.obs.spans.span_tree`).  Span records carry the one
    schema-sanctioned nondeterministic field (``wall_s``, host
    wall-clock); strip it with
    :func:`repro.obs.events.canonical_dict` before comparing span
    files byte-wise — every other byte is deterministic.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "w",
                                               encoding="utf-8")

    def accept(self, record: TraceRecord) -> None:
        if not isinstance(record, SpanEvent):
            return
        handle = self._handle
        if handle is None:
            raise ValueError(f"span sink {self.path!r} is closed")
        handle.write(encode_record(record))
        handle.write("\n")

    def close(self) -> None:
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()


class ControlTimelineSink:
    """Collects per-``dT`` control-plane rounds for reports and JSONL.

    The report layer prints the timeline next to the JFI series; the
    trace CLI also persists it as ``control_timeline.jsonl`` so a run's
    control decisions can be replayed without the full packet trace.
    """

    def __init__(self) -> None:
        self.rounds: List[ControlRound] = []

    def accept(self, record: TraceRecord) -> None:
        if isinstance(record, ControlRound):
            self.rounds.append(record)

    def close(self) -> None:
        pass

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.rounds:
                handle.write(encode_record(record))
                handle.write("\n")

    def format_text(self) -> str:
        """A human-readable per-round table of control decisions."""
        from ..experiments.report import control_timeline_report
        return control_timeline_report(self.rounds)


__all__ = [
    "ControlTimelineSink", "JsonlSpanSink", "JsonlTraceSink",
    "MemorySink", "PacketLogSink", "encode_record",
]
