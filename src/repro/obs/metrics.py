"""Labelled metrics: counters, gauges, and histograms with JSON snapshots.

Complements the trace bus: where a trace answers *what happened, in
order*, metrics answer *how much, in total*.  A
:class:`MetricsRegistry` holds named instruments, each instantiated per
label set (``registry.counter("queue_drops", port="cebinae0",
reason="lbf")``), and snapshots to a versioned, deterministic JSON
document that round-trips through :func:`load_snapshot`.

The registry absorbs the PR 3 hot-path profiler
(:meth:`MetricsRegistry.absorb_profile`) so one artifact carries both
engine throughput and domain counters, and the experiment runner folds
every finished :class:`~repro.experiments.runner.ScenarioResult` into
the active registry (:func:`record_scenario`).

Like the bus and the profiler, activation is module-level and the
disabled path is free: the engine looks the registry up once per
``Simulator.run`` and does nothing per event.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from contextlib import contextmanager
from typing import (Any, Dict, Iterator, List, Mapping, Optional,
                    Sequence, Tuple)

#: Version of the metrics snapshot layout.  Bump on rename/retype/removal.
METRICS_SCHEMA_VERSION = 1

#: Nanoseconds per second (local to avoid importing the engine).
_NS_PER_SEC = 1_000_000_000

#: Canonical label encoding: sorted (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets: powers of four from 1 — wide enough for
#: byte counts and event counts alike without per-metric tuning.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(4.0 ** i for i in range(16))


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Observations bucketed by fixed upper bounds (plus +inf overflow)."""

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = ordered
        #: counts[i] observes value <= bounds[i]; counts[-1] is overflow.
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def to_dict(self) -> Dict[str, Any]:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "sum": self.total, "count": self.count}


class MetricsRegistry:
    """Named, labelled instruments with a deterministic JSON snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}
        #: When the snapshot this registry was loaded from was taken
        #: (host-monotonic seconds), or None for a live registry.
        self.captured_at: Optional[float] = None

    # -- instrument accessors (create on first use) ------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(bounds)
        return instrument

    # -- ingestion ---------------------------------------------------------
    def record_run(self, executed_events: int, sim_advance_ns: int) -> None:
        """Fold one completed ``Simulator.run`` into the registry."""
        self.counter("sim_runs_total").inc()
        self.counter("sim_events_total").inc(executed_events)
        self.counter("sim_time_seconds_total").inc(
            sim_advance_ns / _NS_PER_SEC)

    def absorb_profile(self, report: Any) -> None:
        """Fold a PR 3 ``ProfileReport`` into the registry (duck-typed)."""
        self.counter("profile_events_total").inc(report.events)
        self.counter("profile_runs_total").inc(report.runs)
        self.counter("profile_wall_seconds_total").inc(report.wall_s)
        self.counter("profile_sim_seconds_total").inc(report.sim_s)
        for component, events in sorted(report.component_events.items()):
            self.counter("profile_component_events_total",
                         component=component).inc(events)

    # -- snapshot / round-trip ---------------------------------------------
    def snapshot(self,
                 captured_at: Optional[float] = None) -> Dict[str, Any]:
        """A versioned, deterministically ordered JSON document.

        ``captured_at`` (host-monotonic seconds) stamps when the
        snapshot was taken, so readers of periodically rewritten files
        — the sweep workers' live metrics — can judge staleness.  The
        key is present only when a stamp is given: default snapshots
        stay byte-stable and old snapshots (no stamp) still load.
        """

        def rows(table: Dict[Tuple[str, LabelKey], Any],
                 render: Any) -> List[Dict[str, Any]]:
            out: List[Dict[str, Any]] = []
            for (name, labels), instrument in sorted(table.items()):
                row: Dict[str, Any] = {"name": name,
                                       "labels": dict(labels)}
                row.update(render(instrument))
                out.append(row)
            return out

        document: Dict[str, Any] = {
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": rows(self._counters,
                             lambda c: {"value": c.value}),
            "gauges": rows(self._gauges, lambda g: {"value": g.value}),
            "histograms": rows(self._histograms,
                               lambda h: h.to_dict()),
        }
        if captured_at is not None:
            document["captured_at"] = float(captured_at)
        return document

    def write_json(self, path: str,
                   captured_at: Optional[float] = None) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(captured_at=captured_at), handle,
                      indent=2, sort_keys=True)
            handle.write("\n")


def load_snapshot(data: Mapping[str, Any]) -> MetricsRegistry:
    """Rebuild a registry from :meth:`MetricsRegistry.snapshot` output.

    Tolerates the optional ``captured_at`` stamp's absence (pre-stamp
    snapshots merge unchanged); when present it is surfaced as a
    ``captured_at`` attribute on the returned registry.
    """
    version = data.get("schema_version")
    if version != METRICS_SCHEMA_VERSION:
        raise ValueError(
            f"metrics snapshot schema_version {version!r} is not "
            f"{METRICS_SCHEMA_VERSION}")
    registry = MetricsRegistry()
    stamp = data.get("captured_at")
    if isinstance(stamp, (int, float)) and not isinstance(stamp, bool):
        registry.captured_at = float(stamp)
    for row in data.get("counters", ()):
        registry.counter(row["name"], **row["labels"]).inc(row["value"])
    for row in data.get("gauges", ()):
        registry.gauge(row["name"], **row["labels"]).set(row["value"])
    for row in data.get("histograms", ()):
        histogram = registry.histogram(row["name"], bounds=row["bounds"],
                                       **row["labels"])
        histogram.counts = list(row["counts"])
        histogram.total = row["sum"]
        histogram.count = row["count"]
    return registry


def load_json(path: str) -> MetricsRegistry:
    """Round-trip loader for :meth:`MetricsRegistry.write_json` files."""
    with open(path, "r", encoding="utf-8") as handle:
        return load_snapshot(json.load(handle))


def record_scenario(registry: MetricsRegistry, result: Any) -> None:
    """Fold a finished ``ScenarioResult`` into ``registry``.

    Duck-typed over the runner's result object (``name``,
    ``discipline``, ``jfi``, ``throughput_bps``, ``goodputs_bps``, the
    LBF drop counters) so obs never imports the experiments layer.
    """
    discipline = getattr(result, "discipline", None)
    labels = {"scenario": str(getattr(result, "name", "scenario")),
              "discipline": str(getattr(discipline, "value", discipline))}
    registry.counter("scenarios_total").inc()
    registry.gauge("scenario_jain_index", **labels).set(result.jfi)
    registry.gauge("scenario_throughput_bps", **labels).set(
        result.throughput_bps)
    registry.counter("scenario_lbf_drops_total", **labels).inc(
        result.lbf_drops)
    registry.counter("scenario_lbf_delays_total", **labels).inc(
        result.lbf_delays)
    registry.counter("scenario_buffer_drops_total", **labels).inc(
        result.buffer_drops)
    goodput_hist = registry.histogram(
        "scenario_flow_goodput_bps",
        bounds=tuple(10.0 ** i for i in range(3, 13)), **labels)
    for index, goodput in enumerate(result.goodputs_bps):
        registry.gauge("scenario_goodput_bps", flow=str(index),
                       **labels).set(goodput)
        goodput_hist.observe(goodput)


def record_hybrid(registry: MetricsRegistry, report: Any,
                  scenario: str = "", discipline: str = "") -> None:
    """Fold a hybrid-backend ``FluidPhaseReport`` into ``registry``.

    Duck-typed over the fluid module's report object (``mode``,
    ``reason``, ``epochs``, ``extensions``, ``fluid_s``,
    ``divergence``) so obs never imports the netsim layer.  A
    ``mode="fluid"`` report counts a demotion (handoff to fluid
    granularity); a ``mode="packet"`` report with reason
    ``"unstable"`` counts a promotion (the warmup never went steady).
    """
    labels = {"scenario": scenario, "discipline": discipline}
    registry.counter("hybrid_runs_total", mode=str(report.mode),
                     **labels).inc()
    if report.mode == "fluid":
        registry.counter("hybrid_demotions_total", **labels).inc()
        registry.counter("hybrid_fluid_epochs_total",
                         **labels).inc(report.epochs)
        registry.gauge("hybrid_fluid_seconds", **labels).set(
            report.fluid_s)
    elif report.reason:
        registry.counter("hybrid_promotions_total",
                         reason=str(report.reason), **labels).inc()
    if report.extensions:
        registry.counter("hybrid_warmup_extensions_total",
                         **labels).inc(report.extensions)
    if report.divergence is not None:
        registry.gauge("hybrid_divergence", **labels).set(
            report.divergence)


#: Sweep-fabric event names accepted by :func:`record_sweep`.  One
#: counter per event, labelled by worker: tasks completed/quarantined,
#: lease lifecycle anomalies (expiry steals, lost heartbeats), graceful
#: interrupts, and resume invocations.
SWEEP_EVENTS = ("tasks_completed", "tasks_quarantined",
                "lease_expiries", "lease_lost", "interrupts", "resumes")

#: Sweep-fabric *gauge* names accepted by :func:`record_sweep`:
#: point-in-time state the watch view renders.  ``inflight_shards`` is
#: 1 while the worker holds a lease, ``quarantine_depth`` its running
#: quarantined count, ``last_task_index`` the manifest index of its
#: most recently completed task (the watch view maps it back to the
#: task's fingerprint and label).
SWEEP_GAUGES = ("inflight_shards", "quarantine_depth",
                "last_task_index")


def record_sweep(registry: MetricsRegistry, event: str,
                 worker: str = "", amount: float = 1) -> None:
    """Fold one sweep-fabric event into ``registry``.

    The fabric's counters live here (rather than inside ``repro.sweep``)
    so every metric name across the stack is declared in one module and
    snapshots stay schema-stable; an unknown event is a programming
    error, not a new time series.  Names in :data:`SWEEP_EVENTS`
    increment a ``sweep_<event>_total`` counter by ``amount``; names in
    :data:`SWEEP_GAUGES` *set* the ``sweep_<event>`` gauge to it.
    """
    labels = {"worker": worker} if worker else {}
    if event in SWEEP_GAUGES:
        registry.gauge(f"sweep_{event}", **labels).set(amount)
        return
    if event not in SWEEP_EVENTS:
        raise ValueError(
            f"unknown sweep event {event!r}; known: "
            f"{list(SWEEP_EVENTS) + list(SWEEP_GAUGES)}")
    registry.counter(f"sweep_{event}_total", **labels).inc(amount)


#: The active registry, consulted once per Simulator.run by the engine.
_ACTIVE: Optional[MetricsRegistry] = None


def enable() -> MetricsRegistry:
    """Install (and return) a fresh global registry."""
    global _ACTIVE
    _ACTIVE = MetricsRegistry()
    return _ACTIVE


def disable() -> Optional[MetricsRegistry]:
    """Uninstall the global registry, returning it for reporting."""
    global _ACTIVE
    registry, _ACTIVE = _ACTIVE, None
    return registry


def current() -> Optional[MetricsRegistry]:
    """The installed registry, or None when metrics are off."""
    return _ACTIVE


@contextmanager
def collected() -> Iterator[MetricsRegistry]:
    """Scope a registry around a block of simulation code."""
    registry = enable()
    try:
        yield registry
    finally:
        disable()


__all__ = [
    "Counter", "DEFAULT_BUCKETS", "Gauge", "Histogram",
    "METRICS_SCHEMA_VERSION", "MetricsRegistry", "collected", "current",
    "SWEEP_EVENTS", "SWEEP_GAUGES", "disable", "enable", "load_json",
    "load_snapshot", "record_hybrid", "record_scenario", "record_sweep",
]
