"""Executing parking-lot suite specs as :class:`ScenarioResult` runs.

Figure 11 drives :func:`~repro.netsim.topology.build_parking_lot`
directly and returns its own result shape; the declarative suite needs
the multi-bottleneck topology behind the *same* result type as every
dumbbell run, so one golden-conformance harness covers both.  This
module is that adapter: a module-level, picklable run function the
pool executor and the result cache can treat exactly like
:func:`~repro.experiments.runner.run_scenario`.

Multi-bottleneck conventions (documented because ScenarioResult's
fields were named for dumbbells):

* ``throughput_bps`` sums the per-segment bottleneck transmit rates —
  an aggregate across segments, not one link's rate;
* ``lbf_drops``/``lbf_delays``/``buffer_drops`` likewise sum over the
  per-segment queues;
* ``cca_names`` lists the long flows first, then each cross group in
  segment order — the same order as ``goodputs_bps``.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.control_plane import cebinae_factory
from ..core.params import CebinaeParams
from ..experiments.runner import Discipline, ScenarioResult
from ..netsim.fq_codel import fq_codel_factory
from ..netsim.engine import SECOND, Simulator, seconds
from ..netsim.queues import DropTailQueue, QueueDisc
from ..netsim.topology import build_parking_lot
from ..netsim.tracing import FlowMonitor
from ..obs import bus as obs_bus
from ..obs import metrics as obs_metrics
from ..tcp.flows import TcpFlow, connect_flow
from .spec import ParkingLotSpec


def _queue_factory(discipline: Discipline, spec: ParkingLotSpec,
                   cebinae: CebinaeParams):  # type: ignore[no-untyped-def]
    if discipline is Discipline.FIFO:
        return lambda qspec: DropTailQueue.from_mtu_count(
            spec.buffer_mtus)
    if discipline is Discipline.FQ:
        return fq_codel_factory(
            limit_packets=max(spec.buffer_mtus, 64))
    if discipline is Discipline.CEBINAE:
        return cebinae_factory(params=cebinae,
                               buffer_mtus=spec.buffer_mtus)
    raise ValueError(f"unknown discipline {discipline}")


def run_parking_lot(spec: ParkingLotSpec, discipline_name: str,
                    seed: int, cebinae: CebinaeParams,
                    collect_series: bool = False) -> ScenarioResult:
    """Run one parking-lot point under one discipline.

    Deterministic in its arguments (the jitter RNG is seeded from
    ``seed``), so results cache under the compiled run's fingerprint
    like any dumbbell point.
    """
    discipline = Discipline(discipline_name)
    sim = Simulator()
    trace_bus = obs_bus.current()
    if trace_bus is not None:
        trace_bus.set_clock(sim)
    lot = build_parking_lot(
        num_long_flows=spec.num_long,
        cross_flow_counts=[count for _, count in spec.cross_mix],
        bottleneck_rate_bps=spec.rate_bps,
        bottleneck_queue=_queue_factory(discipline, spec, cebinae),
        access_delay_ns=int(spec.access_delay_ms * 1e6),
        bottleneck_delay_ns=int(spec.bottleneck_delay_ms * 1e6),
        sim=sim,
        jitter_seed=seed)
    monitor = FlowMonitor(sim)
    flows: List[TcpFlow] = []
    cca_names: List[str] = []
    for index in range(spec.num_long):
        flows.append(connect_flow(
            lot.long_senders[index], lot.long_receivers[index],
            spec.long_cca, monitor=monitor, src_port=10_000 + index))
        cca_names.append(spec.long_cca.lower())
    port = 20_000
    for segment, (cca, count) in enumerate(spec.cross_mix):
        for index in range(count):
            flows.append(connect_flow(
                lot.cross_senders[segment][index],
                lot.cross_receivers[segment][index], cca,
                monitor=monitor, src_port=port))
            cca_names.append(cca.lower())
            port += 1
    duration_ns = seconds(spec.duration_s)
    sim.run(until_ns=duration_ns)
    goodputs = [monitor.goodputs_bps(duration_ns)[flow.flow_id]
                for flow in flows]
    series: Optional[List[List[float]]] = None
    if collect_series:
        series = [monitor.goodput_series_bps(flow.flow_id, duration_ns)
                  for flow in flows]
    queues: List[QueueDisc] = [link.queue for link in lot.bottlenecks]
    result = ScenarioResult(
        name=spec.name,
        discipline=discipline,
        duration_s=spec.duration_s,
        sim_rate_bps=spec.rate_bps,
        rate_scale=spec.paper_rate_bps / spec.rate_bps,
        flow_scale=1.0,
        cca_names=cca_names,
        goodputs_bps=goodputs,
        throughput_bps=sum(link.tx_bytes for link in lot.bottlenecks)
        * 8 * SECOND / duration_ns,
        events=sim.processed_events,
        lbf_drops=sum(getattr(queue, "lbf_drops", 0)
                      for queue in queues),
        lbf_delays=sum(getattr(queue, "lbf_delays", 0)
                       for queue in queues),
        buffer_drops=sum(getattr(queue, "buffer_drops",
                                 queue.dropped_packets)
                         for queue in queues),
        goodput_series_bps=series,
    )
    registry = obs_metrics.current()
    if registry is not None:
        obs_metrics.record_scenario(registry, result)
    return result
