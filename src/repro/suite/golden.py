"""Golden-result conformance: digests, golden files, and the matrix.

The determinism contract of this repo — fixed seed ⇒ byte-identical
:class:`ScenarioResult` across scheduler backends, debug modes, and
tracing on/off — is enforced here for *every* declarative workload:

* :func:`result_digest` reduces one result to committed-friendly
  digests (SHA-256 of the canonical result JSON, the scalar JFI, and a
  digest of the per-second JFI series when collected);
* a *golden file* (``tests/golden/<spec name>.json``) pins one suite
  spec's digests, stamped with the spec's own fingerprint so stale
  goldens are distinguishable from determinism breaks;
* :func:`conformance_digests` replays a spec across the full
  scheduler x debug matrix in-process and refuses to produce digests
  at all if any cell disagrees — the regeneration path can therefore
  never commit a backend-dependent golden.

``tests/test_golden_suite.py`` parametrises the same comparison per
matrix cell, and the CI ``suite-smoke`` job replays it per scheduler
through the CLI.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import (Any, Dict, Iterator, List, Optional, Sequence,
                    Tuple, Union)

from ..analysis import invariants
from ..experiments.parallel import require, run_tasks
from ..experiments.runner import ScenarioResult
from .spec import CompiledRun, SuiteSpec

#: Bump when the golden-file shape changes incompatibly.
GOLDEN_VERSION = 1

#: The conformance matrix: every cell must produce identical bytes.
SCHEDULER_BACKENDS = ("heap", "calendar")
DEBUG_MODES = (False, True)

#: Canonical JSON encoding shared by every digest in this module.
_JSON_KWARGS = {"sort_keys": True, "separators": (",", ":")}


class GoldenMismatch(AssertionError):
    """A replayed result diverged from its committed golden digest."""


def canonical_result_json(result: ScenarioResult) -> str:
    """The canonical byte form the determinism contract is stated over."""
    return json.dumps(result.to_dict(), **_JSON_KWARGS)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def result_digest(result: ScenarioResult) -> Dict[str, Any]:
    """Committed-friendly digests of one run's result.

    ``result_sha256`` covers every field byte-for-byte;
    ``jfi``/``jfi_series_sha256`` are kept alongside so a mismatch
    report can say *how far* fairness moved, not just that bytes
    changed.
    """
    digest: Dict[str, Any] = {
        "result_sha256": _sha256(canonical_result_json(result)),
        "jfi": result.jfi,
    }
    if result.goodput_series_bps is not None:
        digest["jfi_series_sha256"] = _sha256(
            json.dumps(result.jfi_series(), **_JSON_KWARGS))
    return digest


# --------------------------------------------------------------------------
# Executing a compiled suite.
# --------------------------------------------------------------------------

def run_compiled(runs: Sequence[CompiledRun],
                 workers: Optional[int] = None,
                 cache_dir: Union[str, Path, None] = None,
                 use_cache: bool = True,
                 progress: Any = None) -> List[ScenarioResult]:
    """Execute compiled runs through the parallel executor, in order."""
    tasks = [run.task() for run in runs]
    results = run_tasks(tasks, workers=workers, cache_dir=cache_dir,
                        use_cache=use_cache, progress=progress)
    return [require(result) for result in results]


@contextmanager
def forced_backend(scheduler: str, debug: bool) -> Iterator[None]:
    """Pin the scheduler backend and debug gate for one replay.

    ``REPRO_SCHEDULER`` is read at :class:`Simulator` construction and
    the debug gate dynamically, so setting both around an in-process
    run is exactly equivalent to exporting them for a fresh process.
    """
    previous_env = os.environ.get("REPRO_SCHEDULER")
    previous_debug = invariants.set_debug(debug)
    os.environ["REPRO_SCHEDULER"] = scheduler
    try:
        yield
    finally:
        invariants.set_debug(previous_debug)
        if previous_env is None:
            os.environ.pop("REPRO_SCHEDULER", None)
        else:
            os.environ["REPRO_SCHEDULER"] = previous_env


def suite_digests(spec: SuiteSpec,
                  scheduler: Optional[str] = None,
                  debug: Optional[bool] = None) -> Dict[str, Dict[str, Any]]:
    """Label → digest for one spec, one matrix cell, serial in-process.

    ``scheduler``/``debug`` default to the ambient settings (whatever
    ``REPRO_SCHEDULER``/the debug gate already say), which is what the
    CI smoke job varies per matrix leg.
    """
    runs = spec.compile()
    if scheduler is None and debug is None:
        results = run_compiled(runs, workers=1, cache_dir=None)
    else:
        ambient = os.environ.get("REPRO_SCHEDULER", "heap")
        with forced_backend(scheduler if scheduler is not None
                            else ambient,
                            invariants.DEBUG if debug is None
                            else debug):
            results = run_compiled(runs, workers=1, cache_dir=None)
    digests = {}
    for run, result in zip(runs, results):
        entry = {"fingerprint": run.fingerprint()}
        entry.update(result_digest(result))
        digests[run.label] = entry
    return digests


def conformance_digests(spec: SuiteSpec,
                        schedulers: Sequence[str] = SCHEDULER_BACKENDS,
                        debug_modes: Sequence[bool] = DEBUG_MODES
                        ) -> Dict[str, Dict[str, Any]]:
    """Digests agreed on by every (scheduler, debug) matrix cell.

    Raises :class:`GoldenMismatch` if any cell disagrees with the
    first, naming the cell and the diverging labels — so golden
    regeneration doubles as a cross-backend determinism check.
    """
    reference: Optional[Dict[str, Dict[str, Any]]] = None
    reference_cell = ""
    for scheduler in schedulers:
        for debug in debug_modes:
            digests = suite_digests(spec, scheduler=scheduler,
                                    debug=debug)
            cell = f"scheduler={scheduler} debug={debug}"
            if reference is None:
                reference, reference_cell = digests, cell
                continue
            if digests != reference:
                diverged = sorted(
                    label for label in reference
                    if digests.get(label) != reference[label])
                raise GoldenMismatch(
                    f"suite spec {spec.name!r}: {cell} diverges from "
                    f"{reference_cell} on {diverged}")
    assert reference is not None
    return reference


# --------------------------------------------------------------------------
# Golden files.
# --------------------------------------------------------------------------

def golden_path(directory: Union[str, Path], name: str) -> Path:
    return Path(directory) / f"{name}.json"


def write_golden(directory: Union[str, Path], spec: SuiteSpec,
                 digests: Dict[str, Dict[str, Any]]) -> Path:
    """Persist one spec's golden file (sorted keys, trailing newline)."""
    path = golden_path(directory, spec.name)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "golden_version": GOLDEN_VERSION,
        "spec_name": spec.name,
        "spec_fingerprint": spec.fingerprint(),
        "runs": digests,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_golden(directory: Union[str, Path], name: str
                ) -> Dict[str, Any]:
    path = golden_path(directory, name)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        raise GoldenMismatch(
            f"no golden file for suite spec {name!r} (expected "
            f"{path}); run the suite CLI with --update-golden"
            ) from None
    if document.get("golden_version") != GOLDEN_VERSION:
        raise GoldenMismatch(
            f"{path}: golden version "
            f"{document.get('golden_version')!r} does not match this "
            f"build's {GOLDEN_VERSION}; regenerate with "
            f"--update-golden")
    return document


def diff_golden(golden: Dict[str, Any], spec: SuiteSpec,
                digests: Dict[str, Dict[str, Any]]) -> List[str]:
    """Human-readable mismatches between a golden file and a replay.

    Empty list == conformant.  A spec-fingerprint mismatch short-
    circuits: digests computed from a different document prove
    staleness, not nondeterminism.
    """
    spec_fp = spec.fingerprint()
    if golden.get("spec_fingerprint") != spec_fp:
        return [
            f"{spec.name}: spec fingerprint {spec_fp} does not match "
            f"golden {golden.get('spec_fingerprint')!r} — the spec "
            f"changed since the golden was committed; rerun "
            f"--update-golden"]
    mismatches: List[str] = []
    expected_runs: Dict[str, Any] = golden.get("runs", {})
    missing = sorted(set(expected_runs) - set(digests))
    extra = sorted(set(digests) - set(expected_runs))
    for label in missing:
        mismatches.append(f"{spec.name}/{label}: in golden but not "
                          f"produced by the spec")
    for label in extra:
        mismatches.append(f"{spec.name}/{label}: produced but absent "
                          f"from golden")
    for label in sorted(set(expected_runs) & set(digests)):
        expected, actual = expected_runs[label], digests[label]
        if expected == actual:
            continue
        detail = []
        for key in sorted(set(expected) | set(actual)):
            if expected.get(key) != actual.get(key):
                detail.append(f"{key}: golden={expected.get(key)!r} "
                              f"actual={actual.get(key)!r}")
        mismatches.append(f"{spec.name}/{label}: " + "; ".join(detail))
    return mismatches


def check_golden(directory: Union[str, Path], spec: SuiteSpec,
                 digests: Dict[str, Dict[str, Any]]) -> List[str]:
    """Load ``spec``'s golden and diff it against ``digests``."""
    try:
        golden = load_golden(directory, spec.name)
    except GoldenMismatch as exc:
        return [str(exc)]
    return diff_golden(golden, spec, digests)
