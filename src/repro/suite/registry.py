"""Loading directories of suite-spec documents.

A suite directory holds one document per file — ``<name>.json`` always,
``<name>.yaml``/``.yml`` when PyYAML is importable (the core toolchain
never requires it).  The registry enforces the hygiene that keeps
golden files trustworthy:

* the file stem must equal the spec's ``name`` (so the golden file, the
  spec file, and the report all agree on identity);
* duplicate names across extensions are rejected;
* iteration order is sorted by name, independent of filesystem order.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Union

from .spec import SpecError, SuiteSpec

#: Extensions the registry recognises, in resolution order.
SPEC_EXTENSIONS = (".json", ".yaml", ".yml")


def _load_document(path: Path) -> Any:
    if path.suffix == ".json":
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    try:
        import yaml
    except ImportError:
        raise SpecError(
            f"{path}: YAML specs need the optional PyYAML dependency; "
            f"rewrite the spec as JSON or install pyyaml") from None
    with open(path, "r", encoding="utf-8") as handle:
        return yaml.safe_load(handle)


def load_spec_file(path: Union[str, Path]) -> SuiteSpec:
    """Parse one spec document, enforcing stem == spec name."""
    path = Path(path)
    if path.suffix not in SPEC_EXTENSIONS:
        raise SpecError(
            f"{path}: unrecognised spec extension {path.suffix!r}; "
            f"expected one of {list(SPEC_EXTENSIONS)}")
    try:
        document = _load_document(path)
    except ValueError as exc:
        raise SpecError(f"{path}: not parseable: {exc}") from exc
    spec = SuiteSpec.from_dict(document, source=str(path))
    if spec.name != path.stem:
        raise SpecError(
            f"{path}: spec name {spec.name!r} must match the file "
            f"stem {path.stem!r} (golden files are keyed by name)")
    return spec


class SuiteRegistry:
    """An ordered collection of suite specs loaded from one directory."""

    def __init__(self, specs: List[SuiteSpec]) -> None:
        self._specs: Dict[str, SuiteSpec] = {}
        for spec in specs:
            if spec.name in self._specs:
                raise SpecError(
                    f"duplicate suite spec name {spec.name!r}")
            self._specs[spec.name] = spec
        self._order = sorted(self._specs)

    @classmethod
    def from_directory(cls, directory: Union[str, Path]
                       ) -> "SuiteRegistry":
        directory = Path(directory)
        if not directory.is_dir():
            raise SpecError(f"{directory}: not a suite directory")
        paths = sorted(path for path in directory.iterdir()
                       if path.suffix in SPEC_EXTENSIONS
                       and path.is_file())
        if not paths:
            raise SpecError(
                f"{directory}: no spec files "
                f"({'/'.join(SPEC_EXTENSIONS)}) found")
        return cls([load_spec_file(path) for path in paths])

    def __iter__(self) -> Iterator[SuiteSpec]:
        return (self._specs[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def get(self, name: str) -> SuiteSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise SpecError(
                f"unknown suite spec {name!r}; known: "
                f"{self._order}") from None

    @property
    def names(self) -> List[str]:
        return list(self._order)
