"""repro.suite: the declarative scenario registry and golden harness.

Turns JSON/YAML workload documents into the repo's existing execution
machinery — :class:`~repro.experiments.scenarios.ScenarioSpec` +
:class:`~repro.experiments.scenarios.ScalePolicy` +
:class:`~repro.experiments.parallel.RunSpec` for dumbbells, a
dedicated parking-lot runner for multi-bottleneck topologies — with
strict schema validation, stable fingerprints that feed the on-disk
:class:`~repro.experiments.parallel.ResultCache`, and a
golden-result conformance harness that pins every workload to
byte-identical replay across scheduler backends and debug modes.

Layers (imports flow downward only):

* :mod:`repro.suite.spec` — the document model, validation, compiler;
* :mod:`repro.suite.parking` — the parking-lot run function;
* :mod:`repro.suite.registry` — directory loading;
* :mod:`repro.suite.golden` — digests, golden files, the matrix;
* :mod:`repro.suite.cli` — ``cebinae-repro suite``.
"""

from .golden import (GOLDEN_VERSION, GoldenMismatch, check_golden,
                     conformance_digests, diff_golden, load_golden,
                     result_digest, run_compiled, suite_digests,
                     write_golden)
from .parking import run_parking_lot
from .registry import SuiteRegistry, load_spec_file
from .spec import (GRID_FIELDS, SPEC_SCHEMA_VERSION, CompiledRun,
                   ParkingLotSpec, SpecError, SuiteSpec)

__all__ = [
    "GOLDEN_VERSION",
    "GRID_FIELDS",
    "SPEC_SCHEMA_VERSION",
    "CompiledRun",
    "GoldenMismatch",
    "ParkingLotSpec",
    "SpecError",
    "SuiteRegistry",
    "SuiteSpec",
    "check_golden",
    "conformance_digests",
    "diff_golden",
    "load_golden",
    "load_spec_file",
    "result_digest",
    "run_compiled",
    "run_parking_lot",
    "suite_digests",
    "write_golden",
]
