"""``cebinae-repro suite <dir>``: run a directory of suite specs.

Loads every spec document in the directory, compiles them into the
parallel executor, prints a per-run report, and optionally checks or
regenerates the golden-conformance files::

    cebinae-repro suite examples/suites/tier1
    cebinae-repro suite examples/suites/tier1 --golden tests/golden
    cebinae-repro suite examples/suites/tier1 --update-golden tests/golden

``--golden`` compares the runs produced under the *current* backend
settings (``REPRO_SCHEDULER``/``REPRO_DEBUG``) against the committed
digests and exits 1 on any mismatch; the CI ``suite-smoke`` job runs
one leg per scheduler.  ``--update-golden`` replays each spec across
the full scheduler x debug matrix in-process (refusing to write if any
cell disagrees) and rewrites the golden files.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..experiments.runner import BACKENDS
from .golden import (check_golden, conformance_digests, result_digest,
                     run_compiled, write_golden)
from .registry import SuiteRegistry
from .spec import SpecError, SuiteSpec


def _format_run(label: str, result: Any) -> str:
    return (f"  {label:<40} JFI={result.jfi:6.3f} "
            f"goodput={result.total_goodput_bps / 1e6:7.2f} Mbps "
            f"events={result.events}")


def _describe_spec(spec: SuiteSpec) -> str:
    kind = "dumbbell" if spec.scenario is not None else "parking_lot"
    runs = len(spec.compile())
    parts = [f"{spec.name}: {kind}, {runs} run(s)"]
    if spec.grid:
        axes = ", ".join(f"{field}x{len(values)}"
                         for field, values in spec.grid)
        parts.append(f"grid[{axes}]")
    if spec.repeats > 1:
        parts.append(f"repeats={spec.repeats}")
    if spec.faults is not None and spec.faults.enabled:
        parts.append("faults")
    if spec.backend != "packet":
        parts.append(f"backend={spec.backend}")
    if spec.description:
        parts.append(f"— {spec.description}")
    return "  ".join(parts)


def _run_fabric(specs: List[SuiteSpec], args: argparse.Namespace,
                out: Dict[str, Any]) -> int:
    """Execute every compiled run through the sweep fabric.

    Compiles all specs into one manifest under ``--fabric-dir``, runs
    ``--workers`` lease-claiming worker processes over it (resuming
    whatever an earlier — possibly killed — invocation already
    finished), then loads each result back from the sweep's
    fingerprint-keyed cache into ``out`` (``"<spec>:<label>"`` keys).
    Returns a non-zero exit code on quarantined or missing runs.
    """
    from ..experiments.runner import ScenarioResult
    from ..sweep.manifest import SweepDir, manifest_from_runs
    from ..sweep.worker import SweepWorker, WorkerConfig

    runs: List[Any] = []
    labels: List[str] = []
    for spec in specs:
        for run in spec.compile():
            runs.append(run)
            labels.append(f"{spec.name}:{run.label}")
    fabric_dir = args.fabric_dir or str(
        Path(f"{args.cache_dir}.sweep")
        / Path(args.directory).name)
    manifest = manifest_from_runs(Path(args.directory).name, runs,
                                  labels=labels)
    sweep = SweepDir(fabric_dir)
    sweep.initialise(manifest)
    print(f"[fabric] {len(runs)} task(s) -> {fabric_dir} "
          f"({args.workers} worker(s)); resumable via "
          f"'cebinae-repro sweep resume {fabric_dir}'")
    if args.workers <= 1:
        worker = SweepWorker(
            sweep, WorkerConfig(worker_id="suite-w0"), progress=None)
        report = worker.run()
        if report.interrupted:
            return 3
    else:
        from ..sweep.cli import _spawn_workers
        spawn_args = argparse.Namespace(
            expiry_s=30.0, retries=1, poll_s=0.5)
        code = _spawn_workers(fabric_dir, args.workers, spawn_args)
        if code != 0:
            return code
    cache = sweep.cache()
    quarantined = sweep.quarantined()
    failures: List[str] = []
    for run, label in zip(runs, labels):
        payload = cache.load(run.fingerprint())
        if payload is None:
            record = quarantined.get(run.fingerprint(), {})
            failed = record.get("failed", {})
            failures.append(f"{label}: "
                            f"{failed.get('error', 'missing result')}")
            continue
        out[label] = ScenarioResult.from_dict(payload)
    if failures:
        print(f"{len(failures)} fabric run(s) did not complete:",
              file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cebinae-repro suite",
        description="Run a directory of declarative scenario specs "
                    "through the parallel executor, with optional "
                    "golden-result conformance checking.")
    parser.add_argument("directory", help="suite directory of "
                        "*.json/*.yaml spec documents")
    parser.add_argument("--list", action="store_true",
                        help="list the specs and their compiled runs "
                             "without simulating")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size (default 1: serial)")
    parser.add_argument("--cache-dir", default=".cebinae-cache",
                        help="directory for the on-disk result cache")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore cached results and re-simulate")
    parser.add_argument("--backend", choices=list(BACKENDS),
                        help="override the simulation backend for "
                             "every dumbbell spec in the directory "
                             "(parking-lot specs always run "
                             "packet-level)")
    parser.add_argument("--golden", metavar="DIR",
                        help="check results against the golden files "
                             "in DIR; exit 1 on any mismatch")
    parser.add_argument("--update-golden", metavar="DIR",
                        help="replay each spec across the scheduler x "
                             "debug matrix and rewrite its golden "
                             "file in DIR")
    parser.add_argument("--mismatch-out", metavar="PATH",
                        help="with --golden: also write a JSON "
                             "mismatch report to PATH (CI artifact)")
    parser.add_argument("--fabric", action="store_true",
                        help="execute through the crash-resumable "
                             "sweep fabric (repro.sweep): a manifest "
                             "+ lease-claiming workers instead of one "
                             "process pool, resumable after any kill "
                             "via 'cebinae-repro sweep resume'")
    parser.add_argument("--fabric-dir", metavar="DIR",
                        help="sweep directory for --fabric (default: "
                             "<cache-dir>.sweep/<suite dir name>)")
    args = parser.parse_args(argv)

    if args.golden and args.update_golden:
        parser.error("--golden and --update-golden are exclusive")
    if args.fabric and args.update_golden:
        parser.error("--update-golden replays the scheduler x debug "
                     "matrix in-process and cannot run on the fabric")
    if args.fabric_dir and not args.fabric:
        parser.error("--fabric-dir requires --fabric")
    if args.backend == "hybrid" and (args.golden or args.update_golden):
        # Golden digests pin the packet backend's byte-identical
        # contract; the hybrid tier is validated by tolerance, not
        # equality (see DESIGN.md §14).
        parser.error("--backend hybrid cannot be combined with "
                     "--golden/--update-golden")

    try:
        registry = SuiteRegistry.from_directory(args.directory)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    specs: List[SuiteSpec] = list(registry)
    if args.backend is not None:
        specs = [spec if spec.parking is not None
                 else dataclasses.replace(spec, backend=args.backend)
                 for spec in specs]

    if args.list:
        for spec in specs:
            print(_describe_spec(spec))
            for run in spec.compile():
                print(f"  {run.label:<40} {run.fingerprint()}")
        return 0

    if args.update_golden:
        for spec in specs:
            print(f"=== {spec.name} (conformance matrix) ===")
            digests = conformance_digests(spec)
            path = write_golden(args.update_golden, spec, digests)
            print(f"  wrote {path} ({len(digests)} run(s))")
        return 0

    fabric_results: Dict[str, Any] = {}
    if args.fabric:
        code = _run_fabric(specs, args, fabric_results)
        if code != 0:
            return code

    mismatches: List[str] = []
    report: Dict[str, Any] = {}
    for spec in specs:
        print(f"=== {_describe_spec(spec)} ===")
        runs = spec.compile()
        if args.fabric:
            results = [fabric_results[f"{spec.name}:{run.label}"]
                       for run in runs]
        else:
            results = run_compiled(
                runs, workers=args.workers,
                cache_dir=None if args.no_cache else args.cache_dir,
                use_cache=not args.no_cache)
        digests = {}
        for run, result in zip(runs, results):
            print(_format_run(run.label, result))
            entry = {"fingerprint": run.fingerprint()}
            entry.update(result_digest(result))
            digests[run.label] = entry
        if args.golden:
            found = check_golden(args.golden, spec, digests)
            mismatches.extend(found)
            report[spec.name] = {"mismatches": found,
                                 "digests": digests}
            status = "ok" if not found else \
                f"MISMATCH ({len(found)})"
            print(f"  golden: {status}")

    if args.golden:
        if args.mismatch_out:
            with open(args.mismatch_out, "w",
                      encoding="utf-8") as handle:
                json.dump({"mismatches": mismatches,
                           "specs": report}, handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
        if mismatches:
            print(f"{len(mismatches)} golden mismatch(es):",
                  file=sys.stderr)
            for line in mismatches:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"golden conformance: all {len(registry)} spec(s) ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
