"""``cebinae-repro suite <dir>``: run a directory of suite specs.

Loads every spec document in the directory, compiles them into the
parallel executor, prints a per-run report, and optionally checks or
regenerates the golden-conformance files::

    cebinae-repro suite examples/suites/tier1
    cebinae-repro suite examples/suites/tier1 --golden tests/golden
    cebinae-repro suite examples/suites/tier1 --update-golden tests/golden

``--golden`` compares the runs produced under the *current* backend
settings (``REPRO_SCHEDULER``/``REPRO_DEBUG``) against the committed
digests and exits 1 on any mismatch; the CI ``suite-smoke`` job runs
one leg per scheduler.  ``--update-golden`` replays each spec across
the full scheduler x debug matrix in-process (refusing to write if any
cell disagrees) and rewrites the golden files.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Any, Dict, List, Optional

from ..experiments.runner import BACKENDS
from .golden import (check_golden, conformance_digests, result_digest,
                     run_compiled, write_golden)
from .registry import SuiteRegistry
from .spec import SpecError, SuiteSpec


def _format_run(label: str, result: Any) -> str:
    return (f"  {label:<40} JFI={result.jfi:6.3f} "
            f"goodput={result.total_goodput_bps / 1e6:7.2f} Mbps "
            f"events={result.events}")


def _describe_spec(spec: SuiteSpec) -> str:
    kind = "dumbbell" if spec.scenario is not None else "parking_lot"
    runs = len(spec.compile())
    parts = [f"{spec.name}: {kind}, {runs} run(s)"]
    if spec.grid:
        axes = ", ".join(f"{field}x{len(values)}"
                         for field, values in spec.grid)
        parts.append(f"grid[{axes}]")
    if spec.repeats > 1:
        parts.append(f"repeats={spec.repeats}")
    if spec.faults is not None and spec.faults.enabled:
        parts.append("faults")
    if spec.backend != "packet":
        parts.append(f"backend={spec.backend}")
    if spec.description:
        parts.append(f"— {spec.description}")
    return "  ".join(parts)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cebinae-repro suite",
        description="Run a directory of declarative scenario specs "
                    "through the parallel executor, with optional "
                    "golden-result conformance checking.")
    parser.add_argument("directory", help="suite directory of "
                        "*.json/*.yaml spec documents")
    parser.add_argument("--list", action="store_true",
                        help="list the specs and their compiled runs "
                             "without simulating")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size (default 1: serial)")
    parser.add_argument("--cache-dir", default=".cebinae-cache",
                        help="directory for the on-disk result cache")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore cached results and re-simulate")
    parser.add_argument("--backend", choices=list(BACKENDS),
                        help="override the simulation backend for "
                             "every dumbbell spec in the directory "
                             "(parking-lot specs always run "
                             "packet-level)")
    parser.add_argument("--golden", metavar="DIR",
                        help="check results against the golden files "
                             "in DIR; exit 1 on any mismatch")
    parser.add_argument("--update-golden", metavar="DIR",
                        help="replay each spec across the scheduler x "
                             "debug matrix and rewrite its golden "
                             "file in DIR")
    parser.add_argument("--mismatch-out", metavar="PATH",
                        help="with --golden: also write a JSON "
                             "mismatch report to PATH (CI artifact)")
    args = parser.parse_args(argv)

    if args.golden and args.update_golden:
        parser.error("--golden and --update-golden are exclusive")
    if args.backend == "hybrid" and (args.golden or args.update_golden):
        # Golden digests pin the packet backend's byte-identical
        # contract; the hybrid tier is validated by tolerance, not
        # equality (see DESIGN.md §14).
        parser.error("--backend hybrid cannot be combined with "
                     "--golden/--update-golden")

    try:
        registry = SuiteRegistry.from_directory(args.directory)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    specs: List[SuiteSpec] = list(registry)
    if args.backend is not None:
        specs = [spec if spec.parking is not None
                 else dataclasses.replace(spec, backend=args.backend)
                 for spec in specs]

    if args.list:
        for spec in specs:
            print(_describe_spec(spec))
            for run in spec.compile():
                print(f"  {run.label:<40} {run.fingerprint()}")
        return 0

    if args.update_golden:
        for spec in specs:
            print(f"=== {spec.name} (conformance matrix) ===")
            digests = conformance_digests(spec)
            path = write_golden(args.update_golden, spec, digests)
            print(f"  wrote {path} ({len(digests)} run(s))")
        return 0

    mismatches: List[str] = []
    report: Dict[str, Any] = {}
    for spec in specs:
        print(f"=== {_describe_spec(spec)} ===")
        runs = spec.compile()
        results = run_compiled(
            runs, workers=args.workers,
            cache_dir=None if args.no_cache else args.cache_dir,
            use_cache=not args.no_cache)
        digests = {}
        for run, result in zip(runs, results):
            print(_format_run(run.label, result))
            entry = {"fingerprint": run.fingerprint()}
            entry.update(result_digest(result))
            digests[run.label] = entry
        if args.golden:
            found = check_golden(args.golden, spec, digests)
            mismatches.extend(found)
            report[spec.name] = {"mismatches": found,
                                 "digests": digests}
            status = "ok" if not found else \
                f"MISMATCH ({len(found)})"
            print(f"  golden: {status}")

    if args.golden:
        if args.mismatch_out:
            with open(args.mismatch_out, "w",
                      encoding="utf-8") as handle:
                json.dump({"mismatches": mismatches,
                           "specs": report}, handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
        if mismatches:
            print(f"{len(mismatches)} golden mismatch(es):",
                  file=sys.stderr)
            for line in mismatches:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"golden conformance: all {len(registry)} spec(s) ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
