"""The declarative scenario-spec format and its compiler.

A *suite spec* is one JSON (or YAML) document describing a workload:
a topology (dumbbell or parking lot), a flow mix, the disciplines to
compare, an optional scale-policy override, optional fault injection,
optional grid axes, and repeats with derived seeds.  Parsing is strict
— unknown keys, wrong types, and degenerate values are rejected with
the offending JSON path named — and the parsed document compiles into
the existing execution machinery:

* dumbbell specs become :class:`~repro.experiments.scenarios.ScenarioSpec`
  objects scaled by a :class:`~repro.experiments.scenarios.ScalePolicy`
  and wrapped into :class:`~repro.experiments.parallel.RunSpec` points,
  so suite runs share cache fingerprints with the figure sweeps;
* parking-lot specs become :func:`repro.suite.parking.run_parking_lot`
  tasks with their own fingerprints.

Determinism contract: a spec is a pure value.  Equal specs have equal
:meth:`SuiteSpec.fingerprint` digests, ``from_dict(to_dict(s)) == s``
holds field for field (``tests/test_scenario_specs.py`` pins both with
hypothesis), and every compiled run is replayable byte-identically —
which is what the golden-conformance harness asserts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.invariants import InvariantViolation
from ..core.params import CebinaeParams
from ..experiments.parallel import (RunSpec, Task, fingerprint,
                                    scenario_task)
from ..experiments.runner import BACKENDS, Discipline, ScenarioResult
from ..experiments.scenarios import (ScalePolicy, ScenarioSpec,
                                     _require_cca)
from ..faults.schedule import derive_seed
from ..faults.spec import FaultSpec
from ..netsim.packet import MTU_BYTES

#: Bump when the document format changes incompatibly.
SPEC_SCHEMA_VERSION = 1

#: ScenarioSpec fields a ``grid`` section may sweep.
GRID_FIELDS = ("rate_bps", "rtts_ms", "buffer_mtus", "cca_mix",
               "duration_s")


class SpecError(ValueError):
    """A suite-spec document failed validation.

    The message always names the document (``source``) and the JSON
    path of the offending value, so a broken spec in a directory of
    fifty is locatable without a debugger.
    """


def _fail(source: str, path: str, message: str) -> "SpecError":
    return SpecError(f"{source}: {path}: {message}")


def _expect_mapping(source: str, path: str, value: Any
                    ) -> Dict[str, Any]:
    if not isinstance(value, dict):
        raise _fail(source, path, f"expected an object, got "
                    f"{type(value).__name__}")
    return value


def _expect_keys(source: str, path: str, data: Mapping[str, Any],
                 known: Sequence[str]) -> None:
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise _fail(source, path,
                    f"unknown key(s) {unknown}; known: {sorted(known)}")


def _expect_number(source: str, path: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _fail(source, path, f"expected a number, got {value!r}")
    return float(value)


def _expect_int(source: str, path: str, value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise _fail(source, path, f"expected an integer, got {value!r}")
    return value


def _expect_bool(source: str, path: str, value: Any) -> bool:
    if not isinstance(value, bool):
        raise _fail(source, path, f"expected a boolean, got {value!r}")
    return value


def _expect_str(source: str, path: str, value: Any) -> str:
    if not isinstance(value, str) or not value:
        raise _fail(source, path,
                    f"expected a non-empty string, got {value!r}")
    return value


def _parse_mix(source: str, path: str, value: Any
               ) -> Tuple[Tuple[str, int], ...]:
    if not isinstance(value, (list, tuple)) or not value:
        raise _fail(source, path,
                    "expected a non-empty list of [cca, count] pairs")
    mix: List[Tuple[str, int]] = []
    for index, pair in enumerate(value):
        here = f"{path}[{index}]"
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise _fail(source, here,
                        f"expected a [cca, count] pair, got {pair!r}")
        cca = _expect_str(source, f"{here}[0]", pair[0])
        count = _expect_int(source, f"{here}[1]", pair[1])
        mix.append((cca, count))
    return tuple(mix)


def _parse_floats(source: str, path: str, value: Any
                  ) -> Tuple[float, ...]:
    if not isinstance(value, (list, tuple)) or not value:
        raise _fail(source, path, "expected a non-empty list of numbers")
    return tuple(_expect_number(source, f"{path}[{i}]", v)
                 for i, v in enumerate(value))


# --------------------------------------------------------------------------
# The parking-lot scenario document.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ParkingLotSpec:
    """A multi-bottleneck parking-lot workload (Figure 11's shape).

    ``num_long`` long flows cross every segment; ``cross_mix[i]``
    states the (cca, count) group entering at segment ``i``.  The
    ``tau`` override, when set, replaces the policy-derived Cebinae
    tax (Figure 11 itself needs a raised tax; see DESIGN.md §5.1).
    """

    name: str
    rate_bps: float
    buffer_mtus: int
    num_long: int
    long_cca: str
    cross_mix: Tuple[Tuple[str, int], ...]
    duration_s: float
    access_delay_ms: float = 8.0
    bottleneck_delay_ms: float = 4.0
    paper_rate_bps: float = 100e6
    tau: Optional[float] = None

    def __post_init__(self) -> None:
        owner = f"parking lot {self.name!r}"
        if not self.name:
            raise ValueError("parking-lot name must not be empty")
        for field_name in ("rate_bps", "duration_s", "access_delay_ms",
                          "bottleneck_delay_ms", "paper_rate_bps"):
            value = getattr(self, field_name)
            if not value > 0:
                raise ValueError(
                    f"{owner}: {field_name} must be > 0, got {value!r}")
        if self.buffer_mtus <= 0:
            raise ValueError(
                f"{owner}: buffer_mtus must be >= 1, got "
                f"{self.buffer_mtus!r}")
        if self.num_long < 1:
            raise ValueError(
                f"{owner}: num_long must be >= 1, got {self.num_long!r}")
        _require_cca(owner, self.long_cca)
        if not self.cross_mix:
            raise ValueError(
                f"{owner}: cross_mix must not be empty (the topology "
                f"needs at least one bottleneck segment)")
        for cca, count in self.cross_mix:
            _require_cca(owner, cca)
            if count < 1:
                raise ValueError(
                    f"{owner}: cross group {cca!r} needs count >= 1, "
                    f"got {count!r}")
        if self.tau is not None and not 0 < self.tau <= 1:
            raise ValueError(
                f"{owner}: tau must be in (0, 1], got {self.tau!r}")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready payload (``name`` carried separately)."""
        return _parking_to_dict(self)

    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, Any]
                  ) -> "ParkingLotSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        kwargs = dict(data)
        kwargs["cross_mix"] = tuple(
            (str(cca), int(count)) for cca, count in kwargs["cross_mix"])
        return cls(name=name, **kwargs)

    def cebinae_params(self, policy: ScalePolicy) -> CebinaeParams:
        """Cebinae parameters for this topology under ``policy``."""
        max_rtt_s = (4 * self.access_delay_ms
                     + 2 * len(self.cross_mix)
                     * self.bottleneck_delay_ms) / 1e3
        params = policy.cebinae_params(
            self.rate_bps, self.buffer_mtus * MTU_BYTES,
            max_rtt_s=max_rtt_s,
            rate_scale=self.paper_rate_bps / self.rate_bps)
        if self.tau is not None:
            params = dataclasses.replace(
                params, tau=self.tau,
                delta_port=min(2 * self.tau, 0.16))
        return params


_PARKING_KEYS = ("rate_bps", "buffer_mtus", "num_long", "long_cca",
                 "cross_mix", "duration_s", "access_delay_ms",
                 "bottleneck_delay_ms", "paper_rate_bps", "tau")


def _parse_parking(source: str, name: str, data: Mapping[str, Any]
                   ) -> ParkingLotSpec:
    path = "parking_lot"
    _expect_keys(source, path, data, _PARKING_KEYS)
    for key in ("rate_bps", "buffer_mtus", "num_long", "long_cca",
                "cross_mix", "duration_s"):
        if key not in data:
            raise _fail(source, path, f"missing required key {key!r}")
    kwargs: Dict[str, Any] = {
        "name": name,
        "rate_bps": _expect_number(source, f"{path}.rate_bps",
                                   data["rate_bps"]),
        "buffer_mtus": _expect_int(source, f"{path}.buffer_mtus",
                                   data["buffer_mtus"]),
        "num_long": _expect_int(source, f"{path}.num_long",
                                data["num_long"]),
        "long_cca": _expect_str(source, f"{path}.long_cca",
                                data["long_cca"]),
        "cross_mix": _parse_mix(source, f"{path}.cross_mix",
                                data["cross_mix"]),
        "duration_s": _expect_number(source, f"{path}.duration_s",
                                     data["duration_s"]),
    }
    for key in ("access_delay_ms", "bottleneck_delay_ms",
                "paper_rate_bps"):
        if key in data:
            kwargs[key] = _expect_number(source, f"{path}.{key}",
                                         data[key])
    if data.get("tau") is not None:
        kwargs["tau"] = _expect_number(source, f"{path}.tau",
                                       data["tau"])
    try:
        return ParkingLotSpec(**kwargs)
    except ValueError as exc:
        raise _fail(source, path, str(exc)) from exc


def _parking_to_dict(spec: ParkingLotSpec) -> Dict[str, Any]:
    return {
        "rate_bps": spec.rate_bps,
        "buffer_mtus": spec.buffer_mtus,
        "num_long": spec.num_long,
        "long_cca": spec.long_cca,
        "cross_mix": [list(pair) for pair in spec.cross_mix],
        "duration_s": spec.duration_s,
        "access_delay_ms": spec.access_delay_ms,
        "bottleneck_delay_ms": spec.bottleneck_delay_ms,
        "paper_rate_bps": spec.paper_rate_bps,
        "tau": spec.tau,
    }


# --------------------------------------------------------------------------
# The dumbbell scenario document.
# --------------------------------------------------------------------------

_SCENARIO_KEYS = ("rate_bps", "rtts_ms", "buffer_mtus", "cca_mix",
                  "duration_s", "start_times_s")


def _parse_scenario(source: str, name: str, data: Mapping[str, Any]
                    ) -> ScenarioSpec:
    path = "scenario"
    _expect_keys(source, path, data, _SCENARIO_KEYS)
    for key in ("rate_bps", "rtts_ms", "buffer_mtus", "cca_mix",
                "duration_s"):
        if key not in data:
            raise _fail(source, path, f"missing required key {key!r}")
    starts = None
    if data.get("start_times_s") is not None:
        starts = _parse_floats(source, f"{path}.start_times_s",
                               data["start_times_s"])
    try:
        return ScenarioSpec(
            name=name,
            rate_bps=_expect_number(source, f"{path}.rate_bps",
                                    data["rate_bps"]),
            rtts_ms=_parse_floats(source, f"{path}.rtts_ms",
                                  data["rtts_ms"]),
            buffer_mtus=_expect_int(source, f"{path}.buffer_mtus",
                                    data["buffer_mtus"]),
            cca_mix=_parse_mix(source, f"{path}.cca_mix",
                               data["cca_mix"]),
            duration_s=_expect_number(source, f"{path}.duration_s",
                                      data["duration_s"]),
            start_times_s=starts)
    except SpecError:
        raise
    except ValueError as exc:
        raise _fail(source, path, str(exc)) from exc


def _scenario_to_dict(spec: ScenarioSpec) -> Dict[str, Any]:
    return {
        "rate_bps": spec.rate_bps,
        "rtts_ms": list(spec.rtts_ms),
        "buffer_mtus": spec.buffer_mtus,
        "cca_mix": [list(pair) for pair in spec.cca_mix],
        "duration_s": spec.duration_s,
        "start_times_s": list(spec.start_times_s)
        if spec.start_times_s is not None else None,
    }


# --------------------------------------------------------------------------
# Grid axes and policy overrides.
# --------------------------------------------------------------------------

def _parse_grid(source: str, data: Mapping[str, Any]
                ) -> Tuple[Tuple[str, Tuple[Any, ...]], ...]:
    axes: List[Tuple[str, Tuple[Any, ...]]] = []
    _expect_keys(source, "grid", data, GRID_FIELDS)
    # Axis order follows the canonical GRID_FIELDS order, not the
    # document's key order, so point numbering is key-order independent.
    for field_name in GRID_FIELDS:
        if field_name not in data:
            continue
        values = data[field_name]
        if not isinstance(values, (list, tuple)) or not values:
            raise _fail(source, f"grid.{field_name}",
                        "expected a non-empty list of values")
        converted: List[Any] = []
        for index, value in enumerate(values):
            here = f"grid.{field_name}[{index}]"
            if field_name == "rtts_ms":
                converted.append(_parse_floats(source, here, value))
            elif field_name == "cca_mix":
                converted.append(_parse_mix(source, here, value))
            elif field_name == "buffer_mtus":
                converted.append(_expect_int(source, here, value))
            else:
                converted.append(_expect_number(source, here, value))
        axes.append((field_name, tuple(converted)))
    return tuple(axes)


def _grid_to_dict(grid: Tuple[Tuple[str, Tuple[Any, ...]], ...]
                  ) -> Dict[str, Any]:
    def encode(field_name: str, value: Any) -> Any:
        if field_name == "rtts_ms":
            return list(value)
        if field_name == "cca_mix":
            return [list(pair) for pair in value]
        return value

    return {field_name: [encode(field_name, v) for v in values]
            for field_name, values in grid}


_POLICY_FIELDS = tuple(f.name for f in
                       dataclasses.fields(ScalePolicy))


def _parse_policy(source: str, data: Mapping[str, Any]) -> ScalePolicy:
    _expect_keys(source, "policy", data, _POLICY_FIELDS)
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        if key == "max_flows":
            kwargs[key] = _expect_int(source, f"policy.{key}", value)
        else:
            kwargs[key] = _expect_number(source, f"policy.{key}", value)
    return ScalePolicy(**kwargs)


def _policy_to_dict(policy: ScalePolicy) -> Dict[str, Any]:
    """Only the fields that differ from the defaults (sparse docs)."""
    default = ScalePolicy()
    return {f.name: getattr(policy, f.name)
            for f in dataclasses.fields(ScalePolicy)
            if getattr(policy, f.name) != getattr(default, f.name)}


# --------------------------------------------------------------------------
# Compiled runs.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class CompiledRun:
    """One executable point of a suite spec.

    Exactly one of ``runspec`` (dumbbell; shares fingerprints — and
    hence cache entries — with the figure sweeps) and ``parking``
    (a :func:`~repro.suite.parking.run_parking_lot` call) is set.
    ``label`` is unique within the suite and keys the golden files.
    """

    label: str
    runspec: Optional[RunSpec] = None
    parking: Optional[Tuple[ParkingLotSpec, Discipline, int,
                            CebinaeParams, bool]] = None

    def fingerprint(self) -> str:
        if self.runspec is not None:
            return self.runspec.fingerprint()
        assert self.parking is not None
        spec, discipline, seed, params, collect_series = self.parking
        return fingerprint("ScenarioResult", {
            "parking_lot": spec, "discipline": discipline,
            "seed": seed, "cebinae": params,
            "collect_series": collect_series})

    def task(self) -> Task:
        if self.runspec is not None:
            task = scenario_task(self.runspec)
            return dataclasses.replace(task, label=self.label)
        assert self.parking is not None
        from .parking import run_parking_lot
        spec, discipline, seed, params, collect_series = self.parking
        return Task(fn=run_parking_lot,
                    kwargs={"spec": spec,
                            "discipline_name": discipline.value,
                            "seed": seed, "cebinae": params,
                            "collect_series": collect_series},
                    label=self.label,
                    fingerprint=self.fingerprint(),
                    kind="ScenarioResult",
                    encode=ScenarioResult.to_dict,
                    decode=ScenarioResult.from_dict)


# --------------------------------------------------------------------------
# The suite spec itself.
# --------------------------------------------------------------------------

_TOP_KEYS = ("schema_version", "name", "description", "topology",
             "scenario", "parking_lot", "grid", "policy", "disciplines",
             "collect_series", "record_history", "repeats", "base_seed",
             "faults", "backend")


@dataclass(frozen=True)
class SuiteSpec:
    """One parsed suite document, ready to compile.

    ``scenario`` is set for dumbbell topologies, ``parking`` for
    parking lots — exactly one of the two.  ``grid`` sweeps dumbbell
    scenario fields (cartesian product, canonical axis order);
    ``repeats`` replicates every point with seeds derived from
    ``base_seed`` via :func:`repro.faults.schedule.derive_seed`.
    """

    name: str
    scenario: Optional[ScenarioSpec] = None
    parking: Optional[ParkingLotSpec] = None
    description: str = ""
    grid: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    policy: ScalePolicy = ScalePolicy()
    disciplines: Tuple[Discipline, ...] = (Discipline.FIFO,
                                           Discipline.CEBINAE)
    collect_series: bool = False
    record_history: bool = False
    repeats: int = 1
    base_seed: int = 0
    faults: Optional[FaultSpec] = None
    backend: str = "packet"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("suite spec name must not be empty")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"suite spec {self.name!r}: backend must be one of "
                f"{sorted(BACKENDS)}, got {self.backend!r}")
        if self.parking is not None and self.backend != "packet":
            raise ValueError(
                f"suite spec {self.name!r}: the hybrid backend models "
                f"a single bottleneck; parking-lot topologies run "
                f"packet-level only")
        if (self.scenario is None) == (self.parking is None):
            raise ValueError(
                f"suite spec {self.name!r}: exactly one of 'scenario' "
                f"and 'parking_lot' must be given")
        if self.parking is not None and self.grid:
            raise ValueError(
                f"suite spec {self.name!r}: grid axes apply to "
                f"dumbbell scenarios only")
        if not self.disciplines:
            raise ValueError(
                f"suite spec {self.name!r}: disciplines must not be "
                f"empty")
        if len(set(self.disciplines)) != len(self.disciplines):
            raise ValueError(
                f"suite spec {self.name!r}: duplicate disciplines")
        if self.repeats < 1:
            raise ValueError(
                f"suite spec {self.name!r}: repeats must be >= 1, got "
                f"{self.repeats!r}")
        if self.base_seed < 0:
            raise ValueError(
                f"suite spec {self.name!r}: base_seed must be >= 0")

    # -- parsing and serialisation ---------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any],
                  source: str = "<spec>") -> "SuiteSpec":
        data = _expect_mapping(source, "$", data)
        _expect_keys(source, "$", data, _TOP_KEYS)
        version = data.get("schema_version", SPEC_SCHEMA_VERSION)
        if version != SPEC_SCHEMA_VERSION:
            raise _fail(source, "schema_version",
                        f"unsupported version {version!r} (this build "
                        f"reads version {SPEC_SCHEMA_VERSION})")
        if "name" not in data:
            raise _fail(source, "$", "missing required key 'name'")
        name = _expect_str(source, "name", data["name"])
        topology = data.get("topology", "dumbbell")
        if topology not in ("dumbbell", "parking_lot"):
            raise _fail(source, "topology",
                        f"expected 'dumbbell' or 'parking_lot', got "
                        f"{topology!r}")
        kwargs: Dict[str, Any] = {"name": name}
        if "description" in data:
            kwargs["description"] = data["description"]
            if not isinstance(kwargs["description"], str):
                raise _fail(source, "description",
                            "expected a string")
        if topology == "dumbbell":
            if "scenario" not in data:
                raise _fail(source, "$",
                            "dumbbell specs need a 'scenario' section")
            if "parking_lot" in data:
                raise _fail(source, "parking_lot",
                            "not allowed with topology 'dumbbell'")
            kwargs["scenario"] = _parse_scenario(
                source, name,
                _expect_mapping(source, "scenario", data["scenario"]))
        else:
            if "parking_lot" not in data:
                raise _fail(source, "$", "parking-lot specs need a "
                            "'parking_lot' section")
            if "scenario" in data or "grid" in data:
                raise _fail(source, "$",
                            "'scenario'/'grid' are not allowed with "
                            "topology 'parking_lot'")
            kwargs["parking"] = _parse_parking(
                source, name,
                _expect_mapping(source, "parking_lot",
                                data["parking_lot"]))
        if "grid" in data:
            kwargs["grid"] = _parse_grid(
                source, _expect_mapping(source, "grid", data["grid"]))
        if "policy" in data:
            kwargs["policy"] = _parse_policy(
                source, _expect_mapping(source, "policy",
                                        data["policy"]))
        if "disciplines" in data:
            raw = data["disciplines"]
            if not isinstance(raw, (list, tuple)) or not raw:
                raise _fail(source, "disciplines",
                            "expected a non-empty list")
            disciplines: List[Discipline] = []
            for index, value in enumerate(raw):
                try:
                    disciplines.append(Discipline(value))
                except ValueError:
                    known = ", ".join(d.value for d in Discipline)
                    raise _fail(source, f"disciplines[{index}]",
                                f"unknown discipline {value!r}; known: "
                                f"{known}") from None
            kwargs["disciplines"] = tuple(disciplines)
        for key in ("collect_series", "record_history"):
            if key in data:
                kwargs[key] = _expect_bool(source, key, data[key])
        if "repeats" in data:
            kwargs["repeats"] = _expect_int(source, "repeats",
                                            data["repeats"])
        if "base_seed" in data:
            kwargs["base_seed"] = _expect_int(source, "base_seed",
                                              data["base_seed"])
        if "backend" in data:
            backend = _expect_str(source, "backend", data["backend"])
            if backend not in BACKENDS:
                raise _fail(source, "backend",
                            f"expected one of {sorted(BACKENDS)}, got "
                            f"{backend!r}")
            kwargs["backend"] = backend
        if data.get("faults") is not None:
            try:
                kwargs["faults"] = FaultSpec.from_dict(
                    _expect_mapping(source, "faults", data["faults"]))
            except SpecError:
                raise
            # InvariantViolation: FaultSpec field checks route through
            # the invariants module, not plain ValueError.
            except (TypeError, ValueError, InvariantViolation) as exc:
                raise _fail(source, "faults", str(exc)) from exc
        try:
            return cls(**kwargs)
        except SpecError:
            raise
        except ValueError as exc:
            raise _fail(source, "$", str(exc)) from exc

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready document; ``from_dict`` restores it losslessly."""
        data: Dict[str, Any] = {
            "schema_version": SPEC_SCHEMA_VERSION,
            "name": self.name,
        }
        if self.description:
            data["description"] = self.description
        if self.scenario is not None:
            data["topology"] = "dumbbell"
            data["scenario"] = _scenario_to_dict(self.scenario)
        else:
            assert self.parking is not None
            data["topology"] = "parking_lot"
            data["parking_lot"] = _parking_to_dict(self.parking)
        if self.grid:
            data["grid"] = _grid_to_dict(self.grid)
        policy = _policy_to_dict(self.policy)
        if policy:
            data["policy"] = policy
        data["disciplines"] = [d.value for d in self.disciplines]
        data["collect_series"] = self.collect_series
        data["record_history"] = self.record_history
        data["repeats"] = self.repeats
        data["base_seed"] = self.base_seed
        if self.faults is not None:
            data["faults"] = self.faults.to_dict()
        if self.backend != "packet":
            # Emitted only when non-default so documents written before
            # the hybrid backend existed keep their fingerprints.
            data["backend"] = self.backend
        return data

    def fingerprint(self) -> str:
        """A stable digest of the whole document.

        Stamped into golden files so a stale golden (spec edited,
        golden not regenerated) is distinguishable from a real
        determinism break.
        """
        return fingerprint("SuiteSpec", {"doc": self.to_dict()})

    # -- compilation ------------------------------------------------------
    def _points(self) -> List[ScenarioSpec]:
        """Grid expansion: one ScenarioSpec per grid point."""
        assert self.scenario is not None
        if not self.grid:
            return [self.scenario]
        points = [self.scenario]
        for field_name, values in self.grid:
            points = [dataclasses.replace(point, **{field_name: value})
                      for point in points for value in values]
        return [dataclasses.replace(point, name=f"{self.name}#p{index}")
                for index, point in enumerate(points)]

    def seeds(self, point_name: str) -> List[int]:
        """Per-repeat seeds: the base, then derived children.

        Repeat 0 uses ``base_seed`` unchanged so a one-repeat suite
        point is fingerprint-identical to the same scenario run by the
        figure sweeps (warm caches stay warm).
        """
        return [self.base_seed if index == 0
                else derive_seed(self.base_seed, point_name, index)
                for index in range(self.repeats)]

    def compile(self) -> List[CompiledRun]:
        """Expand grid x repeats x disciplines into executable runs."""
        runs: List[CompiledRun] = []
        if self.scenario is not None:
            for point in self._points():
                scaled = self.policy.apply(point)
                for index, seed in enumerate(self.seeds(point.name)):
                    for discipline in self.disciplines:
                        label = f"{point.name}/{discipline.value}"
                        if self.repeats > 1:
                            label = f"{label}@rep{index}"
                        runs.append(CompiledRun(
                            label=label,
                            runspec=RunSpec(
                                scaled=scaled, discipline=discipline,
                                collect_series=self.collect_series,
                                record_history=self.record_history,
                                seed=seed, faults=self.faults,
                                backend=self.backend)))
        else:
            assert self.parking is not None
            if self.faults is not None:
                raise SpecError(
                    f"suite spec {self.name!r}: fault injection is "
                    f"not supported on parking-lot topologies yet")
            params = self.parking.cebinae_params(self.policy)
            for index, seed in enumerate(self.seeds(self.name)):
                for discipline in self.disciplines:
                    label = f"{self.name}/{discipline.value}"
                    if self.repeats > 1:
                        label = f"{label}@rep{index}"
                    runs.append(CompiledRun(
                        label=label,
                        parking=(self.parking, discipline, seed,
                                 params, self.collect_series)))
        labels = [run.label for run in runs]
        if len(set(labels)) != len(labels):
            raise SpecError(
                f"suite spec {self.name!r}: compiled labels collide "
                f"({labels})")
        return runs
