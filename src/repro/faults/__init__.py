"""Deterministic fault injection and graceful degradation.

Cebinae's core claim is that each router augments fairness
*independently*: the control plane must reconfigure LBF rates and ⊤
membership within the deadline ``L`` every round, links flap, and long
sweeps wedge.  This package makes all of that *testable* without giving
up the repo's determinism contract:

* :class:`~repro.faults.spec.FaultSpec` — a frozen, JSON-able
  description of every fault a run may inject (link flaps, stochastic
  loss/corruption/reordering, node freezes, control-plane delay/drop).
  It fingerprints like any other run parameter, so the result cache
  distinguishes faulted from unfaulted runs.
* :class:`~repro.faults.schedule.FaultSchedule` — the seed-driven
  interpreter: it derives one ``random.Random`` stream per fault target
  (stable SHA-256 seed derivation, never Python's randomised ``hash``),
  schedules fault events through the simulation engine in integer
  nanoseconds, and keeps a deterministic timeline for reporting.  Two
  runs with the same spec are byte-identical, on either scheduler
  backend, with debug validation on or off.
* :class:`~repro.faults.watchdog.RunAborted` and
  :class:`~repro.faults.watchdog.WallClockWatchdog` — executor-level
  guards that terminate wedged runs with partial-result capture instead
  of hanging a sweep's process pool.

With no spec installed every hook is a single attribute test on the hot
path and simulation results are byte-identical to a build without this
package.
"""

from .schedule import ControlPlaneFaults, FaultSchedule, derive_seed
from .spec import FaultSpec, parse_fault_tokens
from .watchdog import RunAborted, WallClockWatchdog

__all__ = [
    "ControlPlaneFaults",
    "FaultSchedule",
    "FaultSpec",
    "RunAborted",
    "WallClockWatchdog",
    "derive_seed",
    "parse_fault_tokens",
]
