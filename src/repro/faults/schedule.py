"""The seed-driven fault interpreter.

A :class:`FaultSchedule` turns a frozen
:class:`~repro.faults.spec.FaultSpec` into concrete simulator state:

* per-link :class:`LinkFaultState` objects installed on matching links
  (stochastic loss / corruption / reordering at transmission time);
* link down/up events (explicit windows plus seeded random flaps);
* node freeze/restart events;
* a :class:`ControlPlaneFaults` oracle the Cebinae agent consults each
  round to decide whether its reconfiguration met the deadline ``L``.

Determinism is load-bearing everywhere:

* every random stream is a ``random.Random`` seeded by
  :func:`derive_seed` — SHA-256 over the root seed and the target's
  *name* (never ``id()`` or Python's per-process ``hash()``), so the
  same spec produces the same draws in any process;
* per-target streams are independent: inserting a new faulted link
  cannot shift another link's draw sequence;
* fault events go through the simulation engine with integer-nanosecond
  times, so they interleave with packet events identically on every
  scheduler backend.
"""

from __future__ import annotations

import hashlib
import json
import random
from fnmatch import fnmatchcase
from typing import Any, Dict, List, Optional, Tuple

from ..netsim.engine import Simulator
from ..netsim.link import Link
from ..netsim.node import Node
from ..netsim.tracing import FaultEvent
from ..obs import bus as obs_bus
from ..obs.events import FaultTraceEvent
from .spec import FaultSpec, Window, merge_windows


def derive_seed(root_seed: int, *parts: object) -> int:
    """A stable 64-bit child seed for one named fault stream.

    SHA-256 over a canonical JSON encoding: reproducible across
    processes and platforms, unlike ``hash()`` (PYTHONHASHSEED) or
    ``id()`` (allocation order).
    """
    blob = json.dumps([root_seed, *[str(part) for part in parts]],
                      separators=(",", ":"))
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class LinkFaultState:
    """Per-link stochastic impairments and fault counters.

    Installed on a :class:`~repro.netsim.link.Link`; the link consults
    it once per transmitted packet (see ``Link._deliver_impaired``).
    One ``random.Random`` per link keeps draw sequences independent
    across links.
    """

    __slots__ = ("spec", "rng", "lost_packets", "corrupted_packets",
                 "reordered_packets", "down_drops", "down_windows")

    def __init__(self, spec: FaultSpec, seed: int) -> None:
        self.spec = spec
        self.rng = random.Random(seed)
        self.lost_packets = 0
        self.corrupted_packets = 0
        self.reordered_packets = 0
        #: Packets cut on the wire while the link was down.
        self.down_drops = 0
        #: The merged down schedule, for reporting.
        self.down_windows: Tuple[Window, ...] = ()

    def draw(self, now_ns: int) -> int:
        """The fate of one transmitted packet.

        Returns ``-1`` to drop (loss), ``-2`` to drop as corrupted,
        ``0`` to deliver normally, or a positive extra delay in
        nanoseconds to deliver reordered.  Exactly one uniform draw per
        packet inside the active window (plus one more for a reorder
        delay), so the stream stays aligned with the packet sequence.
        """
        spec = self.spec
        if not spec.active_at(now_ns):
            return 0
        u = self.rng.random()
        if u < spec.loss_rate:
            self.lost_packets += 1
            return -1
        if u < spec.loss_rate + spec.corrupt_rate:
            self.corrupted_packets += 1
            return -2
        if u < spec.loss_rate + spec.corrupt_rate + spec.reorder_rate:
            self.reordered_packets += 1
            return self.rng.randrange(1, spec.reorder_delay_ns + 1)
        return 0

    def summary(self) -> Dict[str, Any]:
        return {
            "lost_packets": self.lost_packets,
            "corrupted_packets": self.corrupted_packets,
            "reordered_packets": self.reordered_packets,
            "down_drops": self.down_drops,
            "down_windows": [list(window)
                             for window in self.down_windows],
        }


class ControlPlaneFaults:
    """Per-round verdicts on the control plane's deadline ``L``.

    The Cebinae agent calls :meth:`draw` once per rotation.  A verdict
    of ``(dropped, extra_delay_ns)`` with ``dropped`` or a positive
    delay means the round's reconfiguration missed the deadline; the
    agent then fails open (or, with ``cp_fail_open=False``, applies the
    stale configuration late).
    """

    __slots__ = ("spec", "rng", "rounds", "misses", "drops", "delays")

    def __init__(self, spec: FaultSpec, seed: int) -> None:
        self.spec = spec
        self.rng = random.Random(seed)
        self.rounds = 0
        self.misses = 0
        self.drops = 0
        self.delays = 0

    @property
    def fail_open(self) -> bool:
        return self.spec.cp_fail_open

    def draw(self, now_ns: int) -> Tuple[bool, int]:
        """``(dropped, extra_delay_ns)`` for the round starting now."""
        self.rounds += 1
        spec = self.spec
        for start, end in spec.cp_outage_windows:
            if start <= now_ns < end:
                self.misses += 1
                self.drops += 1
                return True, 0
        if spec.cp_drop_prob and self.rng.random() < spec.cp_drop_prob:
            self.misses += 1
            self.drops += 1
            return True, 0
        if spec.cp_delay_prob and self.rng.random() < spec.cp_delay_prob:
            extra = self.rng.randrange(1, spec.cp_delay_max_ns + 1)
            self.misses += 1
            self.delays += 1
            return False, extra
        return False, 0

    def summary(self) -> Dict[str, Any]:
        return {"rounds": self.rounds, "deadline_misses": self.misses,
                "dropped_reconfigs": self.drops,
                "delayed_reconfigs": self.delays}


class FaultSchedule:
    """Interpret one spec against one simulation.

    Usage (the runner does all of this)::

        schedule = FaultSchedule(spec, sim)
        cp_faults = schedule.control_plane_faults()   # for the factory
        schedule.install(links, nodes, duration_ns)   # after build
        sim.run(...)
        result.fault_summary = schedule.summary()
    """

    def __init__(self, spec: FaultSpec, sim: Simulator) -> None:
        self.spec = spec
        self.sim = sim
        self.timeline: List[FaultEvent] = []
        self._links: List[Link] = []
        self._nodes: List[Node] = []
        self._cp: Optional[ControlPlaneFaults] = None
        # Observability: structural faults are folded onto the trace
        # bus (topic "fault") as they land, mirroring the timeline.
        self._trace_fault = obs_bus.emitter_for("fault")

    def _timeline_append(self, event: FaultEvent) -> None:
        self.timeline.append(event)
        trace = self._trace_fault
        if trace is not None:
            trace(FaultTraceEvent(time_ns=event.time_ns, kind=event.kind,
                                  target=event.target))

    # -- wiring ------------------------------------------------------------
    def control_plane_faults(self) -> Optional[ControlPlaneFaults]:
        """The (memoised) control-plane oracle, if the spec has one."""
        if self._cp is None and self.spec.control_plane_enabled:
            self._cp = ControlPlaneFaults(
                self.spec, derive_seed(self.spec.seed, "control-plane"))
        return self._cp

    def install(self, links: List[Link], nodes: List[Node],
                duration_ns: int) -> None:
        """Attach fault state and schedule every structural event.

        Links and nodes are matched by *name* against the spec's
        patterns; iteration order does not matter because every stream
        is seeded per target name.
        """
        spec = self.spec
        if spec.link_faults_enabled:
            for link in links:
                if fnmatchcase(link.name, spec.link_pattern):
                    self._install_link(link, duration_ns)
        for node in nodes:
            windows = merge_windows(
                (start, end)
                for pattern, start, end in spec.node_freeze_windows
                if fnmatchcase(node.name, pattern))
            for start, end in windows:
                if start >= duration_ns:
                    continue
                self.sim.schedule_at(start, self._freeze_node, node)
                self.sim.schedule_at(min(end, duration_ns),
                                     self._restart_node, node)

    def _install_link(self, link: Link, duration_ns: int) -> None:
        spec = self.spec
        state = LinkFaultState(
            spec, derive_seed(spec.seed, "link", link.name))
        windows = list(spec.link_down_windows)
        if spec.flap_count:
            flap_end = spec.end_ns or duration_ns
            flap_rng = random.Random(
                derive_seed(spec.seed, "flaps", link.name))
            span = max(flap_end - spec.start_ns, 1)
            for _ in range(spec.flap_count):
                start = spec.start_ns + flap_rng.randrange(span)
                windows.append((start, start + spec.flap_down_ns))
        state.down_windows = merge_windows(windows)
        link.set_fault_state(state)
        for start, end in state.down_windows:
            if start >= duration_ns:
                continue
            self.sim.schedule_at(start, self._cut_link, link)
            self.sim.schedule_at(min(end, duration_ns),
                                 self._restore_link, link)
        self._links.append(link)

    # -- the scheduled fault events (profiled under FaultSchedule) ---------
    def _cut_link(self, link: Link) -> None:
        self._timeline_append(FaultEvent(self.sim.now_ns, "link_down",
                                         link.name))
        link.set_up(False)

    def _restore_link(self, link: Link) -> None:
        self._timeline_append(FaultEvent(self.sim.now_ns, "link_up",
                                         link.name))
        link.set_up(True)

    def _freeze_node(self, node: Node) -> None:
        self._timeline_append(FaultEvent(self.sim.now_ns, "node_freeze",
                                         node.name))
        node.set_frozen(True)
        self._nodes.append(node)

    def _restart_node(self, node: Node) -> None:
        self._timeline_append(FaultEvent(self.sim.now_ns, "node_restart",
                                         node.name))
        node.set_frozen(False)

    # -- reporting ---------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """A deterministic JSON-able account of everything injected.

        Keys are sorted names; values are plain ints/lists so the
        payload is byte-stable under ``json.dumps(sort_keys=True)`` and
        round-trips through :class:`ScenarioResult` JSON unchanged.
        """
        links: Dict[str, Any] = {}
        for link in sorted(self._links, key=lambda l: l.name):
            state = link.fault_state
            if state is not None:
                links[link.name] = state.summary()
        nodes: Dict[str, Any] = {}
        for node in sorted(set(self._nodes), key=lambda n: n.name):
            nodes[node.name] = {"frozen_drops": node.frozen_drops}
        summary: Dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "links": links,
            "nodes": nodes,
            "timeline": [event.to_dict() for event in self.timeline],
        }
        cp = self._cp
        if cp is not None:
            summary["control_plane"] = cp.summary()
        return summary
