"""Run watchdogs: convert wedged runs into diagnosable failures.

A sweep is only as robust as its slowest point: one simulation stuck in
a scheduling loop (or simply mis-sized) used to hang the whole process
pool.  Two guards bound every run:

* an **event budget** — ``Simulator.run(max_events=...)`` already
  raises once a run executes more events than any healthy simulation
  of its size could need;
* a **wall-clock watchdog** — :class:`WallClockWatchdog` is handed to
  ``Simulator.run(watchdog=...)`` and checked every few thousand
  events, so a wedged run aborts within milliseconds of its deadline
  without adding wall-clock reads to the per-event hot path.

Both guards raise :class:`RunAborted`, which carries a *partial result*
payload (events executed, simulated time reached, per-flow progress) so
the executor can record what the run achieved before it was terminated.
The watchdog reads the host clock by design — it measures the *runner*,
never the simulation — and a healthy run behaves identically with or
without one installed: the watchdog callback either raises or does
nothing.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional


class RunAborted(RuntimeError):
    """A run was terminated by a watchdog or budget guard.

    ``partial`` is a JSON-able snapshot of whatever the run had
    produced when it was stopped; the parallel executor copies it into
    the :class:`~repro.experiments.parallel.FailedRun` sentinel.
    Aborted runs are deterministic casualties (the same spec wedges the
    same way), so the executor does not retry them.
    """

    def __init__(self, reason: str,
                 partial: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(reason)
        self.reason = reason
        self.partial = partial

    def __reduce__(self) -> "tuple[type, tuple[str, Optional[Dict[str, Any]]]]":
        # Exceptions cross the process-pool boundary by pickle; the
        # default reduction would drop the ``partial`` payload.
        return (type(self), (self.reason, self.partial))


class WallClockWatchdog:
    """Raise :class:`RunAborted` once a run exceeds its wall budget.

    Instances are callables for ``Simulator.run(watchdog=...)``.  The
    clock is injectable for tests; the default is ``time.monotonic``
    (never ``time.time``, which can step under NTP).
    """

    def __init__(self, limit_s: float,
                 partial: Optional[Callable[[], Dict[str, Any]]] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if limit_s <= 0:
            raise ValueError("watchdog limit must be positive")
        if clock is None:
            # The host clock by design: the watchdog measures the
            # runner, never the simulation.
            clock = time.monotonic
        self.limit_s = limit_s
        self._clock = clock
        self._partial = partial
        self._deadline = clock() + limit_s

    def reset(self) -> None:
        """Restart the budget from now (e.g. before a second run)."""
        self._deadline = self._clock() + self.limit_s

    @property
    def remaining_s(self) -> float:
        return self._deadline - self._clock()

    def __call__(self) -> None:
        if self._clock() >= self._deadline:
            partial = self._partial() if self._partial is not None \
                else None
            raise RunAborted(
                f"wall-clock watchdog: run exceeded {self.limit_s:.3g}s",
                partial=partial)
