"""The fault-spec format: one frozen description of a run's faults.

A :class:`FaultSpec` is deliberately shaped like the rest of the run
configuration (:class:`~repro.experiments.scenarios.ScaledScenario`,
:class:`~repro.core.params.CebinaeParams`): a frozen dataclass of JSON
primitives, so it canonicalises into the result-cache fingerprint,
round-trips through ``to_dict``/``from_dict`` without loss, and equals
itself across processes.

Specs reach the CLI two ways (``cebinae-repro faults --faults ...``):

* a JSON file: ``--faults spec.json`` (keys are the field names below);
* inline ``key=value`` tokens: ``--faults loss_rate=0.001 seed=7
  cp_outage_windows=10e9-20e9``.

Window fields accept ``start-end`` nanosecond pairs separated by
commas; node freezes prefix a name pattern (``node_freeze_windows=
L:1e9-2e9``).  Numbers may use scientific notation (``10e9`` is 10
seconds in nanoseconds).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from ..analysis.invariants import require, require_probability

#: Windows are half-open integer-nanosecond intervals [start, end).
Window = Tuple[int, int]
#: A node freeze: (name pattern, start_ns, end_ns).
FreezeWindow = Tuple[str, int, int]


@dataclass(frozen=True)
class FaultSpec:
    """Everything a run may inject, in integer nanoseconds.

    The stochastic impairments (``loss_rate``/``corrupt_rate``/
    ``reorder_rate``) apply per transmitted packet on links matching
    ``link_pattern``, inside the active window ``[start_ns, end_ns)``
    (``end_ns=0`` means "until the end of the run").  Structural faults
    (link down windows, seeded flaps, node freezes, control-plane
    outages) are explicit event schedules.  ``seed`` roots every
    random draw; two runs with equal specs are identical.
    """

    seed: int = 1
    # -- stochastic per-link impairments -----------------------------------
    loss_rate: float = 0.0
    corrupt_rate: float = 0.0
    reorder_rate: float = 0.0
    #: Extra propagation delay drawn U(1, reorder_delay_ns) for a
    #: reordered packet.
    reorder_delay_ns: int = 500_000
    #: fnmatch pattern selecting the impaired links by name.
    link_pattern: str = "*"
    start_ns: int = 0
    end_ns: int = 0
    # -- link up/down -------------------------------------------------------
    link_down_windows: Tuple[Window, ...] = ()
    #: Seeded random flaps per matched link, each ``flap_down_ns`` long.
    flap_count: int = 0
    flap_down_ns: int = 50_000_000
    # -- node freeze/restart ------------------------------------------------
    node_freeze_windows: Tuple[FreezeWindow, ...] = ()
    # -- control-plane degradation -----------------------------------------
    #: Probability a round's reconfiguration is delayed past deadline L.
    cp_delay_prob: float = 0.0
    #: Maximum extra reconfiguration delay, drawn U(1, max) when delayed.
    cp_delay_max_ns: int = 0
    #: Probability a round's reconfiguration is lost outright.
    cp_drop_prob: float = 0.0
    #: Hard outages: every reconfiguration inside a window is lost.
    cp_outage_windows: Tuple[Window, ...] = ()
    #: Miss semantics: fail open (pass-through FIFO for the round) when
    #: True, or apply the stale configuration late when False.
    cp_fail_open: bool = True

    def __post_init__(self) -> None:
        require_probability(self.loss_rate, "loss_rate")
        require_probability(self.corrupt_rate, "corrupt_rate")
        require_probability(self.reorder_rate, "reorder_rate")
        require_probability(self.cp_delay_prob, "cp_delay_prob")
        require_probability(self.cp_drop_prob, "cp_drop_prob")
        require(self.loss_rate + self.corrupt_rate + self.reorder_rate
                <= 1.0,
                "loss_rate + corrupt_rate + reorder_rate must not "
                "exceed 1")
        for name in ("reorder_delay_ns", "flap_down_ns", "start_ns",
                     "end_ns", "cp_delay_max_ns"):
            value = getattr(self, name)
            require(isinstance(value, int) and not isinstance(value, bool)
                    and value >= 0,
                    f"{name} must be a non-negative integer "
                    f"nanosecond count, got {value!r}")
        require(self.flap_count >= 0, "flap_count must be >= 0")
        if self.reorder_rate > 0:
            require(self.reorder_delay_ns > 0,
                    "reorder_rate needs reorder_delay_ns > 0")
        if self.cp_delay_prob > 0:
            require(self.cp_delay_max_ns > 0,
                    "cp_delay_prob needs cp_delay_max_ns > 0")
        for start, end in (*self.link_down_windows,
                           *self.cp_outage_windows):
            require(0 <= start < end,
                    f"window ({start}, {end}) must satisfy "
                    f"0 <= start < end")
        for pattern, start, end in self.node_freeze_windows:
            require(bool(pattern),
                    "node freeze windows need a name pattern")
            require(0 <= start < end,
                    f"freeze window ({start}, {end}) must satisfy "
                    f"0 <= start < end")

    # -- queries ----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether this spec injects anything at all."""
        return bool(
            self.loss_rate or self.corrupt_rate or self.reorder_rate
            or self.link_down_windows or self.flap_count
            or self.node_freeze_windows or self.cp_delay_prob
            or self.cp_drop_prob or self.cp_outage_windows)

    @property
    def link_faults_enabled(self) -> bool:
        return bool(self.loss_rate or self.corrupt_rate
                    or self.reorder_rate or self.link_down_windows
                    or self.flap_count)

    @property
    def control_plane_enabled(self) -> bool:
        return bool(self.cp_delay_prob or self.cp_drop_prob
                    or self.cp_outage_windows)

    def active_at(self, now_ns: int) -> bool:
        """Whether the stochastic window covers ``now_ns``."""
        if now_ns < self.start_ns:
            return False
        return self.end_ns == 0 or now_ns < self.end_ns

    def scaled(self, intensity: float) -> "FaultSpec":
        """This spec with all stochastic rates scaled by ``intensity``.

        Structural faults (windows, flaps) are kept at ``intensity > 0``
        and removed entirely at 0, so an intensity sweep's first point
        is a true no-fault baseline.
        """
        require(intensity >= 0, "intensity must be >= 0")
        if intensity == 0:
            return FaultSpec(seed=self.seed)

        def clamp(rate: float) -> float:
            return min(1.0, rate * intensity)

        total = (clamp(self.loss_rate) + clamp(self.corrupt_rate)
                 + clamp(self.reorder_rate))
        shrink = 1.0 / total if total > 1.0 else 1.0
        return dataclasses.replace(
            self,
            loss_rate=clamp(self.loss_rate) * shrink,
            corrupt_rate=clamp(self.corrupt_rate) * shrink,
            reorder_rate=clamp(self.reorder_rate) * shrink,
            cp_delay_prob=clamp(self.cp_delay_prob),
            cp_drop_prob=clamp(self.cp_drop_prob),
            flap_count=max(1, round(self.flap_count * intensity))
            if self.flap_count else 0,
        )

    # -- serialisation -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready payload (tuples become lists)."""
        data = dataclasses.asdict(self)
        data["link_down_windows"] = [list(w) for w in
                                     self.link_down_windows]
        data["cp_outage_windows"] = [list(w) for w in
                                     self.cp_outage_windows]
        data["node_freeze_windows"] = [list(w) for w in
                                       self.node_freeze_windows]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown fault-spec keys: {unknown}")
        kwargs = dict(data)
        for key in ("link_down_windows", "cp_outage_windows"):
            if key in kwargs:
                kwargs[key] = tuple((int(s), int(e))
                                    for s, e in kwargs[key])
        if "node_freeze_windows" in kwargs:
            kwargs["node_freeze_windows"] = tuple(
                (str(p), int(s), int(e))
                for p, s, e in kwargs["node_freeze_windows"])
        return cls(**kwargs)

    @classmethod
    def from_json_file(cls, path: str) -> "FaultSpec":
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            raise ValueError(
                f"{path}: fault spec must be a JSON object")
        return cls.from_dict(data)


# --------------------------------------------------------------------------
# Inline ``key=value`` parsing for the CLI.
# --------------------------------------------------------------------------

_INT_FIELDS = frozenset(
    f.name for f in dataclasses.fields(FaultSpec) if f.type == "int")
_FLOAT_FIELDS = frozenset(
    f.name for f in dataclasses.fields(FaultSpec) if f.type == "float")
_BOOL_FIELDS = frozenset(
    f.name for f in dataclasses.fields(FaultSpec) if f.type == "bool")


def _parse_int(token: str) -> int:
    """An integer, allowing scientific notation (``10e9``)."""
    try:
        return int(token)
    except ValueError:
        value = float(token)
        result = int(value)
        if result != value:
            raise ValueError(
                f"{token!r} is not a whole number of nanoseconds")
        return result


def _parse_windows(token: str) -> Tuple[Window, ...]:
    windows: List[Window] = []
    for part in token.split(","):
        start, sep, end = part.partition("-")
        if not sep:
            raise ValueError(
                f"window {part!r} must look like start-end")
        windows.append((_parse_int(start), _parse_int(end)))
    return tuple(windows)


def _parse_freezes(token: str) -> Tuple[FreezeWindow, ...]:
    freezes: List[FreezeWindow] = []
    for part in token.split(","):
        pattern, sep, window = part.partition(":")
        if not sep:
            raise ValueError(
                f"freeze {part!r} must look like pattern:start-end")
        (start, end), = _parse_windows(window)
        freezes.append((pattern, start, end))
    return tuple(freezes)


def parse_fault_tokens(tokens: Sequence[str],
                       base: "FaultSpec" = FaultSpec()) -> "FaultSpec":
    """Build a spec from CLI tokens: a JSON path and/or ``key=value``.

    A token containing no ``=`` is read as a JSON spec file; later
    ``key=value`` tokens override its fields, so
    ``--faults sweep.json seed=9`` reseeds a canned spec.
    """
    overrides: Dict[str, Any] = {}
    spec = base
    for token in tokens:
        if "=" not in token:
            spec = FaultSpec.from_json_file(token)
            continue
        key, _, raw = token.partition("=")
        key = key.strip()
        if key == "link_down_windows" or key == "cp_outage_windows":
            overrides[key] = _parse_windows(raw)
        elif key == "node_freeze_windows":
            overrides[key] = _parse_freezes(raw)
        elif key in _INT_FIELDS:
            overrides[key] = _parse_int(raw)
        elif key in _FLOAT_FIELDS:
            overrides[key] = float(raw)
        elif key in _BOOL_FIELDS:
            overrides[key] = raw.strip().lower() not in (
                "0", "false", "no", "off", "")
        elif key == "link_pattern":
            overrides[key] = raw
        else:
            known = sorted(f.name for f in dataclasses.fields(FaultSpec))
            raise ValueError(
                f"unknown fault-spec key {key!r}; known keys: {known}")
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    return spec


def merge_windows(windows: Iterable[Window]) -> Tuple[Window, ...]:
    """Sort and coalesce overlapping half-open windows."""
    merged: List[Window] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return tuple(merged)
