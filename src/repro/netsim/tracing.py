"""Measurement helpers: time series, per-flow goodput, link throughput.

The evaluation in the paper reports three families of metrics: average
bottleneck throughput (wire bytes on the bottleneck link), per-flow
application goodput (new payload bytes delivered to the receiver), and
Jain's fairness index over per-flow goodputs, optionally as a per-second
time series (Figure 10).  These classes collect exactly that data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .engine import SECOND, Event, Simulator
from .link import Link
from .packet import FlowId


@dataclass(frozen=True)
class FaultEvent:
    """One structural fault applied to the topology.

    The fault scheduler (:mod:`repro.faults.schedule`) records every
    link up/down and node freeze/restart it performs, giving each run a
    deterministic fault timeline that reports can print next to the
    fairness series.  ``kind`` is one of ``link_down``/``link_up``/
    ``node_freeze``/``node_restart``.
    """

    time_ns: int
    kind: str
    target: str

    def to_dict(self) -> Dict[str, Any]:
        return {"time_ns": self.time_ns, "kind": self.kind,
                "target": self.target}


class TimeSeries:
    """Values accumulated into fixed-width time bins."""

    def __init__(self, bin_width_ns: int = SECOND) -> None:
        if bin_width_ns <= 0:
            raise ValueError("bin width must be positive")
        self.bin_width_ns = bin_width_ns
        self._bins: Dict[int, float] = {}

    def add(self, time_ns: int, value: float) -> None:
        index = time_ns // self.bin_width_ns
        bins = self._bins
        bins[index] = bins.get(index, 0.0) + value

    def bin_value(self, index: int) -> float:
        return self._bins.get(index, 0.0)

    def dense(self, until_ns: int) -> List[float]:
        """All bins from 0 through the one containing ``until_ns - 1``."""
        if until_ns <= 0:
            return []
        count = (until_ns + self.bin_width_ns - 1) // self.bin_width_ns
        return [self.bin_value(i) for i in range(count)]

    @property
    def total(self) -> float:
        return sum(self._bins.values())


@dataclass
class FlowRecord:
    """Aggregate receive-side statistics for one flow."""

    flow: FlowId
    delivered_bytes: int = 0
    first_delivery_ns: Optional[int] = None
    last_delivery_ns: Optional[int] = None

    def goodput_bps(self, duration_ns: int) -> float:
        """Average goodput over ``duration_ns`` in bits per second."""
        if duration_ns <= 0:
            return 0.0
        return self.delivered_bytes * 8 * SECOND / duration_ns


class FlowMonitor:
    """Tracks per-flow delivered payload bytes (goodput)."""

    def __init__(self, sim: Simulator, bin_width_ns: int = SECOND) -> None:
        self.sim = sim
        self.bin_width_ns = bin_width_ns
        self.records: Dict[FlowId, FlowRecord] = {}
        self.series: Dict[FlowId, TimeSeries] = {}

    def register(self, flow: FlowId) -> None:
        """Pre-register a flow so zero-goodput flows still appear."""
        if flow not in self.records:
            self.records[flow] = FlowRecord(flow)
            self.series[flow] = TimeSeries(self.bin_width_ns)

    def on_delivered(self, flow: FlowId, payload_bytes: int) -> None:
        """Record in-order payload delivery at the receiver."""
        self.register(flow)
        now = self.sim.now_ns
        record = self.records[flow]
        record.delivered_bytes += payload_bytes
        if record.first_delivery_ns is None:
            record.first_delivery_ns = now
        record.last_delivery_ns = now
        self.series[flow].add(now, payload_bytes)

    def goodputs_bps(self, duration_ns: int) -> Dict[FlowId, float]:
        return {flow: record.goodput_bps(duration_ns)
                for flow, record in self.records.items()}

    def goodput_series_bps(self, flow: FlowId,
                           until_ns: int) -> List[float]:
        """Per-bin goodput (bits per second) for one flow."""
        series = self.series.get(flow)
        if series is None:
            return []
        scale = 8 * SECOND / self.bin_width_ns
        return [v * scale for v in series.dense(until_ns)]


class LinkMonitor:
    """Tracks wire throughput on a set of links via periodic sampling.

    ``horizon_ns`` bounds the sampling: once the *next* sample would
    land past the horizon, the monitor stops rescheduling itself.
    Without a horizon a monitor keeps the event loop non-empty forever
    — a bounded ``run(until_ns=...)`` still terminates, but any
    ``max_events`` watchdog budget is slowly burned by empty samples
    and a run that would otherwise drain never does.  :meth:`stop`
    cancels the pending sample for callers that learn the window's end
    late (e.g. a watchdog abort).
    """

    def __init__(self, sim: Simulator, links: List[Link],
                 bin_width_ns: int = SECOND,
                 horizon_ns: Optional[int] = None) -> None:
        if horizon_ns is not None and horizon_ns < 0:
            raise ValueError("horizon cannot be negative")
        self.sim = sim
        self.links = list(links)
        self.bin_width_ns = bin_width_ns
        self.horizon_ns = horizon_ns
        self._last_bytes = {link: 0 for link in self.links}
        self._pending: Optional[Event] = None
        self.series: Dict[Link, TimeSeries] = {
            link: TimeSeries(bin_width_ns) for link in self.links}
        self._schedule_sample()

    def _schedule_sample(self) -> None:
        next_ns = self.sim.now_ns + self.bin_width_ns
        if self.horizon_ns is not None and next_ns > self.horizon_ns:
            self._pending = None
            return
        self._pending = self.sim.schedule(self.bin_width_ns, self._sample)

    def _sample(self) -> None:
        for link in self.links:
            delta = link.tx_bytes - self._last_bytes[link]
            self._last_bytes[link] = link.tx_bytes
            # Attribute the delta to the bin that just ended.
            self.series[link].add(self.sim.now_ns - 1, delta)
        self._schedule_sample()

    def stop(self) -> None:
        """Cancel the pending sample; the monitor stays readable."""
        pending, self._pending = self._pending, None
        if pending is not None:
            pending.cancel()

    def throughput_bps(self, link: Link, duration_ns: int) -> float:
        """Average wire throughput over the run (uses the raw counter)."""
        if duration_ns <= 0:
            return 0.0
        return link.tx_bytes * 8 * SECOND / duration_ns

    def throughput_series_bps(self, link: Link,
                              until_ns: int) -> List[float]:
        scale = 8 * SECOND / self.bin_width_ns
        return [v * scale for v in self.series[link].dense(until_ns)]
