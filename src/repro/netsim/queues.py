"""Queue disciplines: the base interface and FIFO drop-tail.

Every egress port of every node owns a :class:`QueueDisc`.  The attached
:class:`~repro.netsim.link.Link` pulls packets from it whenever the wire
is idle; the queue calls its *waker* when a packet becomes available so
an idle link can restart.

The FIFO drop-tail queue here is the paper's baseline (the "FIFO" column
of Table 2), with the buffer configured in MTUs exactly as the paper's
``Buf. [MTU]`` column.
"""

from __future__ import annotations

import collections
from typing import TYPE_CHECKING, Callable, Deque, Optional

from ..obs import bus as obs_bus
from ..obs.events import QueueDrop
from .packet import MTU_BYTES, Packet

if TYPE_CHECKING:
    from ..core.units import Bytes


def _no_clock() -> int:
    """Timestamp source when no trace bus is installed (never traced)."""
    return 0


class QueueDisc:
    """Base class for queue disciplines.

    Subclasses implement :meth:`enqueue` and :meth:`dequeue`.  ``enqueue``
    returns False when the packet is dropped; ``dequeue`` returns None
    when no packet is ready.  Implementations must call
    :meth:`notify_waker` when a packet becomes available after the queue
    was empty, so that an idle link resumes transmission.

    The base class uses ``__slots__`` (as do the built-in disciplines on
    the per-packet path); subclasses are free to declare their own slots
    or fall back to a ``__dict__``.
    """

    __slots__ = ("_waker", "dropped_packets", "dropped_bytes",
                 "__dict__")

    def __init__(self) -> None:
        self._waker: Optional[Callable[[], None]] = None
        self.dropped_packets = 0
        self.dropped_bytes = 0
        # Observability: bound once at construction (trace bus must be
        # installed before the topology is built).  ``obs_name`` is
        # overwritten by Link's queue setter with the port name; the
        # bus clock substitutes for a ``sim`` reference, which queue
        # discs deliberately do not hold.
        self.obs_name = type(self).__name__
        bus = obs_bus.current()
        self._trace_drop = bus.emitter("queue") if bus is not None \
            else None
        self._obs_now: Callable[[], int] = bus.now_ns \
            if bus is not None else _no_clock

    def set_waker(self, waker: Callable[[], None]) -> None:
        """Register the link restart callback."""
        self._waker = waker

    def notify_waker(self) -> None:
        if self._waker is not None:
            self._waker()

    def enqueue(self, packet: Packet) -> bool:
        raise NotImplementedError

    def dequeue(self) -> Optional[Packet]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def byte_length(self) -> Bytes:
        raise NotImplementedError

    def record_drop(self, packet: Packet, reason: str = "tail") -> None:
        """Account a dropped packet (shared bookkeeping for subclasses)."""
        self.dropped_packets += 1
        self.dropped_bytes += packet.size_bytes
        trace = self._trace_drop
        if trace is not None:
            trace(QueueDrop(time_ns=self._obs_now(), port=self.obs_name,
                            reason=reason, flow=str(packet.flow),
                            size_bytes=packet.size_bytes))


class DropTailQueue(QueueDisc):
    """A FIFO queue that drops arriving packets when full.

    The limit may be expressed in packets (MTUs, as in the paper's
    configuration tables) or in bytes; when both are given the stricter
    one applies.
    """

    __slots__ = ("limit_packets", "limit_bytes", "_queue", "_bytes")

    def __init__(self, limit_packets: Optional[int] = None,
                 limit_bytes: Optional[int] = None) -> None:
        super().__init__()
        if limit_packets is None and limit_bytes is None:
            limit_packets = 100  # ns-3 default pfifo depth.
        self.limit_packets = limit_packets
        self.limit_bytes = limit_bytes
        self._queue: Deque[Packet] = collections.deque()
        self._bytes = 0

    @classmethod
    def from_mtu_count(cls, mtus: int) -> "DropTailQueue":
        """Build a queue holding ``mtus`` full-size packets, as Table 2."""
        return cls(limit_packets=None, limit_bytes=mtus * MTU_BYTES)

    def enqueue(self, packet: Packet) -> bool:
        # The admission test is inlined: this runs once per packet per
        # hop and a helper-call frame is measurable at that rate.
        queue = self._queue
        size = packet.size_bytes
        if ((self.limit_packets is not None
             and len(queue) >= self.limit_packets)
                or (self.limit_bytes is not None
                    and self._bytes + size > self.limit_bytes)):
            self.record_drop(packet)
            return False
        was_empty = not queue
        queue.append(packet)
        self._bytes += size
        if was_empty:
            self.notify_waker()
        return True

    def dequeue(self) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size_bytes
        return packet

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def byte_length(self) -> Bytes:
        return self._bytes
