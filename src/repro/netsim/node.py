"""Network nodes: hosts and routers.

Routers forward packets between links using a static routing table
(installed by :func:`repro.netsim.topology.Network.install_routes`).
Hosts terminate flows: transport endpoints register a per-flow handler
and outgoing packets are routed onto the host's (usually single) uplink.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from ..analysis.invariants import unwrap
from .engine import Simulator
from .link import Link
from .packet import FlowId, Packet

PacketHandler = Callable[[Packet], None]


class Node:
    """Base class for anything with ports."""

    def __init__(self, sim: Simulator, node_id: int, name: str = "") -> None:
        self.sim = sim
        self.node_id = node_id
        self.name = name or f"node{node_id}"
        #: Outgoing links, in attachment order.
        self.links: List[Link] = []
        #: Static routing table: destination node id -> egress link.
        self.routes: Dict[int, Link] = {}
        # Fault injection (repro.faults): a frozen node is fail-stop
        # with state retained — it blackholes traffic until restarted,
        # like a crashed forwarding plane that reboots with its tables
        # intact.  One boolean test per received packet.
        self._frozen = False
        #: Packets discarded while frozen (diagnostics / fault summary).
        self.frozen_drops = 0

    @property
    def frozen(self) -> bool:
        """Whether the node is currently fail-stopped."""
        return self._frozen

    def set_frozen(self, frozen: bool) -> None:
        """Freeze (fail-stop) or restart the node."""
        self._frozen = frozen

    def attach_link(self, link: Link) -> None:
        self.links.append(link)

    def route_for(self, dst: int) -> Link:
        try:
            return self.routes[dst]
        except KeyError:
            raise KeyError(
                f"{self.name} has no route to node {dst}") from None

    def forward(self, packet: Packet) -> bool:
        """Send ``packet`` toward its destination.  False if dropped."""
        link = self.route_for(packet.flow.dst)
        return link.send(packet)

    def receive(self, packet: Packet, from_link: Link) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class Router(Node):
    """A store-and-forward router."""

    def __init__(self, sim: Simulator, node_id: int, name: str = "") -> None:
        super().__init__(sim, node_id, name)
        self.forwarded_packets = 0

    def receive(self, packet: Packet, from_link: Link) -> None:
        if self._frozen:
            self.frozen_drops += 1
            return
        self.forwarded_packets += 1
        self.forward(packet)


class Host(Node):
    """An end host terminating transport connections."""

    def __init__(self, sim: Simulator, node_id: int, name: str = "") -> None:
        super().__init__(sim, node_id, name)
        self._handlers: Dict[FlowId, PacketHandler] = {}
        self._default_handler: Optional[PacketHandler] = None
        self._tx_jitter_ns = 0
        self._jitter_rng: Optional[random.Random] = None
        self._last_release_ns = 0

    def register_handler(self, flow: FlowId, handler: PacketHandler) -> None:
        """Deliver packets whose flow id equals ``flow`` to ``handler``."""
        if flow in self._handlers:
            raise ValueError(f"duplicate handler for {flow}")
        self._handlers[flow] = handler

    def unregister_handler(self, flow: FlowId) -> None:
        self._handlers.pop(flow, None)

    def set_default_handler(self, handler: PacketHandler) -> None:
        """Handler for packets with no registered flow (diagnostics)."""
        self._default_handler = handler

    def receive(self, packet: Packet, from_link: Link) -> None:
        if self._frozen:
            self.frozen_drops += 1
            return
        handler = self._handlers.get(packet.flow)
        if handler is not None:
            handler(packet)
        elif self._default_handler is not None:
            self._default_handler(packet)
        # Otherwise the packet is silently consumed, like a RST-less
        # closed port.

    def set_tx_jitter(self, jitter_ns: int,
                      seed: Optional[int] = None) -> None:
        """Add random send-side processing delay of U(0, jitter_ns).

        Perfectly deterministic simulations of drop-tail queues suffer
        *phase effects* (Floyd & Jacobson 1991): packet arrivals lock to
        the bottleneck's service clock and one flow absorbs every drop.
        Real hosts have OS timing noise; this reproduces it with a
        per-host seeded RNG.  Delivery order per host is preserved
        (release times are monotonic), so TCP never sees self-inflicted
        reordering.
        """
        self._tx_jitter_ns = int(jitter_ns)
        self._jitter_rng = random.Random(
            seed if seed is not None else self.node_id)

    def send(self, packet: Packet) -> bool:
        """Inject a locally generated packet into the network."""
        if self._frozen:
            self.frozen_drops += 1
            return False
        if self._tx_jitter_ns <= 0:
            return self.forward(packet)
        rng = unwrap(self._jitter_rng,
                     "tx jitter enabled without set_tx_jitter()")
        release_ns = self.sim.now_ns + \
            rng.randint(0, self._tx_jitter_ns)
        release_ns = max(release_ns, self._last_release_ns)
        self._last_release_ns = release_ns
        self.sim.schedule_at(release_ns, self.forward, packet)
        return True
