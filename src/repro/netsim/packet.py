"""Packets and flow identifiers.

A :class:`Packet` is the unit of everything in the simulator: TCP data
segments, ACKs, and Cebinae's internal ROTATE packets all use the same
class, distinguished by :class:`PacketType`.  The header layout mirrors
what the paper's data plane sees: a five-tuple flow identifier plus the
two ECN bits.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import InitVar, dataclass, field
from typing import (TYPE_CHECKING, Any, Dict, Mapping, NamedTuple,
                    Optional, Tuple)

if TYPE_CHECKING:
    from ..core.units import Bytes

#: Standard Ethernet MTU used throughout the reproduction.
MTU_BYTES = 1500
#: TCP maximum segment size (MTU minus 40 B IP+TCP headers and 12 B options).
MSS_BYTES = 1448
#: Header overhead carried by every data segment.
HEADER_BYTES = MTU_BYTES - MSS_BYTES
#: Size of a pure ACK packet on the wire.
ACK_BYTES = 64


class PacketType(enum.Enum):
    """The role a packet plays in the simulation."""

    DATA = "data"
    ACK = "ack"
    ROTATE = "rotate"  # Cebinae queue-rotation marker (packet generator).


class EcnCodepoint(enum.Enum):
    """IP ECN field codepoints (RFC 3168)."""

    NOT_ECT = 0  # Sender does not support ECN.
    ECT0 = 2     # ECN-capable transport.
    CE = 3       # Congestion experienced (set by the network).


class FlowId(NamedTuple):
    """A five-tuple flow identifier.

    Node addresses are plain integers; the simulator has no need for a
    full IP addressing plan.
    """

    src: int
    dst: int
    src_port: int
    dst_port: int
    protocol: str = "tcp"

    def reversed(self) -> "FlowId":
        """The identifier of the reverse (ACK) direction."""
        return FlowId(self.dst, self.src, self.dst_port, self.src_port,
                      self.protocol)

    def stable_hash(self) -> int:
        """A process-independent hash of the five-tuple.

        Builtin ``hash()`` of a tuple containing a string depends on
        ``PYTHONHASHSEED``, which is randomised per interpreter; any
        flow-to-bucket mapping derived from it would differ between a
        run and its replay in another process, breaking deterministic
        replay.  CRC32 of the canonical representation does not.
        """
        return zlib.crc32(repr(tuple(self)).encode("utf-8"))

    def __str__(self) -> str:
        return (f"{self.protocol}:{self.src}:{self.src_port}->"
                f"{self.dst}:{self.dst_port}")


@dataclass
class Packet:
    """A simulated packet.

    Attributes:
        flow: five-tuple of the packet.
        size_bytes: total on-wire size, headers included.
        seq: first payload byte number carried (TCP DATA only).
        payload_bytes: number of application payload bytes carried.
        ack: cumulative acknowledgment number (TCP ACK only).
    sack: selective-acknowledgment blocks, as (start, end) byte ranges
        above ``ack`` (TCP ACK only).
        ptype: DATA / ACK / ROTATE.
        ecn: the IP ECN codepoint; queues set CE on ECN-capable packets.
        ece: TCP ECN-Echo flag (receiver -> sender).
        cwr: TCP Congestion Window Reduced flag (sender -> receiver).
        enqueue_time_ns: stamped by queues for delay measurement (CoDel).
        meta: free-form annotations used by tracing and schedulers.
            Allocated lazily on first access — the overwhelming
            majority of packets (every DATA segment and ACK) never
            carry annotations, and skipping the dict allocation is a
            measurable win at millions of packets per run.  The
            constructor still accepts ``meta={...}`` (the pre-lazy
            API); annotations are excluded from equality and ``repr``.
    """

    flow: FlowId
    size_bytes: Bytes
    ptype: PacketType = PacketType.DATA
    seq: int = 0
    payload_bytes: Bytes = 0
    ack: int = 0
    sack: Tuple[Tuple[int, int], ...] = ()
    ecn: EcnCodepoint = EcnCodepoint.NOT_ECT
    ece: bool = False
    cwr: bool = False
    sent_time_ns: int = 0
    enqueue_time_ns: int = 0
    meta: InitVar[Optional[Dict[str, Any]]] = None
    _meta: Optional[Dict[str, Any]] = field(
        default=None, repr=False, compare=False)

    def __post_init__(self, meta: Optional[Dict[str, Any]]) -> None:
        if meta is not None:
            self._meta = meta

    def _lazy_meta(self) -> Dict[str, Any]:
        """Lazy annotation dict (created on first touch)."""
        store = self._meta
        if store is None:
            store = {}
            self._meta = store
        return store

    @property
    def has_meta(self) -> bool:
        """True if annotations exist, without forcing allocation."""
        return bool(self._meta)

    def mark_ce(self) -> bool:
        """Set Congestion Experienced if the packet is ECN-capable.

        Returns True if the mark was applied.
        """
        if self.ecn is EcnCodepoint.ECT0:
            self.ecn = EcnCodepoint.CE
            return True
        return self.ecn is EcnCodepoint.CE

    @property
    def is_data(self) -> bool:
        return self.ptype is PacketType.DATA

    @property
    def is_ack(self) -> bool:
        return self.ptype is PacketType.ACK

    def __repr__(self) -> str:
        return (f"Packet({self.ptype.value}, {self.flow}, "
                f"seq={self.seq}, ack={self.ack}, {self.size_bytes}B)")


# ``meta`` is an InitVar (so ``Packet(..., meta={...})`` keeps working)
# and leaves no instance attribute behind, which lets this class-level
# property serve ``pkt.meta`` reads with the lazy allocation.  It is
# attached after the @dataclass decoration so the generated __init__
# sees the plain ``None`` default rather than the property object.
Packet.meta = property(Packet._lazy_meta)  # type: ignore[assignment]


def make_rotate_packet(port: int,
                       last_rates: Optional[Mapping[Any, float]] = None
                       ) -> Packet:
    """Build a Cebinae ROTATE marker for ``port``.

    ROTATE packets are generated by the switch's hardware packet
    generator in the paper; here they are ordinary packets injected by
    the Cebinae queue disc's timer, carrying the rates of the round that
    just ended (Figure 5, lines 8-12).
    """
    flow = FlowId(src=-1, dst=-1, src_port=port, dst_port=port,
                  protocol="cebinae")
    pkt = Packet(flow=flow, size_bytes=0, ptype=PacketType.ROTATE)
    pkt.meta["last_rates"] = dict(last_rates or {})
    return pkt
