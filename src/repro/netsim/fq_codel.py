"""FQ-CoDel: Deficit Round Robin fair queuing with CoDel AQM.

This is the paper's "FQ" baseline (Table 2): ns-3's FQ-CoDel queue disc
with the queue count raised to 2^32 - 1 so every flow gets a dedicated
queue.  The implementation follows RFC 8290 (scheduler) and RFC 8289
(CoDel control law).  Because the paper's configuration makes hash
collisions vanishingly rare, flows are kept in an exact dict rather than
a hashed array; a ``num_queues`` parameter is still honoured for tests
that want collisions.
"""

from __future__ import annotations

import collections
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional

from .engine import MILLISECOND, Simulator
from .packet import FlowId, Packet
from .queues import QueueDisc
from .topology import PortSpec, QueueFactory

if TYPE_CHECKING:
    from ..core.units import Bytes, TimeNs

#: CoDel acceptable standing-queue delay (RFC 8289 default).
CODEL_TARGET_NS = 5 * MILLISECOND
#: CoDel sliding-minimum window (RFC 8289 default).
CODEL_INTERVAL_NS = 100 * MILLISECOND


def control_law(time_ns: TimeNs, interval_ns: TimeNs,
                count: int) -> TimeNs:
    """The CoDel drop-scheduling control law: interval / sqrt(count)."""
    return time_ns + int(interval_ns / math.sqrt(count))


@dataclass
class CoDelState:
    """Per-queue CoDel state machine (RFC 8289 section 5)."""

    target_ns: TimeNs = CODEL_TARGET_NS
    interval_ns: TimeNs = CODEL_INTERVAL_NS
    first_above_time_ns: TimeNs = 0
    drop_next_ns: TimeNs = 0
    count: int = 0
    lastcount: int = 0
    dropping: bool = False

    def sojourn_ok(self, sojourn_ns: TimeNs, now_ns: TimeNs,
                   backlog_bytes: Bytes) -> bool:
        """Update first_above_time; True if the packet should NOT drop."""
        if sojourn_ns < self.target_ns or backlog_bytes <= 1514:
            self.first_above_time_ns = 0
            return True
        if self.first_above_time_ns == 0:
            self.first_above_time_ns = now_ns + self.interval_ns
        elif now_ns >= self.first_above_time_ns:
            return False
        return True


class _FlowQueue:
    """One DRR flow queue with its CoDel state."""

    __slots__ = ("packets", "bytes", "deficit", "codel", "active",
                 "is_new")

    def __init__(self, quantum: Bytes, target_ns: TimeNs,
                 interval_ns: TimeNs) -> None:
        self.packets: Deque[Packet] = collections.deque()
        # Maintained incrementally: summing per-packet sizes on demand
        # made the overlimit fattest-queue search O(packets) per drop.
        self.bytes = 0
        self.deficit = quantum
        self.codel = CoDelState(target_ns=target_ns, interval_ns=interval_ns)
        self.active = False
        self.is_new = False

    @property
    def byte_length(self) -> int:
        return self.bytes


class FqCoDelQueue(QueueDisc):
    """RFC 8290 FQ-CoDel over exact per-flow queues."""

    def __init__(self, sim: Simulator, quantum_bytes: Bytes = 1514,
                 target_ns: TimeNs = CODEL_TARGET_NS,
                 interval_ns: TimeNs = CODEL_INTERVAL_NS,
                 limit_packets: int = 10240,
                 num_queues: Optional[int] = None) -> None:
        super().__init__()
        self.sim = sim
        self.quantum_bytes = quantum_bytes
        self.target_ns = target_ns
        self.interval_ns = interval_ns
        self.limit_packets = limit_packets
        self.num_queues = num_queues
        self._queues: Dict[object, _FlowQueue] = {}
        self._new_flows: Deque[object] = collections.deque()
        self._old_flows: Deque[object] = collections.deque()
        self._packets = 0
        self._bytes = 0
        self.codel_drops = 0
        self.overlimit_drops = 0

    def _bucket(self, flow: FlowId) -> object:
        if self.num_queues is None:
            return flow
        # stable_hash, not hash(): the builtin is randomised per
        # process (PYTHONHASHSEED) and would make the flow-to-queue
        # mapping — hence drops and goodputs — differ between a run
        # and its deterministic replay elsewhere.
        return flow.stable_hash() % self.num_queues

    def _get_queue(self, key: object) -> _FlowQueue:
        queue = self._queues.get(key)
        if queue is None:
            queue = _FlowQueue(self.quantum_bytes, self.target_ns,
                               self.interval_ns)
            self._queues[key] = queue
        return queue

    def enqueue(self, packet: Packet) -> bool:
        packet.enqueue_time_ns = self.sim.now_ns
        key = self._bucket(packet.flow)
        queue = self._get_queue(key)
        was_empty = self._packets == 0
        queue.packets.append(packet)
        queue.bytes += packet.size_bytes
        self._packets += 1
        self._bytes += packet.size_bytes
        if not queue.active:
            queue.active = True
            queue.is_new = True
            queue.deficit = self.quantum_bytes
            self._new_flows.append(key)
        if self._packets > self.limit_packets:
            self._drop_from_fattest()
        # The link only sleeps when the disc is drained, so a waker
        # call is only needed on the empty->non-empty edge.
        if was_empty and self._packets > 0:
            self.notify_waker()
        return True

    def _drop_from_fattest(self) -> None:
        """RFC 8290 overlimit behaviour: drop at head of the fattest queue."""
        fattest = max(self._queues.values(),
                      key=lambda q: q.byte_length, default=None)
        if fattest is None or not fattest.packets:
            return
        victim = fattest.packets.popleft()
        fattest.bytes -= victim.size_bytes
        self._packets -= 1
        self._bytes -= victim.size_bytes
        self.overlimit_drops += 1
        self.record_drop(victim, reason="overlimit")

    def _codel_dequeue(self, queue: _FlowQueue) -> Optional[Packet]:
        """Dequeue from one flow queue, applying the CoDel state machine."""
        now = self.sim.now_ns
        codel = queue.codel
        while queue.packets:
            packet = queue.packets.popleft()
            queue.bytes -= packet.size_bytes
            self._packets -= 1
            self._bytes -= packet.size_bytes
            sojourn = now - packet.enqueue_time_ns
            ok = codel.sojourn_ok(sojourn, now, self._bytes)
            if codel.dropping:
                if ok:
                    codel.dropping = False
                    return packet
                if now >= codel.drop_next_ns:
                    self.codel_drops += 1
                    self.record_drop(packet, reason="codel")
                    codel.count += 1
                    codel.drop_next_ns = control_law(
                        codel.drop_next_ns, codel.interval_ns, codel.count)
                    continue
                return packet
            if not ok and (now - codel.drop_next_ns < codel.interval_ns
                           or now - codel.first_above_time_ns
                           >= codel.interval_ns):
                # Enter dropping state: drop this packet and schedule next.
                self.codel_drops += 1
                self.record_drop(packet, reason="codel")
                codel.dropping = True
                delta = codel.count - codel.lastcount
                if delta > 1 and now - codel.drop_next_ns < 16 * \
                        codel.interval_ns:
                    codel.count = delta
                else:
                    codel.count = 1
                codel.lastcount = codel.count
                codel.drop_next_ns = control_law(now, codel.interval_ns,
                                                 codel.count)
                continue
            return packet
        codel.dropping = False
        return None

    def dequeue(self) -> Optional[Packet]:
        """RFC 8290 two-list DRR schedule."""
        while True:
            if self._new_flows:
                key = self._new_flows[0]
                from_new = True
            elif self._old_flows:
                key = self._old_flows[0]
                from_new = False
            else:
                return None
            queue = self._queues[key]
            if queue.deficit <= 0:
                queue.deficit += self.quantum_bytes
                (self._new_flows if from_new else self._old_flows).popleft()
                queue.is_new = False
                self._old_flows.append(key)
                continue
            packet = self._codel_dequeue(queue)
            if packet is None:
                (self._new_flows if from_new else self._old_flows).popleft()
                if from_new and self._old_flows:
                    # A new queue that empties is given one pass through
                    # the old list before deactivation (RFC 8290 5.3).
                    queue.is_new = False
                    self._old_flows.append(key)
                else:
                    queue.active = False
                continue
            queue.deficit -= packet.size_bytes
            return packet

    def __len__(self) -> int:
        return self._packets

    @property
    def byte_length(self) -> int:
        return self._bytes


def fq_codel_factory(limit_packets: int = 10240,
                     quantum_bytes: int = 1514,
                     target_ns: int = CODEL_TARGET_NS,
                     interval_ns: int = CODEL_INTERVAL_NS,
                     num_queues: Optional[int] = None) -> "QueueFactory":
    """Queue factory installing FQ-CoDel on a port."""
    def factory(spec: PortSpec) -> FqCoDelQueue:
        return FqCoDelQueue(spec.sim, quantum_bytes=quantum_bytes,
                            target_ns=target_ns, interval_ns=interval_ns,
                            limit_packets=limit_packets,
                            num_queues=num_queues)
    return factory
