"""Point-to-point links.

A :class:`Link` is unidirectional: it models the transmitter of one port
(serialization at ``rate_bps``) plus wire propagation (``delay_ns``).
Bidirectional cables are simply two links.  The link owns the egress
queue disc of its port and pulls from it whenever the transmitter is
idle, which is the same service model as ns-3's
``PointToPointNetDevice`` + traffic-control-layer queue.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from .engine import SECOND, Simulator
from .packet import Packet
from .queues import QueueDisc

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import Node


class Link:
    """A unidirectional link from ``src`` to ``dst``."""

    def __init__(self, sim: Simulator, src: "Node", dst: "Node",
                 rate_bps: float, delay_ns: int, queue: QueueDisc,
                 name: str = "") -> None:
        if delay_ns < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.delay_ns = int(delay_ns)
        self.name = name or f"{src.name}->{dst.name}"
        self._busy = False
        # Transmit-side counters (Cebinae's "egress pipeline" also hooks
        # transmission; see CebinaeQueueDisc.on_transmit).  The hook is
        # a property of the queue's type, so it is resolved once in the
        # queue setter rather than with a getattr per transmitted
        # packet.
        self.tx_packets = 0
        self.tx_bytes = 0
        self._on_transmit: Optional[Callable[[Packet], None]] = None
        # Serialization delay depends only on packet size, and traffic
        # is dominated by a handful of sizes (MTU, MSS boundaries, pure
        # ACKs, ROTATE markers), so the round() per packet memoises
        # into a tiny dict.  Invalidated by the rate_bps setter.
        self._ser_delay_cache: Dict[int, int] = {}
        self.rate_bps = rate_bps
        self.queue = queue

    @property
    def queue(self) -> QueueDisc:
        """The egress queue disc this link drains."""
        return self._queue

    @queue.setter
    def queue(self, queue: QueueDisc) -> None:
        # Re-resolve the memoized transmit hook and re-register the
        # waker so a mid-run queue swap cannot leave a stale hook
        # silently feeding the old queue disc.
        self._queue = queue
        self._on_transmit = getattr(queue, "on_transmit", None)
        queue.set_waker(self._on_queue_ready)

    @property
    def rate_bps(self) -> float:
        """Link rate in bits per second."""
        return self._rate_bps

    @rate_bps.setter
    def rate_bps(self, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        self._rate_bps = float(rate_bps)
        # Memoized serialization delays embed the old rate.
        self._ser_delay_cache.clear()

    @property
    def capacity_bytes_per_sec(self) -> float:
        """Link capacity in bytes per second."""
        return self.rate_bps / 8.0

    def serialization_delay_ns(self, size_bytes: int) -> int:
        """Time to clock ``size_bytes`` onto the wire."""
        cached = self._ser_delay_cache.get(size_bytes)
        if cached is None:
            cached = int(round(size_bytes * 8 * SECOND / self.rate_bps))
            self._ser_delay_cache[size_bytes] = cached
        return cached

    def send(self, packet: Packet) -> bool:
        """Offer a packet to this port.  Returns False if dropped."""
        return self.queue.enqueue(packet)

    def _on_queue_ready(self) -> None:
        if not self._busy:
            self._start_transmission()

    def _start_transmission(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        tx_time = self.serialization_delay_ns(packet.size_bytes)
        self.sim.schedule(tx_time, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        self.tx_packets += 1
        self.tx_bytes += packet.size_bytes
        hook = self._on_transmit
        if hook is not None:
            hook(packet)
        self.sim.schedule(self.delay_ns, self.dst.receive, packet, self)
        self._start_transmission()

    def __repr__(self) -> str:
        return (f"Link({self.name}, {self.rate_bps / 1e6:.1f} Mbps, "
                f"{self.delay_ns / 1e6:.3f} ms)")
