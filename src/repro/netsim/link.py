"""Point-to-point links.

A :class:`Link` is unidirectional: it models the transmitter of one port
(serialization at ``rate_bps``) plus wire propagation (``delay_ns``).
Bidirectional cables are simply two links.  The link owns the egress
queue disc of its port and pulls from it whenever the transmitter is
idle, which is the same service model as ns-3's
``PointToPointNetDevice`` + traffic-control-layer queue.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from ..analysis.invariants import unwrap
from ..obs import bus as obs_bus
from ..obs.events import PacketTx
from .engine import SECOND, Simulator
from .packet import Packet
from .queues import QueueDisc

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.units import BitsPerSec, Bytes, TimeNs
    from ..faults.schedule import LinkFaultState
    from .node import Node


class Link:
    """A unidirectional link from ``src`` to ``dst``."""

    def __init__(self, sim: Simulator, src: "Node", dst: "Node",
                 rate_bps: BitsPerSec, delay_ns: TimeNs,
                 queue: QueueDisc,
                 name: str = "") -> None:
        if delay_ns < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.delay_ns = int(delay_ns)
        self.name = name or f"{src.name}->{dst.name}"
        self._busy = False
        # Transmit-side counters (Cebinae's "egress pipeline" also hooks
        # transmission; see CebinaeQueueDisc.on_transmit).  The hook is
        # a property of the queue's type, so it is resolved once in the
        # queue setter rather than with a getattr per transmitted
        # packet.
        self.tx_packets = 0
        self.tx_bytes = 0
        self._on_transmit: Optional[Callable[[Packet], None]] = None
        # Serialization delay depends only on packet size, and traffic
        # is dominated by a handful of sizes (MTU, MSS boundaries, pure
        # ACKs, ROTATE markers), so the round() per packet memoises
        # into a tiny dict.  Invalidated by the rate_bps setter.
        self._ser_delay_cache: Dict[int, int] = {}
        # Fault-injection state (repro.faults).  The hot path pays one
        # boolean test per transmitted packet (``_impaired``), folded
        # from the two slow-moving conditions below so the common
        # healthy case stays a single attribute read.
        self._up = True
        self._fault_state: Optional["LinkFaultState"] = None
        self._impaired = False
        # Observability: the packet-topic emitter is bound once here
        # (None when tracing is off), so the per-packet cost of the
        # disabled path is one attribute test in _finish_transmission.
        self._trace_pkt = obs_bus.emitter_for("packet")
        self.rate_bps = rate_bps
        self.queue = queue

    @property
    def queue(self) -> QueueDisc:
        """The egress queue disc this link drains."""
        return self._queue

    @queue.setter
    def queue(self, queue: QueueDisc) -> None:
        # Re-resolve the memoized transmit hook and re-register the
        # waker so a mid-run queue swap cannot leave a stale hook
        # silently feeding the old queue disc.
        self._queue = queue
        self._on_transmit = getattr(queue, "on_transmit", None)
        # Drops recorded by the queue disc are attributed to this port.
        queue.obs_name = self.name
        queue.set_waker(self._on_queue_ready)

    @property
    def rate_bps(self) -> BitsPerSec:
        """Link rate in bits per second."""
        return self._rate_bps

    @rate_bps.setter
    def rate_bps(self, rate_bps: BitsPerSec) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        self._rate_bps = float(rate_bps)
        # Memoized serialization delays embed the old rate.
        self._ser_delay_cache.clear()

    @property
    def capacity_bytes_per_sec(self) -> float:
        """Link capacity in bytes per second."""
        return self.rate_bps / 8.0

    def serialization_delay_ns(self, size_bytes: Bytes) -> TimeNs:
        """Time to clock ``size_bytes`` onto the wire."""
        cached = self._ser_delay_cache.get(size_bytes)
        if cached is None:
            cached = int(round(size_bytes * 8 * SECOND / self.rate_bps))
            self._ser_delay_cache[size_bytes] = cached
        return cached

    # -- fault injection (repro.faults) -----------------------------------
    @property
    def up(self) -> bool:
        """Whether the wire is currently passing packets."""
        return self._up

    def set_up(self, up: bool) -> None:
        """Cut or restore the wire.

        While down, the egress queue keeps accepting packets (a real
        port buffers during a flap; overflow becomes ordinary drop-tail
        loss), the transmitter pauses, and packets finishing
        serialization are cut.  Restoring the link kicks the
        transmitter, so the backlog drains as a burst — exactly the
        perturbation a fairness mechanism must absorb.
        """
        if up == self._up:
            return
        self._up = up
        self._impaired = (self._fault_state is not None) or not up
        if up:
            self._on_queue_ready()

    @property
    def fault_state(self) -> Optional["LinkFaultState"]:
        """The installed stochastic fault state, if any."""
        return self._fault_state

    def set_fault_state(self, state: Optional["LinkFaultState"]) -> None:
        """Install (or clear) per-packet stochastic impairments."""
        self._fault_state = state
        self._impaired = (state is not None) or not self._up

    def send(self, packet: Packet) -> bool:
        """Offer a packet to this port.  Returns False if dropped."""
        return self.queue.enqueue(packet)

    def _on_queue_ready(self) -> None:
        if not self._busy:
            self._start_transmission()

    def _start_transmission(self) -> None:
        if not self._up:
            # Transmitter paused while the link is down; set_up(True)
            # re-kicks it through _on_queue_ready.
            self._busy = False
            return
        packet = self.queue.dequeue()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        tx_time = self.serialization_delay_ns(packet.size_bytes)
        self.sim.schedule(tx_time, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        self.tx_packets += 1
        self.tx_bytes += packet.size_bytes
        hook = self._on_transmit
        if hook is not None:
            hook(packet)
        trace = self._trace_pkt
        if trace is not None:
            trace(PacketTx(time_ns=self.sim.now_ns, port=self.name,
                           flow=str(packet.flow),
                           ptype=packet.ptype.value,
                           size_bytes=packet.size_bytes,
                           seq=packet.seq, ack=packet.ack,
                           ecn=packet.ecn.name))
        if self._impaired:
            self._deliver_impaired(packet)
        else:
            self.sim.schedule(self.delay_ns, self.dst.receive, packet,
                              self)
        self._start_transmission()

    def _deliver_impaired(self, packet: Packet) -> None:
        """Off-hot-path delivery when the link is down or fault-laden."""
        if not self._up:
            # The wire went down while this packet was serializing.
            if self._fault_state is not None:
                self._fault_state.down_drops += 1
            return
        state = unwrap(self._fault_state,
                       "impaired link without fault state")
        fate = state.draw(self.sim.now_ns)
        if fate < 0:
            return  # Lost (-1) or corrupted (-2); counters in draw().
        self.sim.schedule(self.delay_ns + fate, self.dst.receive,
                          packet, self)

    def __repr__(self) -> str:
        return (f"Link({self.name}, {self.rate_bps / 1e6:.1f} Mbps, "
                f"{self.delay_ns / 1e6:.3f} ms)")
