"""Fluid/packet hybrid advancement: mesoscale flow modelling.

Scaling past ~10^4 concurrent flows is event-count-bound: every data
packet costs a handful of scheduler operations, so a 30-second run at
gigabit rates is billions of events regardless of how cheap each one
is.  Cebinae's steady state — max-min taxation of the bottleneck's top
flows — is exactly the regime where long-lived flows are well described
as *fluid* rate processes: piecewise-constant per-flow rates that only
change at epoch boundaries (LBF rotations, flow arrivals/departures,
fault windows, CCA mode transitions).

This module implements the fluid side of the hybrid backend:

* :class:`HybridPolicy` — when to hand a run off from packet to fluid
  granularity (warmup length, stability test, demotion rules);
* :func:`rate_divergence` / :func:`measured_rates_bps` — the stability
  measurement used to decide a handoff is safe;
* :func:`equilibrium_schedule` — the piecewise-constant rate schedule
  for the fluid phase, produced by the equilibrium solvers that already
  exist in :mod:`repro.fairness`: max-min water-filling
  (:func:`~repro.fairness.maxmin.water_filling`) anchors FIFO/FQ rates
  at the measured shares, and Cebinae's taxation difference equation
  (:func:`~repro.fairness.convergence.taxation_trajectory`) advances
  the converging allocation one LBF-recomputation window per epoch;
* :func:`advance_fluid` — integration of the schedule into the run's
  :class:`~repro.netsim.tracing.FlowMonitor`, so goodputs and
  per-second series read identically to a packet run.

The orchestration (segmented packet warmup, stability probing,
promotion back to packet) lives in the experiment runner; everything
here is pure, deterministic float arithmetic in a fixed order, so the
hybrid backend inherits the packet engine's reproducibility: same seed,
same scheduler-independent results.

The fidelity contract, and when *not* to use this: the fluid phase
freezes each flow at its measured equilibrium (plus Cebinae's modelled
taxation drift).  Transients — slow-start, staggered arrivals, fault
recovery, CCA mode switches — are not modelled, which is why the
policy refuses to hand off before flows have settled and why fault
runs are always promoted to full packet granularity.  See DESIGN.md
section 14.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Dict, List, Mapping, Optional,
                    Sequence, Tuple)

from ..fairness.convergence import taxation_trajectory
from ..fairness.maxmin import FlowSpec, water_filling
from .engine import SECOND

if TYPE_CHECKING:
    from ..core.params import CebinaeParams
    from ..core.units import BitsPerSec, Bytes, Ratio, Seconds, TimeNs
    from .packet import FlowId
    from .tracing import FlowMonitor

#: Floor on a flow's demand for the water-filling solver, which rejects
#: non-positive demands; measured-zero flows keep an epsilon share.
MIN_DEMAND_BPS = 1.0

#: Reasons a hybrid run executes at full packet granularity.
REASON_SHORT_RUN = "short_run"
REASON_FAULTS = "faults"
REASON_UNSTABLE = "unstable"


@dataclass(frozen=True)
class HybridPolicy:
    """When (and whether) a run may demote from packet to fluid.

    The defaults are deliberately conservative: the fluid model only
    engages on runs long enough to have a genuine steady state, which
    keeps short figure-class scenarios — transient-dominated by
    construction — at full packet fidelity (and therefore byte-identical
    to the packet backend).
    """

    #: Never hand off before this much simulated time.
    min_warmup_s: Seconds = 4.0
    #: ... nor before this many max-RTTs have elapsed (CCA settling).
    settle_rtts: float = 20.0
    #: ... nor this soon after the last staggered flow arrival.
    post_arrival_settle_s: Seconds = 1.0
    #: Stability measurement window (split into two half-windows).
    #: Four seconds averages each half over several CCA sawtooth
    #: periods at the simulator's scaled-down rates; shorter windows
    #: alias the sawtooth, reading steady runs as divergent and —
    #: worse — freezing a sawtooth phase into the fluid anchors.
    measure_s: Seconds = 4.0
    #: Maximum relative L1 divergence between the half-windows' sorted
    #: rate vectors for the run to count as steady.  Sorting makes the
    #: probe distributional: a steady CCA sawtooth permutes flows
    #: across an unchanged rate profile (phase noise the fluid anchor
    #: averages out anyway), while slow-start or convergence in
    #: progress moves the profile itself.
    stability_tol: Ratio = 0.12
    #: How many times an unstable warmup may be extended (by one
    #: measurement window each) before promoting to full packet.
    max_extensions: int = 2
    #: The fluid phase must cover at least this fraction of the run,
    #: otherwise the handoff machinery is not worth its measurement
    #: cost and the run stays packet.
    min_fluid_fraction: Ratio = 0.25

    def __post_init__(self) -> None:
        if self.min_warmup_s <= 0:
            raise ValueError("min_warmup_s must be positive")
        if self.settle_rtts < 0:
            raise ValueError("settle_rtts cannot be negative")
        if self.post_arrival_settle_s < 0:
            raise ValueError("post_arrival_settle_s cannot be negative")
        if not 0 < self.measure_s <= self.min_warmup_s:
            raise ValueError(
                "measure_s must be positive and fit inside min_warmup_s")
        if not 0 < self.stability_tol < 1:
            raise ValueError("stability_tol must be in (0, 1)")
        if self.max_extensions < 0:
            raise ValueError("max_extensions cannot be negative")
        if not 0 < self.min_fluid_fraction < 1:
            raise ValueError("min_fluid_fraction must be in (0, 1)")

    def settle_s(self, max_rtt_s: Seconds,
                 last_start_s: Seconds = 0.0) -> Seconds:
        """When transients have plausibly decayed (measurement start)."""
        return max(self.min_warmup_s, self.settle_rtts * max_rtt_s,
                   last_start_s + self.post_arrival_settle_s)

    def handoff_s(self, max_rtt_s: Seconds,
                  last_start_s: Seconds = 0.0) -> Seconds:
        """The earliest packet→fluid handoff time for a scenario.

        The measurement window sits *after* the settle point — anchors
        averaged over a window that reaches back into slow start would
        freeze the transient into the fluid phase.
        """
        return (self.settle_s(max_rtt_s, last_start_s)
                + self.measure_s)

    def fluid_viable(self, duration_s: Seconds, max_rtt_s: Seconds,
                     last_start_s: Seconds = 0.0) -> bool:
        """Whether the run is long enough for a fluid phase to pay."""
        handoff = self.handoff_s(max_rtt_s, last_start_s)
        return (duration_s - handoff
                >= self.min_fluid_fraction * duration_s)


@dataclass
class FluidPhaseReport:
    """What the hybrid backend actually did with one run.

    ``mode`` is ``"fluid"`` when a handoff happened and ``"packet"``
    when the run executed at full packet granularity end to end; in the
    latter case ``reason`` says why (:data:`REASON_SHORT_RUN`,
    :data:`REASON_FAULTS`, or :data:`REASON_UNSTABLE` — the last one is
    a *promotion*: the warmup never went steady).
    """

    mode: str
    reason: str = ""
    handoff_s: Seconds = 0.0
    fluid_s: Seconds = 0.0
    epochs: int = 0
    extensions: int = 0
    divergence: Optional[float] = None
    packet_events: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "reason": self.reason,
            "handoff_s": self.handoff_s,
            "fluid_s": self.fluid_s,
            "epochs": self.epochs,
            "extensions": self.extensions,
            "divergence": self.divergence,
            "packet_events": self.packet_events,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FluidPhaseReport":
        return cls(mode=data["mode"], reason=data["reason"],
                   handoff_s=data["handoff_s"], fluid_s=data["fluid_s"],
                   epochs=data["epochs"], extensions=data["extensions"],
                   divergence=data["divergence"],
                   packet_events=data["packet_events"])


def pool_rates(rates_bps: Sequence[BitsPerSec],
               groups: Sequence[Any]) -> List[BitsPerSec]:
    """Average rates within equivalence classes of flows.

    Flows with the same group label — in practice the same (CCA, RTT)
    pair — are statistically exchangeable: their long-run packet
    averages converge to a common value while any finite measurement
    window catches each at a different sawtooth phase.  Pooling the
    anchor within classes removes that phase dispersion (which a
    frozen fluid rate would otherwise perpetuate) while preserving
    every cross-class bias the packet warmup measured.  The aggregate
    is conserved exactly.
    """
    if len(rates_bps) != len(groups):
        raise ValueError("group labels must match rates")
    totals: Dict[Any, float] = {}
    counts: Dict[Any, int] = {}
    for rate, group in zip(rates_bps, groups):
        totals[group] = totals.get(group, 0.0) + rate
        counts[group] = counts.get(group, 0) + 1
    return [totals[group] / counts[group] for group in groups]


def rate_pool_key(rate_bps: BitsPerSec, base: float = 4.0) -> int:
    """The operating-point bucket a flow may pool within.

    Exchangeability has limits: two flows sharing a (CCA, RTT) class
    are only interchangeable if they actually reached the same
    operating regime.  Under heavy multiplexing a drop-tail buffer
    leaves some flows loss-synchronised or RTO-bound at a small
    fraction of their peers' rate, and that dispersion is persistent —
    averaging it away would idealise fairness the packet engine never
    produced.  Bucketing by ``floor(log_base(rate))`` pools only flows
    within a factor of ``base`` of each other: wide enough that CCA
    sawtooth phase (< 2x) stays inside one bucket, narrow enough that
    a starved flow (often 10-100x below class mean) keeps its own
    anchor.
    """
    if base <= 1.0:
        raise ValueError("pool base must be > 1")
    return int(math.floor(
        math.log(max(float(rate_bps), MIN_DEMAND_BPS)) / math.log(base)))


def measured_rates_bps(before_bytes: Sequence[Bytes],
                       after_bytes: Sequence[Bytes],
                       window_ns: TimeNs) -> List[BitsPerSec]:
    """Per-flow average rates over one measurement half-window."""
    if window_ns <= 0:
        raise ValueError("measurement window must be positive")
    if len(before_bytes) != len(after_bytes):
        raise ValueError("snapshot lengths differ")
    return [max(after - before, 0) * 8 * SECOND / window_ns
            for before, after in zip(before_bytes, after_bytes)]


def rate_divergence(first: Sequence[BitsPerSec],
                    second: Sequence[BitsPerSec],
                    distributional: bool = False) -> Ratio:
    """Relative L1 divergence between two per-flow rate vectors.

    ``sum(|a - b|) / (sum(a) + sum(b))`` — scale-free, dominated by the
    large flows (so the noisy tail of a heavy-tailed mix cannot mask a
    still-moving elephant), 0.0 for identical vectors and 1.0 when the
    vectors have disjoint support.  Two half-windows of a steady run
    score near zero; slow-start or convergence in progress scores high.
    An all-zero pair reads as maximally divergent: nothing measured
    means nothing proven steady.

    With ``distributional=True`` the vectors are compared *sorted* —
    the form the stability probe uses (see
    :attr:`HybridPolicy.stability_tol` for why).
    """
    if len(first) != len(second):
        raise ValueError("rate vector lengths differ")
    if distributional:
        first = sorted(first)
        second = sorted(second)
    denominator = sum(first) + sum(second)
    if denominator <= 0:
        return 1.0
    return sum(abs(a - b) for a, b in zip(first, second)) / denominator


#: One fluid epoch: (duration_ns, per-flow rates) with rates constant
#: for the duration.
Epoch = Tuple[int, List[float]]


def equilibrium_schedule(discipline: str,
                         anchor_rates_bps: Sequence[BitsPerSec],
                         fluid_ns: TimeNs,
                         cebinae: Optional[CebinaeParams] = None
                         ) -> List[Epoch]:
    """The piecewise-constant rate schedule covering the fluid phase.

    ``anchor_rates_bps`` are the goodput rates measured over the last
    packet half-window; they encode everything the packet engine
    learned (RTT bias under FIFO, per-flow equalisation under FQ,
    Cebinae's partial convergence).

    * FIFO: the measured equilibrium *is* the model.  Water-filling
      runs with each flow's demand set to its anchor rate over a
      single bottleneck of exactly the measured aggregate, which
      reproduces the anchors (RTT bias included) when feasible and
      redistributes max-min fairly if a later caller hands in an
      oversubscribed vector.  One epoch spans the whole phase —
      without arrivals or departures a steady FIFO allocation has no
      boundaries to recompute at.
    * FQ: per-flow fair queueing enforces the max-min ideal, so the
      schedule is pure water-filling (unbounded demands) over the
      measured aggregate: an exact equal split, which is also what the
      paper normalises FQ against.
    * Cebinae: the taxation difference equation advances the
      allocation one recomputation window (``recompute_rounds`` LBF
      rotations) per epoch, so the fluid phase continues the
      convergence the packet warmup started, at the cadence the real
      control plane would.
    """
    if fluid_ns <= 0:
        return []
    anchors = [max(float(rate), 0.0) for rate in anchor_rates_bps]
    capacity = sum(anchors)
    if capacity <= 0:
        return [(fluid_ns, anchors)]
    if discipline == "cebinae":
        if cebinae is None:
            raise ValueError("cebinae discipline needs CebinaeParams")
        epoch_ns = max(1, cebinae.recompute_rounds) * cebinae.dt_ns
        steps = max(1, math.ceil(fluid_ns / epoch_ns))
        trace = taxation_trajectory(anchors, capacity,
                                    tau=cebinae.tau,
                                    delta_flow=cebinae.delta_flow,
                                    steps=steps,
                                    reclaim_weights=anchors)
        schedule: List[Epoch] = []
        remaining = fluid_ns
        for rates in trace.rates_per_step[1:]:
            span = min(epoch_ns, remaining)
            schedule.append((span, list(rates)))
            remaining -= span
            if remaining <= 0:
                break
        return schedule
    if discipline == "fq":
        flows = [FlowSpec(flow_id=index, path=("bottleneck",))
                 for index in range(len(anchors))]
    else:
        flows = [FlowSpec(flow_id=index, path=("bottleneck",),
                          demand=max(rate, MIN_DEMAND_BPS))
                 for index, rate in enumerate(anchors)]
    allocation = water_filling({"bottleneck": capacity}, flows)
    rates = [allocation[index] for index in range(len(anchors))]
    return [(fluid_ns, rates)]


def advance_fluid(monitor: FlowMonitor, flow_ids: Sequence[FlowId],
                  schedule: Sequence[Epoch],
                  start_ns: TimeNs) -> Bytes:
    """Integrate a fluid schedule into the run's flow monitor.

    Synthesises the payload bytes each flow would have delivered and
    folds them into the monitor's per-flow totals and per-bin series,
    splitting every epoch across bin boundaries so per-second goodput
    series read exactly as if the packets had flowed.  Returns the
    total synthesised payload (whole bytes) across all flows.
    """
    bin_width_ns = monitor.bin_width_ns
    totals = [0.0] * len(flow_ids)
    cursor_ns = start_ns
    for span_ns, rates in schedule:
        if len(rates) != len(flow_ids):
            raise ValueError("epoch rate vector does not match flows")
        end_ns = cursor_ns + span_ns
        for index, flow in enumerate(flow_ids):
            monitor.register(flow)
            rate_bps = rates[index]
            if rate_bps <= 0:
                continue
            totals[index] += rate_bps * span_ns / (8 * SECOND)
            series = monitor.series[flow]
            segment_start = cursor_ns
            while segment_start < end_ns:
                bin_end = ((segment_start // bin_width_ns) + 1
                           ) * bin_width_ns
                segment_end = min(bin_end, end_ns)
                series.add(segment_start,
                           rate_bps * (segment_end - segment_start)
                           / (8 * SECOND))
                segment_start = segment_end
        cursor_ns = end_ns
    for index, flow in enumerate(flow_ids):
        delivered = int(round(totals[index]))
        if delivered <= 0:
            continue
        record = monitor.records[flow]
        record.delivered_bytes += delivered
        if record.first_delivery_ns is None:
            record.first_delivery_ns = start_ns
        record.last_delivery_ns = cursor_ns
    return int(round(sum(totals)))


def wire_overhead_ratio(wire_bytes: Bytes, payload_bytes: Bytes) -> Ratio:
    """Wire-bytes-per-payload-byte, measured over the warmup tail.

    Used to extrapolate bottleneck *throughput* (wire bytes) from the
    fluid phase's synthesised *goodput* (payload bytes); headers, ACK
    overhead and retransmissions observed during the packet warmup are
    assumed to persist at the same ratio.  Clamped to >= 1.0 — payload
    cannot exceed wire volume.
    """
    if payload_bytes <= 0:
        return 1.0
    return max(1.0, wire_bytes / payload_bytes)


__all__ = [
    "Epoch", "FluidPhaseReport", "HybridPolicy", "MIN_DEMAND_BPS",
    "REASON_FAULTS", "REASON_SHORT_RUN", "REASON_UNSTABLE",
    "advance_fluid", "equilibrium_schedule", "measured_rates_bps",
    "pool_rates", "rate_divergence", "rate_pool_key",
    "wire_overhead_ratio",
]
