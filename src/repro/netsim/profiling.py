"""Hot-path profiling: per-component event counters and throughput.

The simulator's inner loop is the wall-clock floor of every sweep, so
this module gives it a flight recorder that is *free when off*: the
engine checks a module-level registration once per :meth:`Simulator.run`
and pays one dict increment per event only while a profiler is
installed.

A :class:`HotPathProfiler` aggregates across every :class:`Simulator`
that runs while it is installed (a sweep builds one simulator per
point), counting events per *component* — the class owning the fired
callback (``Link``, ``TcpSocket``, ``CebinaeControlPlane``, ...) — plus
events/second and the sim-time/wall-time ratio.

Use via the CLI (``cebinae-repro figure9 --profile``) or directly::

    from repro.netsim import profiling
    with profiling.profiled() as prof:
        run_scenario(...)
    print(prof.report().format_text())

Profiling is in-process: points farmed out to worker processes by the
parallel executor are not observed, so profile with ``--workers 1``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional

#: Nanoseconds per second (kept local: the engine imports this module).
_NS_PER_SEC = 1_000_000_000

#: Version of the profile/BENCH JSON layout.  Bump when a field is
#: renamed, retyped, or removed; CI artifacts stay comparable across
#: PRs only within one schema version.
SCHEMA_VERSION = 1


def component_of(callback: Callable[..., Any]) -> str:
    """The profile bucket for a callback: owning class or module."""
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        return type(owner).__name__
    qualname = getattr(callback, "__qualname__", None)
    if qualname:
        return qualname.split(".")[0]
    return type(callback).__name__


@dataclass
class ProfileReport:
    """A finished profile: totals plus the per-component breakdown."""

    events: int
    wall_s: float
    sim_s: float
    runs: int
    component_events: Dict[str, int]

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def sim_wall_ratio(self) -> float:
        """Simulated seconds per wall second (>1 = faster than real time)."""
        return self.sim_s / self.wall_s if self.wall_s > 0 else 0.0

    def format_text(self) -> str:
        lines = [
            "hot-path profile",
            f"  events          {self.events}",
            f"  simulator runs  {self.runs}",
            f"  wall time       {self.wall_s:.3f} s",
            f"  sim time        {self.sim_s:.3f} s",
            f"  events/sec      {self.events_per_sec:,.0f}",
            f"  sim/wall ratio  {self.sim_wall_ratio:.2f}x",
        ]
        if self.component_events:
            lines.append("  events by component:")
            width = max(len(name) for name in self.component_events)
            for name, count in sorted(self.component_events.items(),
                                      key=lambda item: (-item[1], item[0])):
                share = count / self.events if self.events else 0.0
                lines.append(f"    {name:<{width}}  {count:>10}"
                             f"  {share:6.1%}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "events": self.events,
            "runs": self.runs,
            "wall_s": self.wall_s,
            "sim_s": self.sim_s,
            "events_per_sec": self.events_per_sec,
            "sim_wall_ratio": self.sim_wall_ratio,
            "component_events": dict(sorted(
                self.component_events.items())),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProfileReport":
        """Rebuild a report from :meth:`to_dict` output (round-trip)."""
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"profile schema_version {version!r} is not "
                f"{SCHEMA_VERSION}")
        return cls(
            events=data["events"],
            wall_s=data["wall_s"],
            sim_s=data["sim_s"],
            runs=data["runs"],
            component_events=dict(data["component_events"]),
        )

    def to_bench_json(self, name: str) -> Dict[str, Any]:
        """The profile in the ``BENCH_*.json`` (pytest-benchmark) shape.

        Benchmark results in this repo are pytest-benchmark JSON files
        with the interesting numbers under ``benchmarks[*].extra_info``;
        the CLI's ``--profile-json`` emits the same envelope so one set
        of tooling reads both.
        """
        return {
            "benchmarks": [{
                "group": "profile",
                "name": name,
                "extra_info": self.to_dict(),
            }],
        }


class HotPathProfiler:
    """Aggregates event counts and timings across simulator runs."""

    def __init__(self) -> None:
        self.component_events: Dict[str, int] = {}
        self.events = 0
        self.wall_s = 0.0
        self.sim_ns = 0
        self.runs = 0

    def record(self, callback: Callable[..., Any]) -> None:
        """Count one fired event (called from the engine's run loop)."""
        key = component_of(callback)
        counts = self.component_events
        counts[key] = counts.get(key, 0) + 1
        self.events += 1

    def record_run(self, sim_advance_ns: int, wall_s: float) -> None:
        """Account one completed ``Simulator.run`` call."""
        self.runs += 1
        self.sim_ns += sim_advance_ns
        self.wall_s += wall_s

    def report(self) -> ProfileReport:
        return ProfileReport(
            events=self.events,
            wall_s=self.wall_s,
            sim_s=self.sim_ns / _NS_PER_SEC,
            runs=self.runs,
            component_events=dict(self.component_events),
        )


#: The installed profiler, observed by every Simulator.run in-process.
_ACTIVE: Optional[HotPathProfiler] = None


def enable() -> HotPathProfiler:
    """Install (and return) a fresh global profiler."""
    global _ACTIVE
    _ACTIVE = HotPathProfiler()
    return _ACTIVE


def disable() -> Optional[HotPathProfiler]:
    """Uninstall the global profiler, returning it for reporting."""
    global _ACTIVE
    profiler, _ACTIVE = _ACTIVE, None
    return profiler


def current() -> Optional[HotPathProfiler]:
    """The installed profiler, or None when profiling is off."""
    return _ACTIVE


@contextmanager
def profiled() -> Iterator[HotPathProfiler]:
    """Scope a profiler around a block of simulation code."""
    profiler = enable()
    try:
        yield profiler
    finally:
        disable()


def monotonic() -> float:
    """Wall-clock read for throughput reporting (never simulation time)."""
    return time.monotonic()  # simlint: allow[D103] profiler wall clock


def write_bench_json(path: str, name: str, report: ProfileReport) -> None:
    """Write a profile to ``path`` in the ``BENCH_*.json`` shape."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_bench_json(name), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")


def load_bench_json(path: str) -> Dict[str, ProfileReport]:
    """Round-trip loader for :func:`write_bench_json` artifacts.

    Returns the profiles keyed by benchmark name, so CI comparisons can
    diff ``BENCH_*.json`` files from different PRs field by field.
    Entries from other groups (raw pytest-benchmark results) are
    skipped — only ``group == "profile"`` rows carry profile payloads.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    reports: Dict[str, ProfileReport] = {}
    for entry in data.get("benchmarks", []):
        if entry.get("group") != "profile":
            continue
        reports[entry["name"]] = ProfileReport.from_dict(
            entry["extra_info"])
    return reports


__all__ = [
    "HotPathProfiler", "ProfileReport", "SCHEMA_VERSION", "component_of",
    "current", "disable", "enable", "load_bench_json", "monotonic",
    "profiled", "write_bench_json",
]
