"""Discrete-event simulation engine.

The engine is the substrate every other component builds on.  It keeps a
priority queue of timestamped callbacks and executes them in order.  Time
is an integer number of nanoseconds to keep event ordering exact and
reproducible (floating point time makes rotation boundaries and
control-plane deadlines drift, which matters for Cebinae's real-time
queue-rotation protocol).

Typical use::

    sim = Simulator()
    sim.schedule(MILLISECOND, callback, arg1, arg2)
    sim.run(until_ns=10 * SECOND)

Two interchangeable scheduler backends order the pending events
(ns-3-style, selectable per simulator or via ``REPRO_SCHEDULER``):

* :class:`HeapScheduler` (default) — one binary heap of
  ``(time_ns, seq, event)`` tuples.  Tuple entries keep comparisons in
  C (int compares) instead of calling a Python ``__lt__`` per sift.
* :class:`CalendarScheduler` — a classic calendar queue (Brown 1988),
  the structure Cebinae's own LBF is modelled on: a ring of day-buckets
  of width ``bucket_width_ns``, giving O(1) amortised insert/extract
  when event times are roughly uniform, as packet departures are.

Both backends execute the exact same ``(time_ns, seq)`` sequence —
nondecreasing time, FIFO among ties — which
``tests/test_scheduler_equivalence.py`` proves by replaying random
workloads through each and comparing the traces.

**Batched event execution** (on by default, ``REPRO_BATCH=0`` to
disable): after popping an event, the run loop drains every further
pending event with the *same timestamp* through the scheduler's
:meth:`EventScheduler.pop_at` fast path instead of a full ``pop``.
Saturated links produce long same-timestamp trains (every port that
finishes serializing within one nanosecond tick), and ``pop_at`` skips
the calendar's year scan / the heap's bound checks for each of them.
Batching is a pure scheduling optimisation: events still execute in
exactly the ``(time_ns, seq)`` order of the unbatched loop (ties are
drained min-seq first, and a callback scheduling at zero delay always
receives a larger seq than every already-pending tie), which
``tests/test_batched_engine.py`` pins with a hypothesis replay.

Per-event argument validation (:func:`repro.analysis.invariants
.require_int_ns`) is debug-gated: it runs when
``repro.analysis.invariants.DEBUG`` is on (always under pytest, or with
``REPRO_DEBUG=1``) and is skipped entirely in release runs, which pay
zero validation cost per event without weakening the determinism
contract — all times are ints either way; debug merely *proves* it.
"""

from __future__ import annotations

import heapq
import itertools
import os
from typing import (TYPE_CHECKING, Any, Callable, Dict, Iterator, List,
                    Optional, Tuple, Type, Union)

from ..analysis import invariants
from ..analysis.invariants import require_int_ns
from ..obs import metrics as obs_metrics
from ..obs import spans as obs_spans
from . import profiling

if TYPE_CHECKING:
    from ..core.units import Seconds, TimeNs

#: One nanosecond, the base time unit of the engine.
NANOSECOND = 1
#: Nanoseconds in a microsecond.
MICROSECOND = 1_000
#: Nanoseconds in a millisecond.
MILLISECOND = 1_000_000
#: Nanoseconds in a second.
SECOND = 1_000_000_000


def seconds(value: Seconds) -> TimeNs:
    """Convert a duration in (possibly fractional) seconds to nanoseconds."""
    return int(round(value * SECOND))


def to_seconds(value_ns: TimeNs) -> Seconds:
    """Convert a duration in nanoseconds to float seconds."""
    return value_ns / SECOND


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and may be
    cancelled.  Cancelled events stay in the scheduler but are skipped
    when they surface, which keeps cancellation O(1).
    """

    __slots__ = ("time_ns", "seq", "callback", "args", "cancelled")

    def __init__(self, time_ns: TimeNs, seq: int,
                 callback: Callable[..., None],
                 args: Tuple[Any, ...]) -> None:
        self.time_ns = time_ns
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # Ties broken by insertion order so the schedule is deterministic.
        # (Schedulers compare (time_ns, seq) tuples and never reach this;
        # kept for code that sorts Events directly.)
        return (self.time_ns, self.seq) < (other.time_ns, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time_ns}ns, {state}, {self.callback!r})"


#: A scheduler entry.  The (time_ns, seq) prefix is the total order;
#: the Event itself is never compared because the prefix is unique.
Entry = Tuple[int, int, Event]


class EventScheduler:
    """Interface of a pending-event set with a total (time, seq) order.

    ``pop`` must return entries in nondecreasing ``(time_ns, seq)``
    order.  ``push`` may be called with any entry whose time is >= the
    simulator's *executed* time — which can be **earlier than the last
    popped time**: the :class:`Simulator` pops-then-repushes entries
    (``peek_time_ns``, the ``until_ns``/``max_events`` push-back in
    ``run``) and may then legally schedule before the pushed-back
    entry.  Backends must stay correctly ordered under such pushes.
    Cancellation is handled by the :class:`Simulator`, which skips
    entries whose event has ``cancelled`` set.
    """

    __slots__ = ()

    def push(self, entry: Entry) -> None:
        raise NotImplementedError

    def pop(self) -> Optional[Entry]:
        """Remove and return the minimal entry, or None when empty."""
        raise NotImplementedError

    def pop_at(self, time_ns: int) -> Optional[Entry]:
        """Pop the minimal entry *only if* its time is ``time_ns``.

        The batched run loop calls this while draining a same-timestamp
        train, where ``time_ns`` is the clock's current value — so every
        pending entry is known to be ``>= time_ns`` and a head matching
        it exactly is the global minimum.  Backends override this with
        an O(1) check; the generic fallback pops and pushes back, which
        is correct for any ordered backend but pays the churn batching
        exists to avoid.
        """
        entry = self.pop()
        if entry is None:
            return None
        if entry[0] != time_ns:
            self.push(entry)
            return None
        return entry

    def __len__(self) -> int:
        raise NotImplementedError


class HeapScheduler(EventScheduler):
    """A binary heap of tuple entries (the default backend)."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Entry] = []

    def push(self, entry: Entry) -> None:
        heapq.heappush(self._heap, entry)

    def pop(self) -> Optional[Entry]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)

    def pop_at(self, time_ns: int) -> Optional[Entry]:
        heap = self._heap
        if heap and heap[0][0] == time_ns:
            return heapq.heappop(heap)
        return None

    def __len__(self) -> int:
        return len(self._heap)


class CalendarScheduler(EventScheduler):
    """A calendar queue (Brown 1988), as in ns-3's ``CalendarScheduler``.

    Entries hash into a ring of day-buckets by
    ``(time // width) % num_buckets``; each bucket is a small heap.  A
    pop scans one calendar year starting at the current day and takes
    the first head event that falls inside its bucket's window — which
    the monotonic-time contract makes the global minimum — falling back
    to a direct min-of-heads search when the year is empty (sparse
    horizon).  The ring doubles/halves around the occupancy band
    [n/2, 2n] and re-derives the bucket width from the observed event
    spacing, so both dense packet bursts and sparse control timers stay
    O(1) amortised.
    """

    __slots__ = ("_buckets", "_width", "_size", "_last_time_ns",
                 "_min_buckets")

    def __init__(self, bucket_width_ns: int = 64 * MICROSECOND,
                 num_buckets: int = 64) -> None:
        if bucket_width_ns <= 0:
            raise ValueError("bucket width must be positive")
        if num_buckets <= 0:
            raise ValueError("bucket count must be positive")
        self._width = bucket_width_ns
        self._buckets: List[List[Entry]] = [[] for _ in range(num_buckets)]
        self._size = 0
        self._last_time_ns = 0
        self._min_buckets = num_buckets

    def push(self, entry: Entry) -> None:
        buckets = self._buckets
        heapq.heappush(buckets[(entry[0] // self._width) % len(buckets)],
                       entry)
        self._size += 1
        # Clamp the scan origin so it never exceeds the minimal pending
        # time.  The Simulator pops-then-repushes entries (peeks, the
        # until_ns/max_events push-back in run()), which advances
        # _last_time_ns past entries that are still legal to schedule;
        # without the clamp the next pop would scan from too late a day,
        # execute out of order, and rewind the clock.
        if entry[0] < self._last_time_ns:
            self._last_time_ns = entry[0]
        if self._size > 2 * len(buckets):
            self._rebuild(2 * len(buckets))

    def pop(self) -> Optional[Entry]:
        if not self._size:
            return None
        buckets = self._buckets
        count = len(buckets)
        width = self._width
        day = self._last_time_ns // width
        start = day % count
        window_end = (day + 1) * width
        entry: Optional[Entry] = None
        for offset in range(count):
            bucket = buckets[(start + offset) % count]
            # Eligible = the head lands inside this bucket's window of
            # the current year; earlier buckets' windows end sooner, so
            # the first hit is the global minimum.
            if bucket and bucket[0][0] < window_end:
                entry = heapq.heappop(bucket)
                break
            window_end += width
        if entry is None:
            # Nothing due this year: jump straight to the minimal head.
            best = -1
            for index, bucket in enumerate(buckets):
                if bucket and (best < 0 or bucket[0] < buckets[best][0]):
                    best = index
            entry = heapq.heappop(buckets[best])
        self._size -= 1
        self._last_time_ns = entry[0]
        if (self._size < len(self._buckets) // 2
                and len(self._buckets) > self._min_buckets):
            self._rebuild(max(self._min_buckets,
                              len(self._buckets) // 2))
        return entry

    def pop_at(self, time_ns: int) -> Optional[Entry]:
        # One hash, one head compare: the day-bucket of ``time_ns``
        # either leads with an exact tie (the global minimum, since
        # pop_at's contract says nothing pending is earlier) or the
        # train is over.  No year scan, and the shrink check is
        # deferred to the next full pop — occupancy only shrinks by
        # the train length, never below what pop() rebalances.
        bucket = self._buckets[(time_ns // self._width)
                               % len(self._buckets)]
        if bucket and bucket[0][0] == time_ns:
            entry = heapq.heappop(bucket)
            self._size -= 1
            self._last_time_ns = time_ns
            return entry
        return None

    def __len__(self) -> int:
        return self._size

    def _rebuild(self, num_buckets: int) -> None:
        entries: List[Entry] = []
        for bucket in self._buckets:
            entries.extend(bucket)
        entries.sort()
        self._width = self._choose_width(entries)
        buckets: List[List[Entry]] = [[] for _ in range(num_buckets)]
        width = self._width
        for entry in entries:
            # Appended in sorted order, so each bucket list is already a
            # valid min-heap.
            buckets[(entry[0] // width) % num_buckets].append(entry)
        self._buckets = buckets

    def _choose_width(self, entries: List[Entry]) -> int:
        """Bucket width ~= a few average inter-event gaps (sorted input)."""
        sample = entries[:64]
        if len(sample) < 2:
            return self._width
        span = sample[-1][0] - sample[0][0]
        if span <= 0:
            return self._width
        return max(1, (3 * span) // (len(sample) - 1))


#: Scheduler registry for string selection (ns-3-style).
SCHEDULERS: Dict[str, Type[EventScheduler]] = {
    "heap": HeapScheduler,
    "calendar": CalendarScheduler,
}


def make_scheduler(name: str) -> EventScheduler:
    """Instantiate a scheduler backend by registry name."""
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise SimulationError(
            f"unknown scheduler {name!r}; choose from "
            f"{sorted(SCHEDULERS)}") from None


class Simulator:
    """An event-driven simulator with an integer-nanosecond clock.

    ``scheduler`` selects the pending-event backend: a registry name
    (``"heap"``/``"calendar"``), an :class:`EventScheduler` instance,
    or None to honour the ``REPRO_SCHEDULER`` environment variable
    (default ``heap``).  All backends execute the identical event
    sequence; the choice is purely a performance knob.

    ``batch`` selects batched same-timestamp execution (see the module
    docstring): None honours ``REPRO_BATCH`` (default on).  Batched and
    unbatched runs execute the identical event sequence; the knob
    exists so the equivalence is testable.
    """

    def __init__(self,
                 scheduler: Union[str, EventScheduler, None] = None,
                 batch: Optional[bool] = None) -> None:
        if scheduler is None:
            scheduler = os.environ.get("REPRO_SCHEDULER", "heap")
        if isinstance(scheduler, str):
            scheduler = make_scheduler(scheduler)
        if batch is None:
            batch = os.environ.get("REPRO_BATCH", "1") != "0"
        self._scheduler: EventScheduler = scheduler
        # Hot-path bindings: schedule()/schedule_at() run once per
        # event, so the scheduler-push attribute chain and the seq
        # counter's __next__ are resolved here instead of per call.
        # The scheduler never changes after construction.
        self._push = scheduler.push
        self._seq: Iterator[int] = itertools.count()
        self._next_seq = self._seq.__next__
        self._batch = bool(batch)
        self._now_ns = 0
        self._running = False
        self._processed = 0

    @property
    def now_ns(self) -> TimeNs:
        """The current simulation time in nanoseconds."""
        return self._now_ns

    @property
    def now_seconds(self) -> Seconds:
        """The current simulation time in float seconds (for reporting)."""
        return self._now_ns / SECOND

    @property
    def processed_events(self) -> int:
        """The number of events executed so far (for diagnostics)."""
        return self._processed

    @property
    def scheduler(self) -> EventScheduler:
        """The active scheduler backend."""
        return self._scheduler

    @property
    def batched(self) -> bool:
        """Whether the run loop drains same-timestamp trains batched."""
        return self._batch

    def schedule(self, delay_ns: TimeNs, callback: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay_ns`` from now."""
        if invariants.DEBUG:
            require_int_ns(delay_ns, "schedule() delay_ns")
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns}ns in the past")
        time_ns = self._now_ns + delay_ns
        seq = self._next_seq()
        event = Event(time_ns, seq, callback, args)
        self._push((time_ns, seq, event))
        return event

    def schedule_at(self, time_ns: TimeNs, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time_ns``."""
        if invariants.DEBUG:
            require_int_ns(time_ns, "schedule_at() time_ns")
        if time_ns < self._now_ns:
            raise SimulationError(
                f"cannot schedule at {time_ns}ns, now is {self._now_ns}ns")
        seq = self._next_seq()
        event = Event(time_ns, seq, callback, args)
        self._push((time_ns, seq, event))
        return event

    def peek_time_ns(self) -> Optional[TimeNs]:
        """The time of the next pending event, or None if none remain."""
        scheduler = self._scheduler
        while True:
            entry = scheduler.pop()
            if entry is None:
                return None
            if entry[2].cancelled:
                continue
            scheduler.push(entry)
            return entry[0]

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        scheduler = self._scheduler
        while True:
            entry = scheduler.pop()
            if entry is None:
                return False
            event = entry[2]
            if event.cancelled:
                continue
            self._now_ns = entry[0]
            self._processed += 1
            event.callback(*event.args)
            return True

    def run(self, until_ns: Optional[TimeNs] = None,
            max_events: Optional[int] = None,
            watchdog: Optional[Callable[[], None]] = None,
            watchdog_interval: int = 8192) -> None:
        """Run events in order.

        Args:
            until_ns: stop once the clock would pass this time; events at
                exactly ``until_ns`` are executed.  The clock is advanced
                to ``until_ns`` on return so that post-run measurements
                cover the full interval.
            max_events: safety valve for runaway simulations.
            watchdog: called every ``watchdog_interval`` executed events;
                may raise to abort the run (see
                :class:`repro.faults.watchdog.WallClockWatchdog`).  The
                hot path pays one ``is not None`` test per event and the
                modulo only when a watchdog is installed.
            watchdog_interval: events between watchdog checks.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        if until_ns is not None:
            # A float here would be silently written into the clock on
            # return, poisoning every later timestamp.  (Always checked:
            # this is once per run, not per event.)
            require_int_ns(until_ns, "run() until_ns")
        self._running = True
        # The span is named "events", never after the scheduler class:
        # span streams must stay byte-identical across backends.
        span = obs_spans.open_span("engine", "events")
        profiler = profiling.current()
        record = profiler.record if profiler is not None else None
        wall_start = profiling.monotonic() if profiler is not None else 0.0
        start_ns = self._now_ns
        # The inner loop below is the simulator's hot path: one pop, one
        # cancelled check, two int compares and the callback per event —
        # and, in batched mode, one cheap pop_at per same-timestamp tie
        # instead of a full pop + bound checks.
        scheduler = self._scheduler
        pop = scheduler.pop
        pop_at = scheduler.pop_at if self._batch else None
        # Friend access for the default backend: peeking the heap head
        # inline replicates pop_at's miss test (empty, or head not at
        # this timestamp) without a method call, and misses are the
        # overwhelmingly common case on workloads with few ties.
        heap = scheduler._heap if (pop_at is not None and
                                   type(scheduler) is HeapScheduler) \
            else None
        executed = 0
        try:
            while True:
                entry = pop()
                if entry is None:
                    break
                event = entry[2]
                if event.cancelled:
                    continue
                time_ns = entry[0]
                if until_ns is not None and time_ns > until_ns:
                    scheduler.push(entry)
                    break
                # Drain the same-timestamp train.  Ties execute in seq
                # order (pop_at always yields the minimal pending entry)
                # and zero-delay reschedules join the train's tail with
                # a fresh, larger seq — the exact unbatched order.
                while True:
                    if max_events is not None and executed >= max_events:
                        scheduler.push(entry)
                        raise SimulationError(
                            f"exceeded max_events={max_events}")
                    executed += 1
                    self._now_ns = time_ns
                    self._processed += 1
                    if (watchdog is not None
                            and not executed % watchdog_interval):
                        watchdog()
                    if record is not None:
                        record(event.callback)
                    event.callback(*event.args)
                    if pop_at is None:
                        break
                    if heap is not None and \
                            (not heap or heap[0][0] != time_ns):
                        break
                    entry = pop_at(time_ns)
                    while entry is not None and entry[2].cancelled:
                        entry = pop_at(time_ns)
                    if entry is None:
                        break
                    event = entry[2]
            if until_ns is not None and until_ns > self._now_ns:
                self._now_ns = until_ns
        finally:
            self._running = False
            if span is not None:
                span.count = executed
                obs_spans.close_span(span)
            if profiler is not None:
                profiler.record_run(
                    self._now_ns - start_ns,
                    profiling.monotonic() - wall_start)
            # Metrics are folded once per run (never per event), so the
            # hot loop above is untouched whether a registry is active
            # or not.
            registry = obs_metrics.current()
            if registry is not None:
                registry.record_run(executed, self._now_ns - start_ns)
