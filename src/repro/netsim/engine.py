"""Discrete-event simulation engine.

The engine is the substrate every other component builds on.  It keeps a
priority queue of timestamped callbacks and executes them in order.  Time
is an integer number of nanoseconds to keep event ordering exact and
reproducible (floating point time makes rotation boundaries and
control-plane deadlines drift, which matters for Cebinae's real-time
queue-rotation protocol).

Typical use::

    sim = Simulator()
    sim.schedule(MILLISECOND, callback, arg1, arg2)
    sim.run(until_ns=10 * SECOND)
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator, List, Optional, Tuple

from ..analysis.invariants import require_int_ns

#: One nanosecond, the base time unit of the engine.
NANOSECOND = 1
#: Nanoseconds in a microsecond.
MICROSECOND = 1_000
#: Nanoseconds in a millisecond.
MILLISECOND = 1_000_000
#: Nanoseconds in a second.
SECOND = 1_000_000_000


def seconds(value: float) -> int:
    """Convert a duration in (possibly fractional) seconds to nanoseconds."""
    return int(round(value * SECOND))


def to_seconds(value_ns: int) -> float:
    """Convert a duration in nanoseconds to float seconds."""
    return value_ns / SECOND


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and may be
    cancelled.  Cancelled events stay in the heap but are skipped when
    they surface, which keeps cancellation O(1).
    """

    __slots__ = ("time_ns", "seq", "callback", "args", "cancelled")

    def __init__(self, time_ns: int, seq: int,
                 callback: Callable[..., None],
                 args: Tuple[Any, ...]) -> None:
        self.time_ns = time_ns
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # Ties broken by insertion order so the schedule is deterministic.
        return (self.time_ns, self.seq) < (other.time_ns, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time_ns}ns, {state}, {self.callback!r})"


class Simulator:
    """An event-driven simulator with an integer-nanosecond clock."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq: Iterator[int] = itertools.count()
        self._now_ns = 0
        self._running = False
        self._processed = 0

    @property
    def now_ns(self) -> int:
        """The current simulation time in nanoseconds."""
        return self._now_ns

    @property
    def now_seconds(self) -> float:
        """The current simulation time in float seconds (for reporting)."""
        return self._now_ns / SECOND

    @property
    def processed_events(self) -> int:
        """The number of events executed so far (for diagnostics)."""
        return self._processed

    def schedule(self, delay_ns: int, callback: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay_ns`` from now."""
        require_int_ns(delay_ns, "schedule() delay_ns")
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns}ns in the past")
        return self.schedule_at(self._now_ns + delay_ns, callback, *args)

    def schedule_at(self, time_ns: int, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time_ns``."""
        require_int_ns(time_ns, "schedule_at() time_ns")
        if time_ns < self._now_ns:
            raise SimulationError(
                f"cannot schedule at {time_ns}ns, now is {self._now_ns}ns")
        event = Event(time_ns, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def peek_time_ns(self) -> Optional[int]:
        """The time of the next pending event, or None if the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time_ns if self._heap else None

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now_ns = event.time_ns
            self._processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until_ns: Optional[int] = None,
            max_events: Optional[int] = None) -> None:
        """Run events in order.

        Args:
            until_ns: stop once the clock would pass this time; events at
                exactly ``until_ns`` are executed.  The clock is advanced
                to ``until_ns`` on return so that post-run measurements
                cover the full interval.
            max_events: safety valve for runaway simulations.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        if until_ns is not None:
            # A float here would be silently written into the clock on
            # return, poisoning every later timestamp.
            require_int_ns(until_ns, "run() until_ns")
        self._running = True
        executed = 0
        try:
            while True:
                next_time = self.peek_time_ns()
                if next_time is None:
                    break
                if until_ns is not None and next_time > until_ns:
                    break
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}")
                self.step()
                executed += 1
            if until_ns is not None and until_ns > self._now_ns:
                self._now_ns = until_ns
        finally:
            self._running = False
