"""AFQ: Approximate Fair Queueing on calendar queues (NSDI '18).

The scalability comparison point of the paper's sections 2 and 5.5.
AFQ emulates fair queuing with ``nQ`` FIFO queues treated as a calendar:
each represents one *round* of ``BpR`` (bytes-per-round) service per
flow.  A count-min sketch tracks every flow's bytes; an arriving packet
is stamped with the round its flow would finish in under ideal fair
queuing (``bytes_sent / BpR``) and enqueued into the corresponding
future queue.  Packets landing more than ``nQ`` rounds ahead are
dropped — the Equation (1) constraint::

    buffer_req  <=  BpR x nQ

which is why AFQ's fidelity degrades as flows, RTTs, or burstiness grow
while Cebinae's two queues do not (its enforcement is per-group and
eventual rather than per-packet).
"""

from __future__ import annotations

import collections
from typing import TYPE_CHECKING, Deque, List, Optional

from ..heavyhitter.sketch import CountMinSketch
from .packet import Packet
from .queues import QueueDisc
from .topology import PortSpec, QueueFactory

if TYPE_CHECKING:
    from ..core.units import Bytes


class AfqQueue(QueueDisc):
    """Calendar-queue approximate fair queuing."""

    def __init__(self, num_queues: int = 32,
                 bytes_per_round: Bytes = 2 * 1514,
                 sketch_rows: int = 2, sketch_columns: int = 2048,
                 limit_bytes: Optional[Bytes] = None,
                 seed: int = 1) -> None:
        super().__init__()
        if num_queues < 2:
            raise ValueError("AFQ needs at least two calendar queues")
        if bytes_per_round <= 0:
            raise ValueError("BpR must be positive")
        self.num_queues = num_queues
        self.bytes_per_round = bytes_per_round
        self.limit_bytes = limit_bytes
        self.sketch = CountMinSketch(rows=sketch_rows,
                                     columns=sketch_columns, seed=seed)
        self._queues: List[Deque[Packet]] = [
            collections.deque() for _ in range(num_queues)]
        self._bytes = 0
        self._packets = 0
        self.current_round = 0
        self.horizon_drops = 0
        self.buffer_drops = 0

    def enqueue(self, packet: Packet) -> bool:
        if (self.limit_bytes is not None
                and self._bytes + packet.size_bytes > self.limit_bytes):
            self.buffer_drops += 1
            self.record_drop(packet, reason="buffer")
            return False
        # The bid uses the flow's bytes *before* this packet (its first
        # byte's position in the ideal fair-queuing schedule); the
        # sketch update itself returns the post-increment estimate.
        sent_bytes = self.sketch.update(packet.flow, packet.size_bytes)
        bid_round = (sent_bytes - packet.size_bytes) \
            // self.bytes_per_round
        if bid_round < self.current_round:
            # The flow was idle: it re-enters at the current round
            # (AFQ advances a returning flow's sketch count so it does
            # not bank credit from its idle period).
            bid_round = self.current_round
        if bid_round >= self.current_round + self.num_queues:
            # Beyond the calendar horizon: Equation (1) violated for
            # this flow; the packet cannot be scheduled fairly.
            self.horizon_drops += 1
            self.record_drop(packet, reason="horizon")
            return False
        was_empty = self._packets == 0
        self._queues[bid_round % self.num_queues].append(packet)
        self._bytes += packet.size_bytes
        self._packets += 1
        if was_empty:
            self.notify_waker()
        return True

    def dequeue(self) -> Optional[Packet]:
        if self._packets == 0:
            return None
        # Serve the current round; when it empties, rotate forward to
        # the next non-empty round (the priority rotation of the
        # hardware design).
        for _ in range(self.num_queues):
            queue = self._queues[self.current_round % self.num_queues]
            if queue:
                packet = queue.popleft()
                self._bytes -= packet.size_bytes
                self._packets -= 1
                return packet
            self.current_round += 1
        return None

    def __len__(self) -> int:
        return self._packets

    @property
    def byte_length(self) -> Bytes:
        return self._bytes


def afq_factory(num_queues: int = 32,
                bytes_per_round: Bytes = 2 * 1514,
                limit_bytes: Optional[int] = None,
                sketch_columns: int = 2048) -> "QueueFactory":
    """Queue factory installing AFQ on a port."""
    def factory(spec: PortSpec) -> AfqQueue:
        return AfqQueue(num_queues=num_queues,
                        bytes_per_round=bytes_per_round,
                        limit_bytes=limit_bytes,
                        sketch_columns=sketch_columns)
    return factory
