"""Topology construction and static routing.

:class:`Network` wraps a :class:`~repro.netsim.engine.Simulator` and a
set of nodes/links, computes static shortest-path routes with networkx,
and provides the two topology families used throughout the paper's
evaluation: the dumbbell (single bottleneck, Table 2 and most figures)
and the 'Parking Lot' (multiple bottlenecks, Figure 11).

Queue disciplines are injected per port through a *queue factory* so the
same topology can be instantiated with FIFO, FQ-CoDel, or Cebinae on its
bottleneck ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Callable, Dict, List, Optional,
                    Sequence, Tuple)

import networkx as nx

from .engine import MILLISECOND, Simulator
from .link import Link
from .node import Host, Node, Router
from .queues import DropTailQueue, QueueDisc

if TYPE_CHECKING:
    from ..core.units import BitsPerSec, TimeNs


@dataclass
class PortSpec:
    """Everything a queue factory may need to size itself."""

    sim: Simulator
    rate_bps: BitsPerSec
    delay_ns: TimeNs
    name: str


QueueFactory = Callable[[PortSpec], QueueDisc]


def drop_tail_factory(limit_packets: Optional[int] = None,
                      limit_bytes: Optional[int] = None) -> QueueFactory:
    """A factory producing plain drop-tail FIFOs."""
    def factory(spec: PortSpec) -> QueueDisc:
        return DropTailQueue(limit_packets=limit_packets,
                             limit_bytes=limit_bytes)
    return factory


#: Default queue for uncongested ports (access links, reverse paths).
DEFAULT_ACCESS_QUEUE = drop_tail_factory(limit_packets=1000)


class Network:
    """A simulated network: nodes, links, and static routes."""

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.nodes: Dict[int, Node] = {}
        self.links: List[Link] = []
        self.graph = nx.DiGraph()
        self._next_id = 0

    def _new_id(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def add_host(self, name: str = "") -> Host:
        host = Host(self.sim, self._new_id(), name)
        self.nodes[host.node_id] = host
        self.graph.add_node(host.node_id)
        return host

    def add_router(self, name: str = "") -> Router:
        router = Router(self.sim, self._new_id(), name)
        self.nodes[router.node_id] = router
        self.graph.add_node(router.node_id)
        return router

    def add_link(self, src: Node, dst: Node, rate_bps: BitsPerSec,
                 delay_ns: TimeNs,
                 queue_factory: Optional[QueueFactory] = None) -> Link:
        """Add a unidirectional link with its egress queue."""
        factory = queue_factory or DEFAULT_ACCESS_QUEUE
        spec = PortSpec(sim=self.sim, rate_bps=rate_bps, delay_ns=delay_ns,
                        name=f"{src.name}->{dst.name}")
        link = Link(self.sim, src, dst, rate_bps, delay_ns,
                    factory(spec), name=spec.name)
        src.attach_link(link)
        self.links.append(link)
        self.graph.add_edge(src.node_id, dst.node_id, link=link,
                            capacity_bps=rate_bps)
        return link

    def connect(self, a: Node, b: Node, rate_bps: BitsPerSec,
                delay_ns: TimeNs,
                queue_ab: Optional[QueueFactory] = None,
                queue_ba: Optional[QueueFactory] = None
                ) -> Tuple[Link, Link]:
        """Add a bidirectional cable (two independent links)."""
        fwd = self.add_link(a, b, rate_bps, delay_ns, queue_ab)
        rev = self.add_link(b, a, rate_bps, delay_ns, queue_ba)
        return fwd, rev

    def install_routes(self) -> None:
        """Compute hop-count shortest paths and fill routing tables."""
        paths = dict(nx.all_pairs_shortest_path(self.graph))
        for src_id, dsts in paths.items():
            node = self.nodes[src_id]
            for dst_id, path in dsts.items():
                if dst_id == src_id or len(path) < 2:
                    continue
                next_hop = path[1]
                node.routes[dst_id] = self.graph.edges[src_id,
                                                       next_hop]["link"]

    def path_links(self, src: Node, dst: Node) -> List[Link]:
        """The sequence of links a flow from src to dst traverses."""
        path = nx.shortest_path(self.graph, src.node_id, dst.node_id)
        return [self.graph.edges[u, v]["link"]
                for u, v in zip(path, path[1:])]


@dataclass
class Dumbbell:
    """A dumbbell topology: ``n`` senders, one bottleneck, ``n`` receivers.

    Each sender/receiver pair has its own access links whose propagation
    delays are chosen so the pair's round-trip time equals the requested
    value.  The bottleneck queue (left router -> right router) is where
    the queue disc under test is installed.
    """

    network: Network
    senders: List[Host]
    receivers: List[Host]
    left_router: Router
    right_router: Router
    bottleneck: Link
    rtts_ns: List[int] = field(default_factory=list)

    @property
    def sim(self) -> Simulator:
        return self.network.sim


def host_jitter_ns(bottleneck_rate_bps: BitsPerSec) -> TimeNs:
    """Default send-side jitter: one MTU's service time at the
    bottleneck, the scale needed to break drop-tail phase effects."""
    from .packet import MTU_BYTES
    return int(MTU_BYTES * 8 * 1e9 / bottleneck_rate_bps)


def build_dumbbell(rtts_ns: Sequence[TimeNs],
                   bottleneck_rate_bps: BitsPerSec,
                   bottleneck_queue: QueueFactory,
                   access_rate_factor: float = 10.0,
                   bottleneck_delay_ns: int = MILLISECOND // 2,
                   sim: Optional[Simulator] = None,
                   tx_jitter_ns: Optional[int] = None,
                   jitter_seed: int = 0) -> Dumbbell:
    """Build a dumbbell with one sender/receiver pair per RTT entry.

    The RTT budget is split as: bottleneck propagation (fixed,
    default 0.5 ms each way), receiver access (0.5 ms each way), and the
    remainder on the sender access link.  Serialization delays add a
    little on top; the requested value is treated as the base
    (propagation-only) RTT, matching how ns-3 dumbbell scripts are
    usually parameterised.
    """
    network = Network(sim)
    left = network.add_router("L")
    right = network.add_router("R")
    access_rate = bottleneck_rate_bps * access_rate_factor
    receiver_delay_ns = MILLISECOND // 2
    if tx_jitter_ns is None:
        tx_jitter_ns = host_jitter_ns(bottleneck_rate_bps)

    bottleneck, _ = network.connect(left, right, bottleneck_rate_bps,
                                    bottleneck_delay_ns,
                                    queue_ab=bottleneck_queue)

    reverse_bottleneck = network.graph.edges[right.node_id,
                                             left.node_id]["link"]
    senders: List[Host] = []
    receivers: List[Host] = []
    for index, rtt_ns in enumerate(rtts_ns):
        one_way = rtt_ns // 2
        sender_delay_ns = one_way - bottleneck_delay_ns - receiver_delay_ns
        if sender_delay_ns < 0:
            raise ValueError(
                f"RTT {rtt_ns}ns too small for the fixed delay budget")
        sender = network.add_host(f"s{index}")
        receiver = network.add_host(f"d{index}")
        if tx_jitter_ns > 0:
            # Seeded per host and per replication so independent runs
            # of the same scenario see different (but reproducible)
            # timing noise.
            sender.set_tx_jitter(tx_jitter_ns,
                                 seed=sender.node_id
                                 + 10_007 * jitter_seed)
            receiver.set_tx_jitter(tx_jitter_ns,
                                   seed=receiver.node_id
                                   + 10_007 * jitter_seed)
        to_left, from_left = network.connect(sender, left, access_rate,
                                             sender_delay_ns)
        to_receiver, from_receiver = network.connect(
            right, receiver, access_rate, receiver_delay_ns)
        senders.append(sender)
        receivers.append(receiver)
        # Install routes directly (O(n) instead of all-pairs shortest
        # paths, which matters for the 1000-flow scenarios).
        sender.routes[receiver.node_id] = to_left
        left.routes[receiver.node_id] = bottleneck
        right.routes[receiver.node_id] = to_receiver
        receiver.routes[sender.node_id] = from_receiver
        right.routes[sender.node_id] = reverse_bottleneck
        left.routes[sender.node_id] = from_left
    return Dumbbell(network=network, senders=senders, receivers=receivers,
                    left_router=left, right_router=right,
                    bottleneck=bottleneck, rtts_ns=list(rtts_ns))


@dataclass
class ParkingLot:
    """The multi-bottleneck 'Parking Lot' topology of Figure 11.

    ``routers[i] -> routers[i+1]`` are the bottleneck links.  *Long*
    flows enter at the first router and exit after the last; *cross*
    group ``i`` enters at ``routers[i]`` and exits at ``routers[i+1]``.
    """

    network: Network
    routers: List[Router]
    bottlenecks: List[Link]
    long_senders: List[Host]
    long_receivers: List[Host]
    cross_senders: List[List[Host]]
    cross_receivers: List[List[Host]]

    @property
    def sim(self) -> Simulator:
        return self.network.sim


def build_parking_lot(num_long_flows: int, cross_flow_counts: Sequence[int],
                      bottleneck_rate_bps: float,
                      bottleneck_queue: QueueFactory,
                      access_delay_ns: int = MILLISECOND,
                      bottleneck_delay_ns: int = 2 * MILLISECOND,
                      access_rate_factor: float = 10.0,
                      sim: Optional[Simulator] = None,
                      tx_jitter_ns: Optional[int] = None,
                      jitter_seed: int = 0) -> ParkingLot:
    """Build a parking lot with one bottleneck per cross-traffic group."""
    if not cross_flow_counts:
        raise ValueError("need at least one bottleneck segment")
    network = Network(sim)
    num_segments = len(cross_flow_counts)
    routers = [network.add_router(f"R{i}") for i in range(num_segments + 1)]
    access_rate = bottleneck_rate_bps * access_rate_factor
    if tx_jitter_ns is None:
        tx_jitter_ns = host_jitter_ns(bottleneck_rate_bps)

    def add_jittered_host(name: str) -> Host:
        host = network.add_host(name)
        if tx_jitter_ns > 0:
            host.set_tx_jitter(tx_jitter_ns,
                               seed=host.node_id
                               + 10_007 * jitter_seed)
        return host

    bottlenecks: List[Link] = []
    for i in range(num_segments):
        fwd, _ = network.connect(routers[i], routers[i + 1],
                                 bottleneck_rate_bps, bottleneck_delay_ns,
                                 queue_ab=bottleneck_queue)
        bottlenecks.append(fwd)

    long_senders: List[Host] = []
    long_receivers: List[Host] = []
    for j in range(num_long_flows):
        sender = add_jittered_host(f"ls{j}")
        receiver = add_jittered_host(f"lr{j}")
        network.connect(sender, routers[0], access_rate, access_delay_ns)
        network.connect(routers[-1], receiver, access_rate, access_delay_ns)
        long_senders.append(sender)
        long_receivers.append(receiver)

    cross_senders: List[List[Host]] = []
    cross_receivers: List[List[Host]] = []
    for i, count in enumerate(cross_flow_counts):
        group_s: List[Host] = []
        group_r: List[Host] = []
        for j in range(count):
            sender = add_jittered_host(f"cs{i}_{j}")
            receiver = add_jittered_host(f"cr{i}_{j}")
            network.connect(sender, routers[i], access_rate,
                            access_delay_ns)
            network.connect(routers[i + 1], receiver, access_rate,
                            access_delay_ns)
            group_s.append(sender)
            group_r.append(receiver)
        cross_senders.append(group_s)
        cross_receivers.append(group_r)

    network.install_routes()
    return ParkingLot(network=network, routers=routers,
                      bottlenecks=bottlenecks, long_senders=long_senders,
                      long_receivers=long_receivers,
                      cross_senders=cross_senders,
                      cross_receivers=cross_receivers)
