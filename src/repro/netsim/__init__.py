"""A from-scratch discrete-event, packet-level network simulator.

This subpackage is the reproduction's stand-in for ns-3.35: an
integer-nanosecond event engine, store-and-forward links with
serialization and propagation delay, hosts/routers with static routing,
pluggable per-port queue disciplines (drop-tail FIFO, FQ-CoDel, and —
from :mod:`repro.core` — Cebinae), and measurement utilities.
"""

from .afq import AfqQueue, afq_factory
from .engine import (MICROSECOND, MILLISECOND, NANOSECOND, SECOND, Event,
                     SimulationError, Simulator, seconds, to_seconds)
from .fluid import (FluidPhaseReport, HybridPolicy, advance_fluid,
                    equilibrium_schedule, rate_divergence)
from .fq_codel import (CODEL_INTERVAL_NS, CODEL_TARGET_NS, CoDelState,
                       FqCoDelQueue, fq_codel_factory)
from .link import Link
from .node import Host, Node, Router
from .packet import (ACK_BYTES, HEADER_BYTES, MSS_BYTES, MTU_BYTES,
                     EcnCodepoint, FlowId, Packet, PacketType,
                     make_rotate_packet)
from .queues import DropTailQueue, QueueDisc
from .topology import (Dumbbell, Network, ParkingLot, PortSpec,
                       QueueFactory, build_dumbbell, build_parking_lot,
                       drop_tail_factory)
from .tracing import FlowMonitor, FlowRecord, LinkMonitor, TimeSeries

__all__ = [
    "NANOSECOND", "MICROSECOND", "MILLISECOND", "SECOND",
    "seconds", "to_seconds", "Event", "Simulator", "SimulationError",
    "Packet", "PacketType", "FlowId", "EcnCodepoint",
    "MTU_BYTES", "MSS_BYTES", "HEADER_BYTES", "ACK_BYTES",
    "make_rotate_packet",
    "QueueDisc", "DropTailQueue", "AfqQueue", "afq_factory",
    "CoDelState", "FqCoDelQueue", "fq_codel_factory",
    "CODEL_TARGET_NS", "CODEL_INTERVAL_NS",
    "Link", "Node", "Host", "Router",
    "Network", "PortSpec", "QueueFactory", "drop_tail_factory",
    "Dumbbell", "build_dumbbell", "ParkingLot", "build_parking_lot",
    "FlowMonitor", "FlowRecord", "LinkMonitor", "TimeSeries",
    "FluidPhaseReport", "HybridPolicy", "advance_fluid",
    "equilibrium_schedule", "rate_divergence",
]
