"""Runtime invariant checkers backing the static rules.

simlint (:mod:`repro.analysis.linter`) catches contract violations it
can see syntactically; these helpers enforce the same contracts at
runtime where static analysis cannot reach (values crossing dynamic
call boundaries, ``Optional`` state guarded by protocol rather than
control flow).

They are dependency-free on purpose: the simulation engine imports
:func:`require_int_ns` on its hot path, and the TCP stack uses
:func:`unwrap` to discharge ``Optional`` state whose presence is
guaranteed by the CCA state machines.

Validation-only checkers are *debug-gated*: the engine consults the
module-level :data:`DEBUG` flag before calling :func:`require_int_ns`
per event, so release runs pay zero per-event validation cost.  The
flag defaults on under pytest (the whole suite runs with the contract
armed) and off otherwise; ``REPRO_DEBUG=1`` / ``REPRO_DEBUG=0`` in the
environment overrides both.  Gating never changes simulation results —
the checkers either raise or do nothing — which
``tests/test_scheduler_equivalence.py`` pins down by replaying a
scenario under both settings.

:func:`unwrap` and :func:`require` are *not* gated: their return value
and raise are part of normal control flow, not optional validation.
"""

from __future__ import annotations

import os
import sys
from typing import Optional, TypeVar

T = TypeVar("T")


def _default_debug() -> bool:
    """Initial value of :data:`DEBUG`.

    ``REPRO_DEBUG`` wins when set; otherwise debug is armed exactly
    when pytest is driving the process (imported before us), so tests
    always exercise the validated path and production sweeps never pay
    for it.
    """
    env = os.environ.get("REPRO_DEBUG")
    if env is not None:
        return env.strip().lower() not in ("", "0", "false", "no", "off")
    return "pytest" in sys.modules or "PYTEST_CURRENT_TEST" in os.environ


#: Whether per-event validation (``require_int_ns`` at the engine's
#: schedule sites) is armed.  Reassign (or monkeypatch) at runtime to
#: toggle; read dynamically by the engine on every schedule call.
DEBUG: bool = _default_debug()


def set_debug(enabled: bool) -> bool:
    """Set :data:`DEBUG`, returning the previous value."""
    global DEBUG
    previous = DEBUG
    DEBUG = enabled
    return previous


class InvariantViolation(AssertionError):
    """A runtime contract of the simulator was broken.

    Subclasses :class:`AssertionError` so existing test harnesses that
    treat assertion failures as bugs (not environmental errors) keep
    doing the right thing.
    """


def require(condition: bool, message: str) -> None:
    """Assert an invariant with a message; never stripped by ``-O``."""
    if not condition:
        raise InvariantViolation(message)


def unwrap(value: Optional[T], message: str = "unexpected None") -> T:
    """Return ``value``, asserting it is not None.

    The runtime companion to a ``# guarded by state machine`` comment:
    it both narrows the type for mypy --strict and turns a protocol
    violation into a diagnosable error instead of an AttributeError
    three frames later.
    """
    if value is None:
        raise InvariantViolation(message)
    return value


def require_probability(value: object, what: str) -> float:
    """Enforce that ``value`` is a probability in ``[0, 1]``.

    The fault-injection layer draws per-packet and per-round outcomes
    against configured probabilities; a rate outside the unit interval
    silently biases every draw, so specs validate their fields through
    this checker at construction time (not per event — never gated).
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InvariantViolation(
            f"{what} must be a probability in [0, 1], got {value!r} "
            f"({type(value).__name__})")
    if not 0.0 <= value <= 1.0:
        raise InvariantViolation(
            f"{what} must be a probability in [0, 1], got {value!r}")
    return float(value)


def require_int_ns(value: object, what: str) -> int:
    """Enforce the integer-nanosecond clock contract on ``value``.

    Rejects floats (drifting rotation boundaries — see the U201 rule)
    and bools (a ``True`` delay is almost certainly a bug, not a 1 ns
    wait).  Returns the value typed as ``int``.
    """
    if not isinstance(value, int) or isinstance(value, bool):
        raise InvariantViolation(
            f"{what} must be an integer number of nanoseconds, "
            f"got {value!r} ({type(value).__name__}); convert with "
            f"int()/round() or repro.netsim.engine.seconds()")
    return value
