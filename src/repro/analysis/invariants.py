"""Runtime invariant checkers backing the static rules.

simlint (:mod:`repro.analysis.linter`) catches contract violations it
can see syntactically; these helpers enforce the same contracts at
runtime where static analysis cannot reach (values crossing dynamic
call boundaries, ``Optional`` state guarded by protocol rather than
control flow).

They are dependency-free on purpose: the simulation engine imports
:func:`require_int_ns` on its hot path, and the TCP stack uses
:func:`unwrap` to discharge ``Optional`` state whose presence is
guaranteed by the CCA state machines.
"""

from __future__ import annotations

from typing import Optional, TypeVar

T = TypeVar("T")


class InvariantViolation(AssertionError):
    """A runtime contract of the simulator was broken.

    Subclasses :class:`AssertionError` so existing test harnesses that
    treat assertion failures as bugs (not environmental errors) keep
    doing the right thing.
    """


def require(condition: bool, message: str) -> None:
    """Assert an invariant with a message; never stripped by ``-O``."""
    if not condition:
        raise InvariantViolation(message)


def unwrap(value: Optional[T], message: str = "unexpected None") -> T:
    """Return ``value``, asserting it is not None.

    The runtime companion to a ``# guarded by state machine`` comment:
    it both narrows the type for mypy --strict and turns a protocol
    violation into a diagnosable error instead of an AttributeError
    three frames later.
    """
    if value is None:
        raise InvariantViolation(message)
    return value


def require_int_ns(value: object, what: str) -> int:
    """Enforce the integer-nanosecond clock contract on ``value``.

    Rejects floats (drifting rotation boundaries — see the U201 rule)
    and bools (a ``True`` delay is almost certainly a bug, not a 1 ns
    wait).  Returns the value typed as ``int``.
    """
    if not isinstance(value, int) or isinstance(value, bool):
        raise InvariantViolation(
            f"{what} must be an integer number of nanoseconds, "
            f"got {value!r} ({type(value).__name__}); convert with "
            f"int()/round() or repro.netsim.engine.seconds()")
    return value
