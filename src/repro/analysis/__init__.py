"""Static analysis & runtime invariants for the reproduction.

* :mod:`repro.analysis.linter` — *simlint*, the AST-based determinism
  and unit-safety analyzer (run as ``tools/simlint.py`` or
  ``cebinae-repro lint``).
* :mod:`repro.analysis.rules` — the rule catalog (IDs, hints).
* :mod:`repro.analysis.invariants` — runtime checkers for the same
  contracts (integer-ns clock, guarded Optional state).
"""

from .invariants import (InvariantViolation, require, require_int_ns,
                         set_debug, unwrap)
from .linter import Finding, lint_paths, lint_source
from .rules import RULES, Rule

__all__ = [
    "Finding", "lint_source", "lint_paths",
    "Rule", "RULES",
    "InvariantViolation", "require", "require_int_ns", "set_debug",
    "unwrap",
]
