"""Static analysis & runtime invariants for the reproduction.

* :mod:`repro.analysis.linter` — *simlint*, the multi-pass AST-based
  determinism and unit-safety analyzer (run as ``tools/simlint.py``
  or ``cebinae-repro lint``).
* :mod:`repro.analysis.rules` — the rule catalog (IDs, hints).
* :mod:`repro.analysis.findings` — findings & suppression machinery
  shared by every pass.
* :mod:`repro.analysis.unitcheck` — the flow-sensitive dimensional
  unit pass (U4xx).
* :mod:`repro.analysis.taint` — the project-wide determinism-taint
  pass (D2xx).
* :mod:`repro.analysis.baseline` / :mod:`repro.analysis.sarif` —
  fingerprinted baselines and SARIF 2.1.0 export.
* :mod:`repro.analysis.invariants` — runtime checkers for the same
  contracts (integer-ns clock, guarded Optional state).
"""

from .findings import Finding
from .invariants import (InvariantViolation, require, require_int_ns,
                         set_debug, unwrap)
from .linter import LintRun, lint_paths, lint_source, run_lint
from .rules import RULES, Rule

__all__ = [
    "Finding", "lint_source", "lint_paths", "run_lint", "LintRun",
    "Rule", "RULES",
    "InvariantViolation", "require", "require_int_ns", "set_debug",
    "unwrap",
]
