"""Fingerprinted finding baselines for simlint.

A baseline lets a tree adopt new analyzer passes without a flag-day
cleanup: known findings are recorded once (each with a mandatory
reason), CI fails only on *new* findings, and entries whose findings
disappear are reported as stale (S904) so the baseline only ever
shrinks deliberately.

Fingerprints must survive unrelated edits, so they hash what a finding
*is*, not where it currently sits:

    sha256(rule id, normalized relative path,
           stripped text of the flagged source line,
           occurrence index among identical tuples)[:16]

Line numbers are deliberately excluded — inserting a docstring above a
flagged call must not invalidate the baseline — while the occurrence
index keeps two identical offending lines in one file distinct.  The
same fingerprint is exported as the SARIF ``partialFingerprints``
value, so GitHub code scanning and the local baseline agree on
finding identity.

The file format (``.simlint-baseline.json``) is deterministic: entries
sorted by fingerprint, stable key order, trailing newline — the same
tree always serializes to the same bytes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .findings import Finding

#: Format version written into the baseline file.
BASELINE_VERSION = 1

#: The partialFingerprints key shared with the SARIF exporter.
FINGERPRINT_KEY = "simlintFingerprint/v1"


class BaselineError(ValueError):
    """A baseline file that cannot be parsed or has a bad version."""


@dataclass(frozen=True)
class BaselineEntry:
    """One baselined finding: identity plus the triage reason."""

    fingerprint: str
    rule_id: str
    path: str
    reason: str


def normalize_path(path: str) -> str:
    """Canonical posix-relative form of a finding path.

    Fingerprints must agree between local runs and CI, so absolute
    prefixes below the current working directory are stripped and
    separators normalized.
    """
    p = Path(path)
    if p.is_absolute():
        try:
            p = p.relative_to(Path.cwd())
        except ValueError:
            pass
    text = p.as_posix()
    return text[2:] if text.startswith("./") else text


def fingerprint_findings(
        findings: Sequence[Finding],
        sources: Dict[str, str]) -> List[Tuple[Finding, str]]:
    """Pair each finding with its stable fingerprint.

    ``sources`` maps finding paths (as emitted) to file text; a path
    with no source (should not happen in practice) hashes an empty
    line, which still yields a usable identity.
    """
    lines_by_path: Dict[str, List[str]] = {}
    occurrence: Dict[Tuple[str, str, str], int] = {}
    result: List[Tuple[Finding, str]] = []
    for finding in findings:
        if finding.path not in lines_by_path:
            lines_by_path[finding.path] = \
                sources.get(finding.path, "").splitlines()
        lines = lines_by_path[finding.path]
        text = lines[finding.line - 1].strip() \
            if 1 <= finding.line <= len(lines) else ""
        key = (finding.rule_id, normalize_path(finding.path), text)
        index = occurrence.get(key, 0)
        occurrence[key] = index + 1
        digest = hashlib.sha256(
            "\x1f".join((key[0], key[1], key[2],
                         str(index))).encode("utf-8")).hexdigest()
        result.append((finding, digest[:16]))
    return result


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Read and validate a baseline file."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(
            f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(payload, dict) or \
            payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"{path}: expected a simlint baseline with version "
            f"{BASELINE_VERSION}")
    entries: List[BaselineEntry] = []
    for raw in payload.get("entries", ()):
        entries.append(BaselineEntry(
            fingerprint=str(raw.get("fingerprint", "")),
            rule_id=str(raw.get("rule", "")),
            path=str(raw.get("path", "")),
            reason=str(raw.get("reason", ""))))
    return entries


def render_baseline(entries: Sequence[BaselineEntry]) -> str:
    """Deterministic serialization of a baseline (same tree, same bytes)."""
    payload = {
        "version": BASELINE_VERSION,
        "tool": "simlint",
        "entries": [
            {
                "fingerprint": entry.fingerprint,
                "rule": entry.rule_id,
                "path": entry.path,
                "reason": entry.reason,
            }
            for entry in sorted(entries,
                                key=lambda e: (e.path, e.rule_id,
                                               e.fingerprint))
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def apply_baseline(
        fingerprinted: Sequence[Tuple[Finding, str]],
        entries: Sequence[BaselineEntry],
        baseline_path: Optional[Path] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (new, stale-baseline S904 findings).

    Findings whose fingerprint appears in the baseline are dropped;
    baseline entries that matched nothing become S904 findings
    anchored at the baseline file itself, so a fixed hazard forces a
    deliberate ``--update-baseline`` rather than rotting silently.
    """
    known = {entry.fingerprint for entry in entries}
    matched: set = set()
    kept: List[Finding] = []
    for finding, fingerprint in fingerprinted:
        if fingerprint in known:
            matched.add(fingerprint)
        else:
            kept.append(finding)
    stale: List[Finding] = []
    anchor = str(baseline_path) if baseline_path else ".simlint-baseline.json"
    for entry in sorted(entries, key=lambda e: (e.path, e.rule_id,
                                                e.fingerprint)):
        if entry.fingerprint not in matched:
            stale.append(Finding(
                path=anchor, line=1, col=1, rule_id="S904",
                message=(
                    f"baseline entry {entry.fingerprint} "
                    f"({entry.rule_id} in {entry.path}) matches no "
                    f"current finding")))
    return kept, stale


def updated_entries(
        fingerprinted: Sequence[Tuple[Finding, str]],
        previous: Sequence[BaselineEntry],
) -> List[BaselineEntry]:
    """Baseline entries for the current findings.

    Reasons survive for fingerprints already present; new entries get
    a placeholder reason that the S9xx philosophy says a human should
    replace before committing.
    """
    reasons = {entry.fingerprint: entry.reason for entry in previous}
    seen: set = set()
    entries: List[BaselineEntry] = []
    for finding, fingerprint in fingerprinted:
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        entries.append(BaselineEntry(
            fingerprint=fingerprint,
            rule_id=finding.rule_id,
            path=normalize_path(finding.path),
            reason=reasons.get(
                fingerprint, "TODO: justify or fix this finding")))
    return entries
