"""The simlint rule catalog.

Every rule the analyzer can emit is declared here with a stable ID, a
one-line summary, and a fix-it hint.  IDs are grouped by series:

* **D1xx — determinism (local).**  Anything that can make a simulation
  differ between a run and its deterministic replay in another process
  (PYTHONHASHSEED-dependent hashing, unseeded randomness, wall-clock
  reads, set-iteration order leaking into ordered state), visible
  within one module.
* **D2xx — determinism taint (cross-module).**  The project-wide taint
  pass (:mod:`repro.analysis.taint`): a nondeterminism source whose
  value can reach a determinism sink (``Simulator.schedule*``,
  ``ScenarioResult``, cache fingerprints, trace emission) through the
  call graph, reported at both ends of the chain.
* **U2xx — unit safety (token-level).**  Violations of the
  integer-nanosecond clock contract visible in a single expression
  (floats flowing into ``schedule``/``*_ns`` positions, unit suffix
  mismatches between names).
* **U4xx — unit inference (flow-sensitive).**  The dimensional-unit
  pass (:mod:`repro.analysis.unitcheck`): ns↔s, bytes↔bits and
  float-contamination hazards that only appear once dimensions are
  propagated through assignments, arithmetic and call sites.
* **H3xx — hygiene.**  Python pitfalls that corrupt engine state
  (mutable default arguments, locals shadowing module-level names).
* **S9xx — suppression & baseline hygiene.**  Problems with the
  ``# simlint: allow[...]`` comments and the ``.simlint-baseline.json``
  entries themselves.
* **E9xx — analyzer errors** (unparseable files).

The catalog is data, not behaviour: the matching logic lives in
:mod:`repro.analysis.linter`, keyed by these IDs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Rule:
    """One analyzer rule: a stable ID plus its documentation."""

    rule_id: str
    name: str
    summary: str
    hint: str

    @property
    def series(self) -> str:
        """The rule family letter (D, U, H, S, E)."""
        return self.rule_id[0]


_RULES = (
    Rule(
        "D101", "builtin-hash",
        "builtin hash() is PYTHONHASHSEED-randomised per process",
        "use FlowId.stable_hash() (CRC32 of the canonical repr) or "
        "another keyed, process-independent digest",
    ),
    Rule(
        "D102", "unseeded-rng",
        "unseeded or global random number generator",
        "construct random.Random(seed) / numpy.random.default_rng(seed) "
        "with an explicit seed and thread it through the call chain",
    ),
    Rule(
        "D103", "wall-clock",
        "host-clock read inside simulation code",
        "simulation logic must use Simulator.now_ns; genuine host-side "
        "timing (CLI progress, profiling) should use time.monotonic() "
        "and carry '# simlint: allow[D103] <reason>'",
    ),
    Rule(
        "D104", "set-order",
        "iteration over a set in an order-sensitive position",
        "sort at the boundary (sorted(s) or sorted(s, key=repr)) before "
        "the order can reach scheduling, membership updates, or reports",
    ),
    Rule(
        "D201", "taint-sink",
        "call chain from a determinism sink reaches a nondeterminism "
        "source in another function",
        "break the chain: seed/remove the source, or sort/stabilise "
        "before the value can reach scheduling, results, fingerprints "
        "or traces; suppress the source's D1xx finding if the path is "
        "provably host-side only",
    ),
    Rule(
        "D202", "taint-source",
        "nondeterminism source feeds a determinism sink in another "
        "function",
        "this is the source end of a D201 chain: the flagged call "
        "does not just offend locally — its value can reach a "
        "schedule/result/fingerprint/trace sink; fix it first",
    ),
    Rule(
        "U201", "float-into-ns",
        "float-valued expression flows into an integer-nanosecond slot",
        "keep the clock integral: wrap the arithmetic in int(...) / "
        "round(...) / math.ceil(...) before it reaches a *_ns name or a "
        "schedule()/schedule_at() time argument",
    ),
    Rule(
        "U202", "unit-mismatch",
        "value with one unit suffix assigned/passed to a name with "
        "another",
        "convert explicitly (e.g. seconds(x_s) -> ns, x_ns / SECOND -> "
        "s) instead of copying across unit suffixes",
    ),
    Rule(
        "U401", "dim-arith",
        "arithmetic or comparison between incompatible dimensions "
        "(e.g. nanoseconds + seconds)",
        "convert one side explicitly (units.ns_from_seconds, "
        "x_ns / SECOND, ...) before combining; the inferred dimensions "
        "are in the message",
    ),
    Rule(
        "U402", "dim-flow",
        "value of one inferred dimension flows into a target declared "
        "with another (assignment, argument, or return)",
        "insert the conversion at the boundary (repro.core.units "
        "helpers) or fix the declaration; flow-sensitive: the value "
        "may have picked up its dimension several statements earlier",
    ),
    Rule(
        "U403", "bytes-bits",
        "bytes and bits mixed without the ×8 conversion",
        "convert with units.bits_from_bytes / bytes_from_bits (or an "
        "explicit * 8 // 8) — rate boundaries (bytes vs rate_bps) are "
        "the classic site",
    ),
    Rule(
        "U404", "float-time-flow",
        "float-contaminated value reaches an integer-nanosecond slot "
        "through one or more assignments",
        "launder with int()/round() at the point of contamination "
        "(named in the message), not at the final use; U201 catches "
        "the single-expression case, this is its dataflow closure",
    ),
    Rule(
        "H301", "mutable-default",
        "mutable default argument is shared across calls",
        "default to None and create the list/dict/set inside the "
        "function body",
    ),
    Rule(
        "H302", "shadowed-name",
        "local assignment shadows a module-level name or core builtin",
        "rename the local; shadowing engine helpers (seconds, Event, "
        "...) or builtins silently changes later lookups in the same "
        "scope",
    ),
    Rule(
        "S901", "bare-suppression",
        "suppression comment has no reason",
        "write '# simlint: allow[ID] <why this site is safe>' — the "
        "reason is part of the determinism audit trail",
    ),
    Rule(
        "S902", "unused-suppression",
        "suppression comment matches no finding",
        "delete the stale allow[...] comment (or fix its rule ID) so "
        "suppressions stay in sync with the code",
    ),
    Rule(
        "S903", "unknown-suppression-id",
        "suppression comment names a rule ID not in the catalog",
        "fix the typo in allow[...]; an unknown ID suppresses nothing "
        "and silently rots",
    ),
    Rule(
        "S904", "stale-baseline",
        "baseline entry matches no current finding",
        "run with --update-baseline to prune entries whose findings "
        "have been fixed — the baseline must only ever shrink "
        "silently, never grow",
    ),
    Rule(
        "E901", "syntax-error",
        "file could not be parsed",
        "fix the syntax error; unparseable files are not analyzed",
    ),
)

#: The rule catalog, keyed by ID.
RULES: Dict[str, Rule] = {rule.rule_id: rule for rule in _RULES}

#: IDs of rules that scan source; S9xx/E9xx are emitted by the driver.
CHECKER_RULE_IDS = tuple(
    rule_id for rule_id in RULES if rule_id[0] in "DUH")
