"""Findings and suppression machinery shared by every simlint pass.

Split out of :mod:`repro.analysis.linter` when simlint grew from a
single-file checker into a multi-pass framework: the module checker
(D1xx/U2xx/H3xx), the flow-sensitive unit pass (U4xx) and the
project-wide taint pass (D2xx) all emit :class:`Finding` objects, and
the driver applies ``# simlint: allow[ID] reason`` suppressions *once*
across the merged stream so an allow-comment for any family counts as
used (S902) no matter which pass produced the finding.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional

from .rules import RULES

_SUPPRESSION_RE = re.compile(
    r"#\s*simlint:\s*allow\[([A-Za-z0-9,\s]+)\]\s*(.*)$")


@dataclass
class Finding:
    """One analyzer finding, renderable as ``file:line rule message``."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    end_line: Optional[int] = None
    #: Lines of related code (e.g. the other end of a taint chain),
    #: rendered as SARIF relatedLocations: (path, line, note) triples.
    related: Optional[tuple] = None

    @property
    def hint(self) -> str:
        return RULES[self.rule_id].hint

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col} " \
               f"{self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "name": RULES[self.rule_id].name,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class Suppression:
    """One ``# simlint: allow[IDs] reason`` comment."""

    line: int
    rule_ids: FrozenSet[str]
    reason: str
    used: bool = False


def collect_suppressions(source: str) -> List[Suppression]:
    """Parse every allow-comment out of one module's source text."""
    suppressions: List[Suppression] = []
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        ids = frozenset(
            part.strip() for part in match.group(1).split(",")
            if part.strip())
        suppressions.append(Suppression(
            line=token.start[0], rule_ids=ids,
            reason=match.group(2).strip()))
    return suppressions


def apply_suppressions(findings: List[Finding],
                       suppressions: List[Suppression]) -> List[Finding]:
    """Drop suppressed findings, marking the suppressions used.

    Safe to call repeatedly with findings from successive passes; the
    ``used`` flags accumulate so the S9xx audit (:func:`audit`) runs
    once at the end over the complete picture.
    """
    by_line: Dict[int, List[Suppression]] = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.line, []).append(suppression)
    kept: List[Finding] = []
    for finding in findings:
        last = finding.end_line or finding.line
        suppressed = False
        for line in range(finding.line, last + 1):
            for suppression in by_line.get(line, ()):
                if finding.rule_id in suppression.rule_ids:
                    suppression.used = True
                    suppressed = True
        if not suppressed:
            kept.append(finding)
    return kept


def audit(suppressions: List[Suppression], path: str) -> List[Finding]:
    """The S9xx suppression-hygiene pass over one file's comments.

    * S901 — an allow-comment with no reason.  Reasons are mandatory
      for every family (D1xx/D2xx/U2xx/U4xx/H3xx): they are the
      determinism audit trail.
    * S902 — an allow-comment that matched no finding from any pass.
    * S903 — an allow-comment naming a rule ID that is not in the
      catalog (usually a typo, which would otherwise silently turn
      the comment into a stale S902).
    """
    audit_findings: List[Finding] = []
    for suppression in suppressions:
        if not suppression.reason:
            audit_findings.append(Finding(
                path=path, line=suppression.line, col=1,
                rule_id="S901",
                message="suppression without a reason: "
                        "'# simlint: allow[ID] <reason>'"))
        unknown = sorted(
            rule_id for rule_id in suppression.rule_ids
            if rule_id not in RULES)
        if unknown:
            audit_findings.append(Finding(
                path=path, line=suppression.line, col=1,
                rule_id="S903",
                message=f"allow[{','.join(unknown)}] names no known "
                        f"rule (see --list-rules)"))
        if not suppression.used:
            ids = ",".join(sorted(suppression.rule_ids))
            audit_findings.append(Finding(
                path=path, line=suppression.line, col=1,
                rule_id="S902",
                message=f"allow[{ids}] matches no finding on "
                        f"this statement"))
    return audit_findings
