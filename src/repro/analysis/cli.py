"""The ``simlint`` command-line driver.

Exposed two ways: ``python tools/simlint.py <paths>`` and
``cebinae-repro lint <paths>``.  Exit codes: 0 clean, 1 findings,
2 usage error — so CI can gate on it directly.

Reporting layers on top of the analyzer pipeline
(:func:`repro.analysis.linter.run_lint`):

* ``--json`` — machine-readable finding list.
* ``--sarif FILE`` — SARIF 2.1.0 (``-`` for stdout), for code-scanning
  upload; byte-deterministic for identical findings.
* ``--baseline FILE`` — drop findings whose fingerprint is recorded in
  the baseline; stale entries surface as S904 so the baseline cannot
  rot.
* ``--update-baseline`` — rewrite the baseline from the current
  findings (preserving reasons for surviving fingerprints) and exit 0.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Set, Tuple

from .baseline import (BaselineEntry, BaselineError, apply_baseline,
                       fingerprint_findings, load_baseline,
                       render_baseline, updated_entries)
from .findings import Finding
from .linter import run_lint
from .rules import RULES
from .sarif import render_sarif


def _render_text(findings: List[Finding], checked_paths: List[str],
                 show_hints: bool) -> str:
    lines = []
    for finding in findings:
        lines.append(finding.render())
        if show_hints:
            lines.append(f"    hint: {finding.hint}")
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"simlint: {len(findings)} {noun} in "
                 f"{', '.join(checked_paths)}")
    return "\n".join(lines)


def _render_rules() -> str:
    lines = ["simlint rule catalog:"]
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(f"  {rule_id} {rule.name:<20} {rule.summary}")
        lines.append(f"       fix: {rule.hint}")
    lines.append("suppress inline with: # simlint: allow[ID] <reason>")
    lines.append("baseline known findings with: --baseline FILE "
                 "(create/refresh via --update-baseline)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="Determinism & unit-safety static analysis for the "
                    "Cebinae reproduction (rules: D1xx/D2xx "
                    "determinism & taint, U2xx/U4xx unit safety, "
                    "H3xx hygiene, S9xx suppression hygiene).")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array (for CI)")
    parser.add_argument("--sarif", metavar="FILE",
                        help="write SARIF 2.1.0 to FILE ('-' for "
                             "stdout)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="suppress findings fingerprinted in this "
                             "baseline file; stale entries are "
                             "reported as S904")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline FILE from the current "
                             "findings and exit 0")
    parser.add_argument("--select", metavar="IDS",
                        help="comma-separated rule IDs to run "
                             "(e.g. D101,U201); disables S9xx checks")
    parser.add_argument("--no-hints", action="store_true",
                        help="omit fix-it hints from text output")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_render_rules())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("simlint: error: no paths given", file=sys.stderr)
        return 2
    if args.update_baseline and not args.baseline:
        print("simlint: error: --update-baseline requires --baseline "
              "FILE", file=sys.stderr)
        return 2

    select: Optional[Set[str]] = None
    if args.select:
        select = {part.strip() for part in args.select.split(",")
                  if part.strip()}
        unknown = select - set(RULES)
        if unknown:
            print(f"simlint: error: unknown rule IDs "
                  f"{sorted(unknown)}", file=sys.stderr)
            return 2

    run = run_lint(args.paths, select=select)
    fingerprinted: List[Tuple[Finding, str]] = \
        fingerprint_findings(run.findings, run.sources)

    baseline_path = Path(args.baseline) if args.baseline else None
    entries: List[BaselineEntry] = []
    if baseline_path is not None and baseline_path.exists():
        try:
            entries = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"simlint: error: {exc}", file=sys.stderr)
            return 2

    if args.update_baseline:
        assert baseline_path is not None
        baseline_path.write_text(
            render_baseline(updated_entries(fingerprinted, entries)),
            encoding="utf-8")
        noun = "finding" if len(fingerprinted) == 1 else "findings"
        print(f"simlint: baseline {baseline_path} updated "
              f"({len(fingerprinted)} {noun})")
        return 0

    if baseline_path is not None:
        kept, stale = apply_baseline(fingerprinted, entries,
                                     baseline_path)
        kept_set = {id(f) for f in kept}
        fingerprinted = [(f, fp) for f, fp in fingerprinted
                         if id(f) in kept_set]
        # Stale entries are findings too (S904), but have no source
        # line to fingerprint: they join the stream unfingerprinted.
        fingerprinted.extend((f, None) for f in stale)  # type: ignore[misc]

    findings = [finding for finding, _ in fingerprinted]
    if args.sarif:
        sarif_text = render_sarif(fingerprinted)
        if args.sarif == "-":
            sys.stdout.write(sarif_text)
        else:
            Path(args.sarif).write_text(sarif_text, encoding="utf-8")
    if args.json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    elif args.sarif != "-":
        print(_render_text(findings, list(args.paths),
                           show_hints=not args.no_hints))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
