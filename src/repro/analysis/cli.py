"""The ``simlint`` command-line driver.

Exposed two ways: ``python tools/simlint.py <paths>`` and
``cebinae-repro lint <paths>``.  Exit codes: 0 clean, 1 findings,
2 usage error — so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Set

from .linter import Finding, lint_paths
from .rules import RULES


def _render_text(findings: List[Finding], checked_paths: List[str],
                 show_hints: bool) -> str:
    lines = []
    for finding in findings:
        lines.append(finding.render())
        if show_hints:
            lines.append(f"    hint: {finding.hint}")
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"simlint: {len(findings)} {noun} in "
                 f"{', '.join(checked_paths)}")
    return "\n".join(lines)


def _render_rules() -> str:
    lines = ["simlint rule catalog:"]
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(f"  {rule_id} {rule.name:<20} {rule.summary}")
        lines.append(f"       fix: {rule.hint}")
    lines.append("suppress inline with: # simlint: allow[ID] <reason>")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="Determinism & unit-safety static analysis for the "
                    "Cebinae reproduction (rules: D1xx determinism, "
                    "U2xx unit safety, H3xx hygiene).")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array (for CI)")
    parser.add_argument("--select", metavar="IDS",
                        help="comma-separated rule IDs to run "
                             "(e.g. D101,U201); disables S9xx checks")
    parser.add_argument("--no-hints", action="store_true",
                        help="omit fix-it hints from text output")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_render_rules())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("simlint: error: no paths given", file=sys.stderr)
        return 2

    select: Optional[Set[str]] = None
    if args.select:
        select = {part.strip() for part in args.select.split(",")
                  if part.strip()}
        unknown = select - set(RULES)
        if unknown:
            print(f"simlint: error: unknown rule IDs "
                  f"{sorted(unknown)}", file=sys.stderr)
            return 2

    findings = lint_paths(args.paths, select=select)
    if args.json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        print(_render_text(findings, list(args.paths),
                           show_hints=not args.no_hints))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
