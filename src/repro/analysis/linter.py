"""simlint: an AST-based determinism & unit-safety analyzer.

The simulator's reproduction claims rest on bit-identical replay: the
same scenario fingerprint must produce the same packet schedule in any
process (see DESIGN.md section 8).  PR 1 found a PYTHONHASHSEED-
dependent ``hash()`` in FQ-CoDel only because a determinism *test*
happened to execute it; this module turns that whole bug class into an
analysis-time gate.

Architecture
------------

simlint is a multi-pass framework.  This module is the driver; the
passes and their shared machinery live in sibling modules:

* :mod:`repro.analysis.rules` — the catalog (IDs, summaries, hints).
* :mod:`repro.analysis.findings` — :class:`Finding`, suppression
  parsing (``# simlint: allow[ID] reason``) and the S9xx audit.
* :mod:`repro.analysis.astutil` — name/alias resolution and unit
  classification shared by all passes.
* :class:`_ModuleChecker` (here) — the single-module pass for the
  local rules (D1xx determinism, U2xx token-level units, H3xx
  hygiene).
* :mod:`repro.analysis.unitcheck` — the flow-sensitive dimensional
  unit pass (U4xx), fed by a project-wide signature index.
* :mod:`repro.analysis.taint` — the project-wide determinism-taint
  pass (D2xx) over the import/call graph, seeded by the *surviving*
  D1xx findings.
* :mod:`repro.analysis.baseline` / :mod:`repro.analysis.sarif` —
  fingerprinted baselines and SARIF 2.1.0 export, layered on top by
  :mod:`repro.analysis.cli`.

The pipeline per run: parse everything → collect signatures project-
wide → per-file module checker + unit pass → apply suppressions →
taint pass over the whole graph → apply suppressions again → S9xx
audit → sort.  Suppressions are applied *between* passes so an
allow-comment both silences a local finding and stops it from seeding
taint, and the audit sees ``used`` flags from every pass.

Findings are deliberately *syntactic and conservative*: each pass
only flags what it can prove from the AST (a set literal iterated in
a dict comprehension, nanoseconds added to seconds, a call chain from
``schedule()`` to ``time.time()``), so a clean run is a meaningful
invariant rather than a type-inference lottery.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, Iterator, List, Optional, Sequence, Set,
                    Tuple, Union)

from .astutil import call_name as _call_name
from .astutil import module_name_for
from .astutil import name_dim as _name_unit
from .findings import (Finding, Suppression, apply_suppressions, audit,
                       collect_suppressions)
from .taint import extract_module, run_taint
from .unitcheck import (UnitPass, collect_signatures,
                        merge_signature_indexes)

#: Wall-clock / host-clock callables (D103).  Monotonic and CPU clocks
#: are included: *any* host clock read inside simulation logic breaks
#: replay, and legitimate host-side timing must be annotated.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Module-level functions of :mod:`random` that draw from (or reseed)
#: the hidden global generator (D102).
GLOBAL_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "uniform", "triangular",
    "choice", "choices", "shuffle", "sample", "betavariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "getrandbits", "randbytes", "seed",
})

#: Legacy ``numpy.random`` module-level functions (global RandomState).
GLOBAL_NP_RANDOM_FUNCS = frozenset({
    "rand", "randn", "randint", "random", "random_sample",
    "ranf", "sample", "choice", "shuffle", "permutation", "bytes",
    "uniform", "normal", "standard_normal", "poisson", "exponential",
    "binomial", "zipf", "pareto", "seed",
})

#: RNG constructors that are deterministic only when given a seed.
SEEDED_RNG_CONSTRUCTORS = frozenset({
    "random.Random", "random.SystemRandom",
    "numpy.random.default_rng", "numpy.random.RandomState",
})

#: Builtins that consume an iterable without exposing its order (a set
#: flowing straight into one of these cannot leak ordering).
ORDER_INSENSITIVE_SINKS = frozenset({
    "sorted", "sum", "min", "max", "len", "any", "all",
    "set", "frozenset",
})

#: Callables that materialise iteration order (D104 trigger points).
ORDER_MATERIALIZING_CALLS = frozenset({
    "list", "tuple", "enumerate", "iter", "next", "join",
})

#: Set methods whose result is another set.
SET_RETURNING_METHODS = frozenset({
    "difference", "union", "intersection", "symmetric_difference",
    "copy",
})

#: Annotation heads recognised as set types.
SET_ANNOTATIONS = frozenset({
    "set", "frozenset", "Set", "FrozenSet", "AbstractSet",
    "MutableSet",
})

#: Calls that launder a float back into an int (U201 cleansers).
INT_CLEANSING_CALLS = frozenset({"int", "floor", "ceil", "trunc"})

#: Known float-producing helpers (U201 taint sources beyond literals).
FLOAT_PRODUCING_CALLS = frozenset({"float", "to_seconds", "sqrt",
                                   "log", "exp"})

#: Builtins whose shadowing corrupts later lookups in engine code.
SHADOW_SENSITIVE_BUILTINS = frozenset({
    "hash", "id", "sum", "min", "max", "len", "list", "dict", "set",
    "sorted", "tuple", "type", "next", "filter", "map", "range",
})


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    head: ast.expr = annotation
    if isinstance(head, ast.Subscript):
        head = head.value
    if isinstance(head, ast.Attribute):
        return head.attr in SET_ANNOTATIONS
    if isinstance(head, ast.Name):
        return head.id in SET_ANNOTATIONS
    if isinstance(head, ast.Constant) and isinstance(head.value, str):
        # String annotation: look at its head token only.
        text = head.value.split("[", 1)[0].strip()
        return text.rsplit(".", 1)[-1] in SET_ANNOTATIONS
    return False


class _ModuleChecker(ast.NodeVisitor):
    """The single-module pass: local D1xx/U2xx/H3xx rules."""

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.findings: List[Finding] = []
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        # Import alias maps: local name -> canonical dotted module/attr.
        self._module_aliases: Dict[str, str] = {}
        self._member_aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self._module_aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._member_aliases[local] = \
                        f"{node.module}.{alias.name}"
        # Module-level defs/classes/imports for H302.
        self._module_defs: Set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                self._module_defs.add(stmt.name)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    self._module_defs.add(
                        alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name != "*":
                        self._module_defs.add(alias.asname or alias.name)
        # Scope stacks.
        self._set_scopes: List[Set[str]] = [set()]
        self._function_depth = 0
        self._param_stack: List[Set[str]] = []
        self._class_set_attrs: List[Set[str]] = []

    # ------------------------------------------------------------------
    # plumbing

    def _flag(self, node: ast.AST, rule_id: str, message: str) -> None:
        self.findings.append(Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
            end_line=getattr(node, "end_lineno", None),
        ))

    def _resolve(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, if known."""
        if isinstance(node, ast.Name):
            if node.id in self._member_aliases:
                return self._member_aliases[node.id]
            if node.id in self._module_aliases:
                return self._module_aliases[node.id]
            return None
        if isinstance(node, ast.Attribute):
            base = self._resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def _parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    # ------------------------------------------------------------------
    # set-typedness (D104 support)

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            if isinstance(node.func, ast.Name) and \
                    name in {"set", "frozenset"}:
                return True
            if isinstance(node.func, ast.Attribute) and \
                    name in SET_RETURNING_METHODS and \
                    self._is_set_expr(node.func.value):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self._is_set_expr(node.left) or \
                self._is_set_expr(node.right)
        if isinstance(node, ast.IfExp):
            return self._is_set_expr(node.body) or \
                self._is_set_expr(node.orelse)
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_scopes)
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "self":
            return any(node.attr in attrs
                       for attrs in self._class_set_attrs)
        return False

    def _record_set_binding(self, target: ast.expr,
                            value: Optional[ast.expr],
                            annotation: Optional[ast.expr] = None) -> None:
        is_set = _annotation_is_set(annotation) or (
            value is not None and self._is_set_expr(value))
        if isinstance(target, ast.Name):
            scope = self._set_scopes[-1]
            if is_set:
                scope.add(target.id)
            else:
                scope.discard(target.id)

    # ------------------------------------------------------------------
    # scopes

    def _visit_function(self, node: Union[ast.FunctionDef,
                                          ast.AsyncFunctionDef]) -> None:
        self._check_mutable_defaults(node)
        args = node.args
        params = {a.arg for a in (
            list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs))}
        if args.vararg:
            params.add(args.vararg.arg)
        if args.kwarg:
            params.add(args.kwarg.arg)
        param_sets = {
            a.arg for a in (list(args.posonlyargs) + list(args.args)
                            + list(args.kwonlyargs))
            if _annotation_is_set(a.annotation)}
        self._param_stack.append(params)
        self._set_scopes.append(set(param_sets))
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1
        self._set_scopes.pop()
        self._param_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        attrs: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.AnnAssign) and \
                    _annotation_is_set(sub.annotation):
                if isinstance(sub.target, ast.Name):
                    attrs.add(sub.target.id)
                elif isinstance(sub.target, ast.Attribute) and \
                        isinstance(sub.target.value, ast.Name) and \
                        sub.target.value.id == "self":
                    attrs.add(sub.target.attr)
            elif isinstance(sub, ast.Assign) and isinstance(
                    sub.value, (ast.Set, ast.SetComp)):
                for target in sub.targets:
                    if isinstance(target, ast.Attribute) and \
                            isinstance(target.value, ast.Name) and \
                            target.value.id == "self":
                        attrs.add(target.attr)
        self._class_set_attrs.append(attrs)
        self.generic_visit(node)
        self._class_set_attrs.pop()

    # ------------------------------------------------------------------
    # H301: mutable defaults

    def _check_mutable_defaults(self, node: Union[
            ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        defaults: List[Optional[ast.expr]] = list(node.args.defaults)
        defaults += list(node.args.kw_defaults)
        for default in defaults:
            if default is None:
                continue
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set,
                                           ast.ListComp, ast.DictComp,
                                           ast.SetComp))
            if isinstance(default, ast.Call):
                mutable = _call_name(default.func) in {
                    "list", "dict", "set", "deque", "defaultdict",
                    "Counter", "OrderedDict", "bytearray"}
            if mutable:
                self._flag(default, "H301",
                           f"mutable default argument in "
                           f"{node.name}() is shared across calls")

    # ------------------------------------------------------------------
    # H302: shadowing

    def _check_shadowing(self, target: ast.expr) -> None:
        if self._function_depth == 0:
            return
        if not isinstance(target, ast.Name):
            return
        name = target.id
        if any(name in params for params in self._param_stack):
            return
        if name in SHADOW_SENSITIVE_BUILTINS:
            self._flag(target, "H302",
                       f"local '{name}' shadows the builtin")
        elif name in self._module_defs:
            self._flag(target, "H302",
                       f"local '{name}' shadows the module-level "
                       f"definition")

    # ------------------------------------------------------------------
    # assignments: H302, U201, U202, set tracking

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Tuple):
                for element in target.elts:
                    self._check_shadowing(element)
            else:
                self._check_shadowing(target)
            self._record_set_binding(target, node.value)
            self._check_ns_assignment(target, node.value)
            self._check_unit_mismatch_assign(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_shadowing(node.target)
        self._record_set_binding(node.target, node.value,
                                 node.annotation)
        if node.value is not None:
            self._check_ns_assignment(node.target, node.value)
            self._check_unit_mismatch_assign(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        name = self._target_name(node.target)
        if _name_unit(name) == "ns":
            if isinstance(node.op, ast.Div):
                self._flag(node, "U201",
                           f"true division drives float into "
                           f"'{name}' (use //)")
            elif self._float_tainted(node.value):
                self._flag(node, "U201",
                           f"float-valued expression folded into "
                           f"'{name}'")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_shadowing(node.target)
        if self._is_set_expr(node.iter):
            self._flag(node.iter, "D104",
                       "for-loop iterates a set; body effects occur "
                       "in hash order")
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if item.optional_vars is not None:
                self._check_shadowing(item.optional_vars)
        self.generic_visit(node)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self._check_shadowing(node.target)
        self._record_set_binding(node.target, node.value)
        self.generic_visit(node)

    @staticmethod
    def _target_name(target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
        return None

    # ------------------------------------------------------------------
    # U201: float taint into integer-nanosecond slots

    def _float_tainted(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            if isinstance(node.op, ast.FloorDiv):
                return False
            return self._float_tainted(node.left) or \
                self._float_tainted(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._float_tainted(node.operand)
        if isinstance(node, ast.IfExp):
            return self._float_tainted(node.body) or \
                self._float_tainted(node.orelse)
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            if name in INT_CLEANSING_CALLS:
                return False
            if name == "round":
                # Two-argument round() keeps the float type.
                return len(node.args) > 1
            if name in FLOAT_PRODUCING_CALLS:
                return True
            if name in {"min", "max"}:
                return any(self._float_tainted(arg)
                           for arg in node.args)
            resolved = self._resolve(node.func)
            return resolved in WALL_CLOCK_CALLS and \
                resolved is not None and \
                not resolved.endswith("_ns")
        return False

    def _check_ns_assignment(self, target: ast.expr,
                             value: ast.expr) -> None:
        name = self._target_name(target)
        if _name_unit(name) == "ns" and self._float_tainted(value):
            self._flag(value, "U201",
                       f"float-valued expression assigned to "
                       f"'{name}' (integer-nanosecond contract)")

    # ------------------------------------------------------------------
    # U202: unit suffix mismatches

    def _check_unit_mismatch_assign(self, target: ast.expr,
                                    value: ast.expr) -> None:
        if not isinstance(value, (ast.Name, ast.Attribute)):
            return
        target_unit = _name_unit(self._target_name(target))
        value_unit = _name_unit(self._target_name(value))
        if target_unit and value_unit and target_unit != value_unit:
            self._flag(value, "U202",
                       f"'{self._target_name(value)}' "
                       f"({value_unit}) copied into "
                       f"'{self._target_name(target)}' "
                       f"({target_unit}) without conversion")

    def _check_unit_mismatch_call(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            param_unit = _name_unit(keyword.arg)
            if param_unit is None:
                continue
            if not isinstance(keyword.value, (ast.Name, ast.Attribute)):
                continue
            value_name = self._target_name(keyword.value)
            value_unit = _name_unit(value_name)
            if value_unit and value_unit != param_unit:
                self._flag(keyword.value, "U202",
                           f"'{value_name}' ({value_unit}) passed to "
                           f"parameter '{keyword.arg}' "
                           f"({param_unit}) without conversion")

    # ------------------------------------------------------------------
    # calls: D101, D102, D103, D104 sinks, U201/U202 at call sites

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # D101: builtin hash().
        if isinstance(func, ast.Name) and func.id == "hash":
            self._flag(node, "D101",
                       "builtin hash() is PYTHONHASHSEED-randomised; "
                       "flow/bucket mappings derived from it differ "
                       "across processes")
        resolved = self._resolve(func)
        if resolved is not None:
            self._check_rng_call(node, resolved)
            if resolved in WALL_CLOCK_CALLS:
                self._flag(node, "D103",
                           f"{resolved}() reads the host clock; "
                           f"simulation time is Simulator.now_ns")
        # U201: float into schedule()/schedule_at() time positions.
        callee = _call_name(func)
        if callee in {"schedule", "schedule_at"} and node.args:
            if self._float_tainted(node.args[0]):
                which = "delay_ns" if callee == "schedule" else "time_ns"
                self._flag(node.args[0], "U201",
                           f"float-valued expression passed as "
                           f"{callee}() {which}")
        for keyword in node.keywords:
            if keyword.arg and _name_unit(keyword.arg) == "ns" and \
                    self._float_tainted(keyword.value):
                self._flag(keyword.value, "U201",
                           f"float-valued expression passed as "
                           f"'{keyword.arg}'")
        self._check_unit_mismatch_call(node)
        # D104: materialising the order of a set.
        self._check_order_materializing_call(node, callee)
        self.generic_visit(node)

    def _check_rng_call(self, node: ast.Call, resolved: str) -> None:
        if resolved in SEEDED_RNG_CONSTRUCTORS:
            if not node.args and not node.keywords:
                self._flag(node, "D102",
                           f"{resolved}() constructed without a seed")
            return
        module, _, attr = resolved.rpartition(".")
        if module == "random" and attr in GLOBAL_RANDOM_FUNCS:
            self._flag(node, "D102",
                       f"{resolved}() uses the hidden global RNG")
        elif module == "numpy.random" and \
                attr in GLOBAL_NP_RANDOM_FUNCS:
            self._flag(node, "D102",
                       f"{resolved}() uses the global NumPy RNG")

    def _check_order_materializing_call(
            self, node: ast.Call, callee: Optional[str]) -> None:
        if callee not in ORDER_MATERIALIZING_CALLS or not node.args:
            return
        candidate = node.args[0]
        if not self._is_set_expr(candidate):
            return
        parent = self._parent(node)
        if isinstance(parent, ast.Call) and node in parent.args and \
                _call_name(parent.func) in ORDER_INSENSITIVE_SINKS:
            return
        self._flag(candidate, "D104",
                   f"{callee}() materialises set iteration order")

    # ------------------------------------------------------------------
    # D104: comprehensions and unpacking

    def _check_comprehension(self, node: Union[
            ast.ListComp, ast.DictComp, ast.GeneratorExp]) -> None:
        for generator in node.generators:
            if not self._is_set_expr(generator.iter):
                continue
            parent = self._parent(node)
            if isinstance(parent, ast.Call) and node in parent.args \
                    and _call_name(parent.func) in \
                    ORDER_INSENSITIVE_SINKS:
                continue
            what = "dict built" if isinstance(node, ast.DictComp) \
                else "sequence built"
            self._flag(generator.iter, "D104",
                       f"{what} by iterating a set; insertion order "
                       f"follows hash order")

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_Starred(self, node: ast.Starred) -> None:
        if isinstance(self._parent(node),
                      (ast.Call, ast.List, ast.Tuple)) and \
                self._is_set_expr(node.value):
            self._flag(node.value, "D104",
                       "unpacking a set materialises its iteration "
                       "order")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# the driver


@dataclass
class LintRun:
    """The result of one analyzer run.

    ``findings`` is the merged, suppression-filtered, sorted stream
    from every pass; ``sources`` maps each linted path to its text so
    the baseline/SARIF layer can fingerprint findings without
    re-reading files (and so the fingerprints are computed from
    exactly the bytes that were analyzed).
    """

    findings: List[Finding] = field(default_factory=list)
    sources: Dict[str, str] = field(default_factory=dict)


def _sort_key(finding: Finding) -> Tuple[int, int, str]:
    return (finding.line, finding.col, finding.rule_id)


def _module_name(path: str) -> str:
    """Module name for the call graph; filesystem-free for <string>."""
    if path == "<string>":
        return "_module"
    return module_name_for(Path(path))


def run_lint(paths: Sequence[Union[str, Path]],
             select: Optional[Set[str]] = None) -> LintRun:
    """Run every pass over the Python files under ``paths``.

    The full pipeline, in order:

    1. Parse all files (syntax errors become E901 and exclude the
       file from later passes).
    2. Collect function signatures project-wide so the U4xx pass can
       check call sites across module boundaries.
    3. Per file: module checker (D1xx/U2xx/H3xx) + unit pass (U4xx),
       then apply ``allow[...]`` suppressions.
    4. Taint pass (D2xx) over the whole call graph, seeded by the
       *surviving* D1xx findings; suppressions applied again so an
       allow at either end of a chain silences it.
    5. S9xx suppression audit per file (skipped when ``select``
       restricts rules, so a filtered run never flags allow-comments
       for deselected rules as stale).
    6. Stable sort: files in traversal order, findings by
       (line, col, rule).
    """
    run = LintRun()
    parsed: List[Tuple[str, Optional[ast.Module],
                       Optional[Finding]]] = []
    for file_path in iter_python_files(paths):
        path = str(file_path)
        source = file_path.read_text(encoding="utf-8")
        run.sources[path] = source
        try:
            tree = ast.parse(source, filename=path)
            parsed.append((path, tree, None))
        except SyntaxError as exc:
            parsed.append((path, None, Finding(
                path=path, line=exc.lineno or 1,
                col=(exc.offset or 0) + 1, rule_id="E901",
                message=f"syntax error: {exc.msg}")))

    modules = {path: _module_name(path)
               for path, tree, _ in parsed if tree is not None}
    signatures = merge_signature_indexes([
        collect_signatures(tree, modules[path])
        for path, tree, _ in parsed if tree is not None])

    per_file: Dict[str, List[Finding]] = {}
    suppressions: Dict[str, List[Suppression]] = {}
    taint_modules = []
    seeds: Dict[str, List[Finding]] = {}
    for path, tree, error in parsed:
        if tree is None:
            per_file[path] = [error] if error is not None else []
            continue
        checker = _ModuleChecker(path, tree)
        checker.visit(tree)
        local = checker.findings + \
            UnitPass(path, tree, modules[path], signatures).run()
        supps = collect_suppressions(run.sources[path])
        suppressions[path] = supps
        kept = apply_suppressions(local, supps)
        per_file[path] = kept
        seeds[path] = kept
        taint_modules.append(extract_module(path, tree, modules[path]))

    taint_by_path: Dict[str, List[Finding]] = {}
    for finding in run_taint(taint_modules, seeds):
        taint_by_path.setdefault(finding.path, []).append(finding)
    for path, findings in taint_by_path.items():
        per_file.setdefault(path, []).extend(
            apply_suppressions(findings, suppressions.get(path, [])))

    for path, tree, _ in parsed:
        findings = per_file.get(path, [])
        if select is not None:
            findings = [f for f in findings
                        if f.rule_id in select or f.rule_id == "E901"]
        elif tree is not None:
            findings = findings + audit(suppressions[path], path)
        findings.sort(key=_sort_key)
        run.findings.extend(findings)
    return run


def lint_source(source: str, path: str = "<string>",
                select: Optional[Set[str]] = None) -> List[Finding]:
    """Analyze one module's source text and return its findings.

    The single-module entry point: all per-file passes run, and the
    taint pass runs over the one-module call graph (so intra-module
    source→sink chains are still reported).  ``select`` restricts
    output to the given rule IDs; suppression hygiene (S9xx) is only
    checked on unrestricted runs, so a filtered run never reports
    allow-comments for deselected rules as stale.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1, rule_id="E901",
                        message=f"syntax error: {exc.msg}")]
    module = _module_name(path)
    checker = _ModuleChecker(path, tree)
    checker.visit(tree)
    local = checker.findings + \
        UnitPass(path, tree, module,
                 collect_signatures(tree, module)).run()
    supps = collect_suppressions(source)
    kept = apply_suppressions(local, supps)
    taint = run_taint([extract_module(path, tree, module)],
                      {path: kept})
    kept = kept + apply_suppressions(taint, supps)
    if select is not None:
        kept = [f for f in kept if f.rule_id in select]
    else:
        kept = kept + audit(supps, path)
    kept.sort(key=_sort_key)
    return kept


def iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    """Yield the .py files under ``paths`` in sorted, stable order."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                candidate for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
                and not any(part.startswith(".")
                            for part in candidate.parts))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Sequence[Union[str, Path]],
               select: Optional[Set[str]] = None) -> List[Finding]:
    """Lint every Python file under ``paths``; findings sorted by file."""
    return run_lint(paths, select=select).findings
