"""AST helpers shared by the simlint passes.

Name/alias resolution, unit-suffix and dimension classification, and
module-name derivation — the pieces the module checker, the U4xx unit
pass and the D2xx taint pass all need, kept in one place so the passes
agree on what a name *means*.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Optional, Tuple

#: Unit suffixes, longest first so ``_ns`` does not match inside
#: ``_seconds`` etc.  Maps suffix -> canonical unit.
UNIT_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_seconds", "s"), ("_secs", "s"), ("_sec", "s"),
    ("_bytes", "bytes"), ("_bits", "bits"), ("_bps", "bps"),
    ("_ns", "ns"), ("_us", "us"), ("_ms", "ms"), ("_s", "s"),
)

#: Dimensional annotation names (repro.core.units) -> dimension.
ANNOTATION_DIMS: Dict[str, str] = {
    "TimeNs": "ns",
    "Seconds": "s",
    "Bytes": "bytes",
    "Bits": "bits",
    "BitsPerSec": "bps",
    "Ratio": "ratio",
}

#: The integer time dimensions of the simulator clock contract.
TIME_DIMS = frozenset({"ns", "us", "ms", "s"})


def call_name(func: ast.expr) -> Optional[str]:
    """The trailing identifier of a call target (``a.b.c`` -> ``c``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def name_dim(name: Optional[str]) -> Optional[str]:
    """The dimension a name's unit suffix implies, if any.

    Rate-shaped names (``bytes_per_sec``, ``events_per_s``) are
    excluded: their trailing ``_sec``/``_s`` is a denominator, not a
    seconds-valued quantity.
    """
    if not name:
        return None
    if "_per_" in name:
        return None
    for suffix, unit in UNIT_SUFFIXES:
        if name.endswith(suffix) and len(name) > len(suffix):
            return unit
    return None


def annotation_dim(annotation: Optional[ast.expr]) -> Optional[str]:
    """The dimension a ``TimeNs``/``Seconds``/... annotation declares."""
    if annotation is None:
        return None
    head: ast.expr = annotation
    if isinstance(head, ast.Subscript):
        # Optional[TimeNs] / "Optional[TimeNs]" style.
        sub = head.slice
        if isinstance(sub, (ast.Name, ast.Attribute)):
            head = sub
    if isinstance(head, ast.Attribute):
        return ANNOTATION_DIMS.get(head.attr)
    if isinstance(head, ast.Name):
        return ANNOTATION_DIMS.get(head.id)
    if isinstance(head, ast.Constant) and isinstance(head.value, str):
        text = head.value.split("[", 1)[-1].rstrip("]").strip() \
            if "[" in head.value else head.value.strip()
        return ANNOTATION_DIMS.get(text.rsplit(".", 1)[-1])
    return None


class ImportMap:
    """Local-name -> canonical dotted path maps for one module.

    Relative imports (``from .helpers import f``, ``from ..core import
    units``) resolve against ``module`` — the importing module's own
    dotted name — so cross-module call edges survive the repo's
    package-relative import style.  Without a ``module``, relative
    imports are skipped (conservative: unresolved, never wrong).
    """

    def __init__(self, tree: ast.Module,
                 module: Optional[str] = None) -> None:
        #: local alias -> imported module dotted path.
        self.modules: Dict[str, str] = {}
        #: local alias -> ``module.member`` dotted path.
        self.members: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.modules[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(node, module)
                if base is None:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.members[local] = f"{base}.{alias.name}"

    @staticmethod
    def _import_base(node: ast.ImportFrom,
                     module: Optional[str]) -> Optional[str]:
        """Dotted prefix that ``from <here> import name`` draws from."""
        if node.level == 0:
            return node.module
        if not module:
            return None
        parts = module.split(".")
        if len(parts) < node.level:
            return None
        base_parts = parts[:len(parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts) if base_parts else None

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, if known."""
        if isinstance(node, ast.Name):
            if node.id in self.members:
                return self.members[node.id]
            if node.id in self.modules:
                return self.modules[node.id]
            return None
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


def module_name_for(path: Path) -> str:
    """Dotted module name of a file, walking up through __init__.py.

    ``src/repro/netsim/link.py`` -> ``repro.netsim.link``; a standalone
    script (``tools/simlint.py``) is just its stem.  Deterministic and
    filesystem-derived, so the taint pass's graph is stable across
    hosts.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem
