"""SARIF 2.1.0 export for simlint findings.

One run, one tool component, one result per finding.  The export is
deliberately minimal-but-conformant: rule metadata comes straight from
the catalog (:mod:`repro.analysis.rules`), locations are 1-based
region anchors, taint chains surface as ``relatedLocations``, and the
baseline fingerprint is exported under ``partialFingerprints`` with
the same key the baseline file uses, so code-scanning UIs and
``.simlint-baseline.json`` agree on finding identity.

Determinism is part of the contract here exactly as it is for the
simulator: rules are sorted by ID, results keep analyzer order (which
is itself path/line-sorted by the driver), and serialization uses a
fixed key order with a trailing newline — the same findings always
produce byte-identical SARIF.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .baseline import FINGERPRINT_KEY, normalize_path
from .findings import Finding
from .rules import RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: Rule series -> SARIF level.  Determinism and unit hazards break the
#: replay contract outright; hygiene and suppression findings warn.
_SERIES_LEVELS = {"D": "error", "U": "error", "H": "warning",
                  "S": "warning", "E": "error"}


def _location(path: str, line: int, col: int = 1,
              message: Optional[str] = None) -> Dict[str, Any]:
    location: Dict[str, Any] = {
        "physicalLocation": {
            "artifactLocation": {
                "uri": normalize_path(path),
                "uriBaseId": "SRCROOT",
            },
            "region": {"startLine": line, "startColumn": col},
        },
    }
    if message is not None:
        location["message"] = {"text": message}
    return location


def _rule_descriptor(rule_id: str) -> Dict[str, Any]:
    rule = RULES[rule_id]
    return {
        "id": rule.rule_id,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "help": {"text": rule.hint},
        "defaultConfiguration": {
            "level": _SERIES_LEVELS.get(rule.series, "warning"),
        },
    }


def render_sarif(
        fingerprinted: Sequence[Tuple[Finding, Optional[str]]],
) -> str:
    """Serialize findings (with optional fingerprints) as SARIF 2.1.0.

    The rules table lists only rules that actually fired — SARIF
    consumers treat it as the run's vocabulary, and keeping it minimal
    makes the output stable under catalog growth.
    """
    fired = sorted({finding.rule_id for finding, _ in fingerprinted})
    rule_index = {rule_id: i for i, rule_id in enumerate(fired)}
    results: List[Dict[str, Any]] = []
    for finding, fingerprint in fingerprinted:
        result: Dict[str, Any] = {
            "ruleId": finding.rule_id,
            "ruleIndex": rule_index[finding.rule_id],
            "level": _SERIES_LEVELS.get(finding.rule_id[0], "warning"),
            "message": {"text": finding.message},
            "locations": [_location(finding.path, finding.line,
                                    finding.col)],
        }
        if finding.related:
            result["relatedLocations"] = [
                _location(rel_path, rel_line, 1, note)
                for rel_path, rel_line, note in finding.related]
        if fingerprint is not None:
            result["partialFingerprints"] = {
                FINGERPRINT_KEY: fingerprint}
        results.append(result)
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": (
                            "https://example.invalid/simlint"),
                        "rules": [_rule_descriptor(rule_id)
                                  for rule_id in fired],
                    },
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            },
        ],
    }
    return json.dumps(document, indent=2) + "\n"
