"""The project-wide determinism-taint pass (D2xx).

The D1xx rules see one module at a time, so a wall-clock read in a
helper looks like a local hygiene problem — until a scheduler two
modules away consumes its value and the replay contract breaks.  This
pass builds an import/call graph over *all* linted files and connects
**sources** (the surviving D1xx findings: ``hash()``, unseeded RNGs,
host clocks, set-order leaks) to **sinks** (``Simulator.schedule*``,
``ScenarioResult`` construction, cache fingerprints, trace emission)
through function calls, reporting at both ends:

* **D201** at the sink: "this schedule()/result/fingerprint can be
  fed by nondeterminism N call-levels away", with the chain.
* **D202** at the source: "this is not just local hygiene — the value
  can reach sink S", with the reverse chain.

Design notes:

* Taint seeds are the **unsuppressed** D1xx findings the module
  checker produced: an ``# simlint: allow[D103] reason`` comment both
  silences the local finding and certifies the value never reaches
  simulation state, so it stops propagation too.  That keeps this
  pass false-positive-free on a tree whose D1xx findings are all
  triaged.
* Propagation is call-graph reachability, an over-approximation of
  dataflow: a sink function that (transitively) calls a source
  function is flagged even if the tainted value does not feed the
  sink argument.  With triaged seeds the residual noise is zero, and
  the over-approximation is what lets the pass run without a full
  interprocedural dataflow engine.
* Call edges resolve module-local names, ``from``-imports, module
  aliases, and ``self.method`` receivers exactly; other attribute
  calls fall back to a unique-name match across the project (skipped
  when ambiguous), so duck-typed helper methods still connect.
* Everything is sorted before traversal, so the emitted findings are
  byte-stable across runs and file orderings.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .astutil import ImportMap, call_name
from .findings import Finding
from .rules import RULES

#: D1xx rules whose findings seed taint.
SOURCE_RULE_IDS = frozenset({"D101", "D102", "D103", "D104"})

#: Call names that constitute determinism sinks, with display labels.
SINK_CALL_NAMES: Dict[str, str] = {
    "schedule": "Simulator.schedule()",
    "schedule_at": "Simulator.schedule_at()",
    "ScenarioResult": "ScenarioResult construction",
    "fingerprint": "cache fingerprint",
    "emit": "trace emission",
    "publish": "trace emission",
}


@dataclass(frozen=True)
class RawCall:
    """One unresolved outgoing call recorded during extraction."""

    kind: str          # "local" | "self" | "dotted" | "method"
    target: str        # name, dotted path, or Class.method
    line: int


@dataclass
class FunctionInfo:
    """Call-graph node: one module-level function or method."""

    qual: str
    module: str
    name: str
    path: str
    lineno: int
    end_lineno: int
    sinks: List[Tuple[str, int]] = field(default_factory=list)
    raw_calls: List[RawCall] = field(default_factory=list)
    #: (rule_id, line, summary) seeds attributed from D1xx findings.
    sources: List[Tuple[str, int, str]] = field(default_factory=list)


@dataclass
class ModuleTaintInfo:
    """Everything the project pass needs from one parsed module."""

    path: str
    module: str
    functions: List[FunctionInfo]


def extract_module(path: str, tree: ast.Module,
                   module: str) -> ModuleTaintInfo:
    """Collect function nodes, sink calls and raw call edges."""
    imports = ImportMap(tree, module)
    functions: List[FunctionInfo] = []

    def extract_function(node: ast.AST, qual: str,
                         class_name: Optional[str]) -> FunctionInfo:
        info = FunctionInfo(
            qual=qual, module=module,
            name=qual.rsplit(".", 1)[-1], path=path,
            lineno=node.lineno,
            end_lineno=getattr(node, "end_lineno", node.lineno))
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            callee = call_name(sub.func)
            if callee is None:
                continue
            if callee in SINK_CALL_NAMES:
                info.sinks.append((SINK_CALL_NAMES[callee],
                                   sub.lineno))
            func = sub.func
            if isinstance(func, ast.Name):
                dotted = imports.resolve(func)
                if dotted is not None:
                    info.raw_calls.append(
                        RawCall("dotted", dotted, sub.lineno))
                else:
                    info.raw_calls.append(
                        RawCall("local", callee, sub.lineno))
            elif isinstance(func, ast.Attribute):
                if isinstance(func.value, ast.Name) and \
                        func.value.id == "self" and class_name:
                    info.raw_calls.append(RawCall(
                        "self", f"{class_name}.{callee}", sub.lineno))
                    continue
                dotted = imports.resolve(func)
                if dotted is not None:
                    info.raw_calls.append(
                        RawCall("dotted", dotted, sub.lineno))
                else:
                    info.raw_calls.append(
                        RawCall("method", callee, sub.lineno))
        return info

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(extract_function(
                stmt, f"{module}.{stmt.name}", None))
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                    functions.append(extract_function(
                        sub, f"{module}.{stmt.name}.{sub.name}",
                        stmt.name))
    return ModuleTaintInfo(path=path, module=module,
                           functions=functions)


def _attribute_sources(modules: Sequence[ModuleTaintInfo],
                       seeds_by_path: Dict[str, List[Finding]]) -> None:
    for info in modules:
        seeds = [f for f in seeds_by_path.get(info.path, ())
                 if f.rule_id in SOURCE_RULE_IDS]
        if not seeds:
            continue
        for function in info.functions:
            for finding in seeds:
                if function.lineno <= finding.line \
                        <= function.end_lineno:
                    function.sources.append((
                        finding.rule_id, finding.line,
                        RULES[finding.rule_id].name))


def _resolve_edges(
        modules: Sequence[ModuleTaintInfo]
) -> Dict[str, List[Tuple[str, int]]]:
    """Turn raw calls into (callee qual, call line) adjacency lists."""
    by_qual: Dict[str, FunctionInfo] = {}
    by_name: Dict[str, List[str]] = {}
    by_class_method: Dict[str, List[str]] = {}
    for info in modules:
        for function in info.functions:
            by_qual[function.qual] = function
            by_name.setdefault(function.name, []).append(function.qual)
            parts = function.qual.rsplit(".", 2)
            if len(parts) == 3:
                by_class_method.setdefault(
                    f"{parts[1]}.{parts[2]}", []).append(function.qual)

    edges: Dict[str, List[Tuple[str, int]]] = {}
    for info in modules:
        for function in info.functions:
            out: List[Tuple[str, int]] = []
            for raw in function.raw_calls:
                target: Optional[str] = None
                if raw.kind == "local":
                    candidate = f"{function.module}.{raw.target}"
                    if candidate in by_qual:
                        target = candidate
                elif raw.kind == "dotted":
                    if raw.target in by_qual:
                        target = raw.target
                elif raw.kind == "self":
                    candidate = f"{function.module}.{raw.target}"
                    if candidate in by_qual:
                        target = candidate
                    else:
                        quals = by_class_method.get(raw.target, ())
                        if len(quals) == 1:
                            target = quals[0]
                elif raw.kind == "method":
                    quals = by_name.get(raw.target, ())
                    if len(quals) == 1:
                        target = quals[0]
                if target is not None and target != function.qual:
                    out.append((target, raw.line))
            # Deterministic, deduplicated adjacency (keep first line).
            seen: Dict[str, int] = {}
            for qual, line in out:
                if qual not in seen:
                    seen[qual] = line
            edges[function.qual] = sorted(seen.items())
    return edges


def run_taint(modules: Sequence[ModuleTaintInfo],
              seeds_by_path: Dict[str, List[Finding]]) -> List[Finding]:
    """The project pass: connect sources to sinks over the call graph."""
    modules = sorted(modules, key=lambda m: (m.path, m.module))
    _attribute_sources(modules, seeds_by_path)
    edges = _resolve_edges(modules)
    by_qual: Dict[str, FunctionInfo] = {
        function.qual: function
        for info in modules for function in info.functions}

    findings: List[Finding] = []
    emitted_sources: Dict[Tuple[str, int], int] = {}
    for info in modules:
        for function in info.functions:
            if not function.sinks:
                continue
            # BFS from the sink function; the first tainted function
            # on each path yields one chain (shortest, deterministic).
            chains = _find_chains(function, edges, by_qual)
            for source_fn, path_quals, entry_line in chains:
                if source_fn.qual == function.qual:
                    continue
                sink_label, sink_line = function.sinks[0]
                chain_text = " -> ".join(
                    by_qual[q].name for q in path_quals)
                for rule_id, src_line, src_name in source_fn.sources:
                    findings.append(Finding(
                        path=function.path, line=sink_line, col=1,
                        rule_id="D201",
                        message=(
                            f"{sink_label} in {function.name}() is "
                            f"reachable from nondeterminism source "
                            f"{src_name} ({rule_id}) at "
                            f"{source_fn.path}:{src_line} via "
                            f"{chain_text}"),
                        related=((source_fn.path, src_line,
                                  f"source {src_name}"),)))
                    key = (source_fn.path, src_line)
                    if key not in emitted_sources:
                        emitted_sources[key] = 1
                        reverse = " <- ".join(
                            by_qual[q].name
                            for q in reversed(path_quals))
                        findings.append(Finding(
                            path=source_fn.path, line=src_line, col=1,
                            rule_id="D202",
                            message=(
                                f"nondeterminism source {src_name} "
                                f"({rule_id}) feeds {sink_label} at "
                                f"{function.path}:{sink_line} via "
                                f"{reverse}"),
                            related=((function.path, sink_line,
                                      f"sink {sink_label}"),)))
    return findings


def _find_chains(
        sink_fn: FunctionInfo,
        edges: Dict[str, List[Tuple[str, int]]],
        by_qual: Dict[str, FunctionInfo],
) -> List[Tuple[FunctionInfo, Tuple[str, ...], int]]:
    """Shortest call chains from ``sink_fn`` to each source function.

    Returns (source function, qual chain sink->source, line of the
    first call edge) triples, one per reachable source function, in
    deterministic order.
    """
    chains: List[Tuple[FunctionInfo, Tuple[str, ...], int]] = []
    visited = {sink_fn.qual}
    queue: deque = deque()
    queue.append((sink_fn.qual, (sink_fn.qual,), None))
    while queue:
        qual, path_quals, entry_line = queue.popleft()
        function = by_qual[qual]
        if function.sources and qual != sink_fn.qual:
            chains.append((function, path_quals,
                           entry_line if entry_line is not None
                           else function.lineno))
            # Do not traverse beyond a tainted function: the nearest
            # source explains the chain.
            continue
        for callee, line in edges.get(qual, ()):
            if callee in visited:
                continue
            visited.add(callee)
            queue.append((callee, path_quals + (callee,),
                          entry_line if entry_line is not None
                          else line))
    return chains
