"""The flow-sensitive dimensional-unit pass (U4xx).

The token-level U2xx rules in :mod:`repro.analysis.linter` only see one
expression at a time: ``run(timeout_ns=duration_seconds)`` is caught,
``tmp = duration_seconds; run(timeout_ns=tmp)`` is not.  This pass
closes that gap by *inferring* a dimension for every local value and
propagating it through assignments, arithmetic and call sites.

Dimensions come from three places, in priority order:

1. **Annotations** naming a :mod:`repro.core.units` alias
   (``TimeNs``/``Seconds``/``Bytes``/``Bits``/``BitsPerSec``/
   ``Ratio``) on parameters, targets and returns.
2. **Name suffixes** (``_ns``/``_us``/``_ms``/``_s``/``_bytes``/
   ``_bits``/``_bps``), the repo's naming contract.
3. **Known callables**: the units conversion helpers, the engine's
   ``seconds``/``to_seconds``, and — generically — any callee whose
   own name carries a unit suffix (``serialization_delay_ns(...)``
   is nanoseconds).

The algebra is deliberately partial.  Scale factors the codebase uses
for *conversion* (``SECOND``, ``1e9``, ``* 8``…) launder the dimension
to unknown rather than producing a wrong one, so a clean run means
"no provable mix", never "no inference failure".  The pass only flags
when **both** sides of an operation or flow have known, incompatible
dimensions — which keeps it false-positive-free on the real tree (the
acceptance bar) at the cost of missing what it cannot prove.

Rules:

* **U401** — arithmetic/comparison across incompatible dimensions.
* **U402** — a value of one inferred dimension flowing into a target
  (assignment / argument / return) declared with another.
* **U403** — bytes↔bits mixes, including the classic rate-boundary
  bug ``size_bytes / rate_bps`` (missing ×8).
* **U404** — a float-contaminated value reaching an integer-ns slot
  through one or more assignments (the dataflow closure of U201).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .astutil import (TIME_DIMS, ImportMap, annotation_dim, call_name,
                      name_dim)
from .findings import Finding

#: Names treated as unit *scale factors*: multiplying or dividing by
#: one is how this codebase converts, so the result dimension is
#: unknown (laundered), never wrong.
SCALE_CONSTANT_NAMES = frozenset({
    "NANOSECOND", "MICROSECOND", "MILLISECOND", "SECOND",
    "NS_PER_S", "BITS_PER_BYTE", "CODEL_TARGET_NS", "CODEL_INTERVAL_NS",
})

#: Literal values likewise treated as scale factors (1e9 ns/s, ...).
SCALE_LITERALS = frozenset({
    1_000, 1_000_000, 1_000_000_000,
    1e3, 1e6, 1e9, 1e-3, 1e-6, 1e-9,
})

#: Callables that preserve their argument's dimension (and strip float).
INT_PRESERVING_CALLS = frozenset({
    "int", "round", "floor", "ceil", "trunc", "abs",
})

#: Dimension-polymorphic callables: result dimension = argument's.
DIM_PRESERVING_CALLS = frozenset({
    "min", "max", "sum", "float",
})

#: Known callable signatures: name -> (param dims, return dim).
#: ``None`` in a position means "unconstrained".  These cover the
#: engine and units helpers that predate annotation coverage; the
#: project signature index (built by the driver from annotations and
#: suffixes) extends this table dynamically.
@dataclass(frozen=True)
class FuncSig:
    """Parameter/return dimensions of one known callable."""

    name: str
    param_dims: Tuple[Optional[str], ...]
    param_names: Tuple[str, ...]
    return_dim: Optional[str]
    #: Return values float-typed?  (None = unknown.)
    returns_float: Optional[bool] = None


KNOWN_SIGNATURES: Dict[str, FuncSig] = {
    sig.name: sig for sig in (
        # repro.netsim.engine
        FuncSig("seconds", ("s",), ("value",), "ns", False),
        FuncSig("to_seconds", ("ns",), ("value_ns",), "s", True),
        FuncSig("schedule", ("ns",), ("delay_ns",), None),
        FuncSig("schedule_at", ("ns",), ("time_ns",), None),
        # repro.core.units
        FuncSig("ns_from_seconds", ("s",), ("value_s",), "ns", False),
        FuncSig("seconds_from_ns", ("ns",), ("value_ns",), "s", True),
        FuncSig("bits_from_bytes", ("bytes",), ("size_bytes",),
                "bits", False),
        FuncSig("bytes_from_bits", ("bits",), ("size_bits",),
                "bytes", False),
        FuncSig("rate_from_volume", ("bits", "s"),
                ("size_bits", "duration_s"), "bps", True),
        FuncSig("transmit_time_ns", ("bytes", "bps"),
                ("size_bytes", "rate_bps"), "ns", False),
        FuncSig("ratio_of", (None, None),
                ("numerator", "denominator"), "ratio", True),
    )
}

#: Unit-alias constructors: TimeNs(x) asserts the dimension.
CONSTRUCTOR_DIMS: Dict[str, Tuple[str, bool]] = {
    "TimeNs": ("ns", False),
    "Seconds": ("s", True),
    "Bytes": ("bytes", False),
    "Bits": ("bits", False),
    "BitsPerSec": ("bps", True),
    "Ratio": ("ratio", True),
}


@dataclass
class Val:
    """Inferred properties of one expression value."""

    dim: Optional[str] = None        # None = unknown
    poly: bool = False               # dimensionless literal (adapts)
    isfloat: Optional[bool] = None   # None = unknown
    origin_line: Optional[int] = None  # where floatness was acquired

    @staticmethod
    def unknown() -> "Val":
        return Val()


_POLY = "«poly»"


def _merge_env(base: Dict[str, Val],
               branches: Sequence[Dict[str, Val]]) -> Dict[str, Val]:
    """Conservative join: keep facts only where every branch agrees."""
    if not branches:
        return base
    merged: Dict[str, Val] = {}
    keys = set(branches[0])
    for env in branches[1:]:
        keys &= set(env)
    for key in sorted(keys):
        vals = [env[key] for env in branches]
        dim = vals[0].dim if all(v.dim == vals[0].dim for v in vals) \
            else None
        isfloat = vals[0].isfloat \
            if all(v.isfloat == vals[0].isfloat for v in vals) else None
        origin = vals[0].origin_line if isfloat else None
        merged[key] = Val(dim=dim, isfloat=isfloat, origin_line=origin)
    return merged


def collect_signatures(tree: ast.Module,
                       module: str) -> Dict[str, FuncSig]:
    """Index every function's parameter/return dims in one module.

    Keys are emitted at several precisions (``mod.Class.f``,
    ``Class.f``, ``f``) so call sites can resolve with whatever
    context they have; the driver merges per-module indexes into the
    project-wide table, dropping bare-name keys that collide with
    *different* signatures (conservative: ambiguity means no check).
    """
    index: Dict[str, FuncSig] = {}

    def visit(body: Sequence[ast.stmt], prefix: str) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                visit(node.body, f"{prefix}{node.name}.")
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                args = node.args
                params = list(args.posonlyargs) + list(args.args)
                if params and params[0].arg in ("self", "cls") \
                        and prefix:
                    params = params[1:]
                dims = tuple(
                    annotation_dim(a.annotation) or name_dim(a.arg)
                    for a in params)
                names = tuple(a.arg for a in params)
                return_dim = annotation_dim(node.returns) \
                    or name_dim(node.name)
                sig = FuncSig(node.name, dims, names, return_dim)
                qual = f"{prefix}{node.name}"
                index[f"{module}.{qual}"] = sig
                index.setdefault(qual, sig)
                if "." in qual:
                    index.setdefault(node.name, sig)
                visit(node.body, f"{prefix}{node.name}.<locals>.")

    visit(tree.body, "")
    return index


def merge_signature_indexes(
        indexes: Sequence[Dict[str, FuncSig]]) -> Dict[str, FuncSig]:
    """Project-wide signature table; ambiguous short keys are dropped."""
    merged: Dict[str, FuncSig] = {}
    ambiguous = set()
    for index in indexes:
        for key, sig in index.items():
            if key in ambiguous:
                continue
            existing = merged.get(key)
            if existing is None:
                merged[key] = sig
            elif (existing.param_dims != sig.param_dims
                  or existing.return_dim != sig.return_dim):
                del merged[key]
                ambiguous.add(key)
    return merged


class _FunctionUnits:
    """Infers dimensions through one function body and emits findings."""

    def __init__(self, pass_: "UnitPass",
                 node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
                 class_name: Optional[str]) -> None:
        self.pass_ = pass_
        self.node = node
        self.class_name = class_name
        self.env: Dict[str, Val] = {}
        self.return_dim = annotation_dim(node.returns) \
            or name_dim(node.name)
        args = node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            dim = annotation_dim(arg.annotation) or name_dim(arg.arg)
            isfloat = self._annotation_floatness(arg.annotation)
            self.env[arg.arg] = Val(dim=dim, isfloat=isfloat)

    @staticmethod
    def _annotation_floatness(
            annotation: Optional[ast.expr]) -> Optional[bool]:
        if isinstance(annotation, ast.Name):
            if annotation.id in ("float", "Seconds", "BitsPerSec",
                                 "Ratio"):
                return True
            if annotation.id in ("int", "TimeNs", "Bytes", "Bits"):
                return False
        return None

    # -- plumbing ----------------------------------------------------------

    def _flag(self, node: ast.AST, rule_id: str, message: str) -> None:
        self.pass_.flag(node, rule_id, message)

    def _key(self, node: ast.expr) -> Optional[str]:
        """Env key for a trackable target (``x`` or ``self.attr``)."""
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "self":
            return f"self.{node.attr}"
        return None

    def _target_name(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    def _declared_dim(self, node: ast.expr,
                      annotation: Optional[ast.expr] = None
                      ) -> Optional[str]:
        return annotation_dim(annotation) \
            or name_dim(self._target_name(node))

    # -- expression evaluation --------------------------------------------

    def _eval(self, node: ast.expr) -> Val:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                    node.value, (int, float)):
                return Val.unknown()
            return Val(dim=_POLY, poly=True,
                       isfloat=isinstance(node.value, float),
                       origin_line=node.lineno
                       if isinstance(node.value, float) else None)
        if isinstance(node, (ast.Name, ast.Attribute)):
            return self._eval_name(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.IfExp):
            body = self._eval(node.body)
            orelse = self._eval(node.orelse)
            if body.dim == orelse.dim and body.isfloat == orelse.isfloat:
                return body
            return Val.unknown()
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Compare):
            self._check_compare(node)
            return Val(isfloat=False)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(value)
            return Val.unknown()
        return Val.unknown()

    def _eval_name(self, node: ast.expr) -> Val:
        key = self._key(node)
        if key is not None and key in self.env:
            known = self.env[key]
            if known.dim is not None or known.isfloat is not None:
                return known
        name = self._target_name(node)
        if isinstance(node, ast.Name) and name in SCALE_CONSTANT_NAMES:
            return Val(dim=_POLY, poly=True, isfloat=False)
        dim = name_dim(name)
        if dim is not None:
            return Val(dim=dim)
        return Val.unknown()

    def _is_scale_factor(self, node: ast.expr, value: Val) -> bool:
        if isinstance(node, ast.Name) and \
                node.id in SCALE_CONSTANT_NAMES:
            return True
        if isinstance(node, ast.Constant) and \
                isinstance(node.value, (int, float)) and \
                not isinstance(node.value, bool):
            return node.value in SCALE_LITERALS
        return False

    def _eval_binop(self, node: ast.BinOp) -> Val:
        left = self._eval(node.left)
        right = self._eval(node.right)
        isfloat: Optional[bool]
        if isinstance(node.op, ast.Div):
            isfloat = True
        elif isinstance(node.op, (ast.FloorDiv, ast.Mod,
                                  ast.LShift, ast.RShift, ast.BitOr,
                                  ast.BitAnd, ast.BitXor)):
            isfloat = False if not (left.isfloat or right.isfloat) \
                else None
        elif left.isfloat or right.isfloat:
            isfloat = True
        elif left.isfloat is False and right.isfloat is False:
            isfloat = False
        else:
            isfloat = None
        origin = node.lineno if isfloat else None

        if isinstance(node.op, (ast.Mult, ast.Div, ast.FloorDiv)):
            # ``* 8`` / ``// 8`` against bytes/bits is the repo's
            # inline conversion idiom; other ×8 uses launder.
            lit8 = self._bytes_bits_literal8(node, left, right,
                                             isfloat, origin)
            if lit8 is not None:
                return lit8
            # Scale factors launder the dimension: * SECOND, / 1e9...
            if self._is_scale_factor(node.left, left) or \
                    self._is_scale_factor(node.right, right):
                return Val(isfloat=isfloat, origin_line=origin)

        if isinstance(node.op, (ast.Add, ast.Sub)):
            dim = self._combine_linear(node, left, right)
            return Val(dim=dim, poly=(left.poly and right.poly),
                       isfloat=isfloat, origin_line=origin)
        if isinstance(node.op, ast.Mod):
            dim = self._combine_linear(node, left, right)
            return Val(dim=dim, isfloat=isfloat, origin_line=origin)
        if isinstance(node.op, ast.Mult):
            dim = self._combine_product(left, right)
            return Val(dim=dim, isfloat=isfloat, origin_line=origin)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            dim = self._combine_quotient(node, left, right)
            return Val(dim=dim, isfloat=isfloat, origin_line=origin)
        return Val(isfloat=isfloat, origin_line=origin)

    def _bytes_bits_literal8(self, node: ast.BinOp, left: Val,
                             right: Val, isfloat: Optional[bool],
                             origin: Optional[int]) -> Optional[Val]:
        """``bytes * 8`` -> bits, ``bits // 8`` -> bytes, other ×8
        uses launder to unknown.  None when no literal 8 is involved."""
        lit8 = (isinstance(node.right, ast.Constant)
                and not isinstance(node.right.value, bool)
                and node.right.value in (8, 8.0))
        if not lit8:
            return None
        if isinstance(node.op, ast.Mult) and left.dim == "bytes":
            return Val(dim="bits", isfloat=isfloat, origin_line=origin)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)) and \
                left.dim == "bits":
            return Val(dim="bytes", isfloat=isfloat, origin_line=origin)
        return Val(isfloat=isfloat, origin_line=origin)

    def _combine_linear(self, node: ast.BinOp, left: Val,
                        right: Val) -> Optional[str]:
        """Dim of ``a + b`` / ``a - b`` / ``a % b``; flags mixes."""
        a, b = left.dim, right.dim
        if a == _POLY:
            return b if b != _POLY else _POLY
        if b == _POLY or b is None:
            return a
        if a is None:
            return b
        if a == b:
            return a
        self._flag_mix(node, a, b, "combined with "
                       + {ast.Add: "'+'", ast.Sub: "'-'",
                          ast.Mod: "'%'"}.get(type(node.op), "operator"))
        return None

    def _combine_product(self, left: Val,
                         right: Val) -> Optional[str]:
        a, b = left.dim, right.dim
        pair = {a, b}
        if pair == {"bps", "s"}:
            return "bits"
        if a == "ratio" and b not in (None, _POLY):
            return b
        if b == "ratio" and a not in (None, _POLY):
            return a
        if a == _POLY and b not in (None, _POLY):
            return b
        if b == _POLY and a not in (None, _POLY):
            return a
        if a == _POLY and b == _POLY:
            return _POLY
        return None

    def _combine_quotient(self, node: ast.BinOp, left: Val,
                          right: Val) -> Optional[str]:
        a, b = left.dim, right.dim
        if a == "bytes" and b == "bps":
            self._flag(node, "U403",
                       "bytes divided by a bits-per-second rate "
                       "(missing ×8 bytes→bits conversion)")
            return None
        if a == "bits" and b == "bps":
            return "s"
        if a == "bits" and b == "s":
            return "bps"
        if a is not None and a != _POLY and a == b:
            return "ratio"
        if a in TIME_DIMS and b in TIME_DIMS and a != b:
            self._flag_mix(node, a, b, "divided")
            return None
        if b in (_POLY, None) and a not in (None, _POLY):
            return a if b == _POLY else None
        return None

    def _flag_mix(self, node: ast.AST, a: str, b: str,
                  how: str) -> None:
        pair = {a, b}
        if pair == {"bytes", "bits"}:
            self._flag(node, "U403",
                       f"bytes and bits {how} without the ×8 "
                       f"conversion")
        else:
            self._flag(node, "U401",
                       f"incompatible dimensions {how}: "
                       f"{a} vs {b}")

    def _check_compare(self, node: ast.Compare) -> None:
        values = [node.left] + list(node.comparators)
        if any(not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                                   ast.Eq, ast.NotEq))
               for op in node.ops):
            return
        dims = []
        for value in values:
            val = self._eval(value)
            dims.append(val.dim)
        known = [d for d in dims if d not in (None, _POLY)]
        for a, b in zip(known, known[1:]):
            if a != b:
                self._flag_mix(node, a, b, "compared")
                return

    # -- calls -------------------------------------------------------------

    def _resolve_signature(self, node: ast.Call) -> Optional[FuncSig]:
        func = node.func
        name = call_name(func)
        if name is None:
            return None
        signatures = self.pass_.signatures
        candidates: List[str] = []
        if isinstance(func, ast.Name):
            resolved = self.pass_.imports.resolve(func)
            if resolved is not None:
                candidates.append(resolved)
            candidates.append(f"{self.pass_.module}.{name}")
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and \
                    func.value.id == "self" and self.class_name:
                candidates.append(
                    f"{self.pass_.module}.{self.class_name}.{name}")
                candidates.append(f"{self.class_name}.{name}")
            resolved = self.pass_.imports.resolve(func)
            if resolved is not None:
                candidates.append(resolved)
        for candidate in candidates:
            if candidate in signatures:
                return signatures[candidate]
        if name in KNOWN_SIGNATURES:
            return KNOWN_SIGNATURES[name]
        return None

    def _eval_call(self, node: ast.Call) -> Val:
        name = call_name(node.func)
        arg_vals = [self._eval(arg) for arg in node.args]
        kw_vals = {kw.arg: self._eval(kw.value)
                   for kw in node.keywords if kw.arg is not None}

        if name in CONSTRUCTOR_DIMS and isinstance(node.func, ast.Name):
            dim, isfloat = CONSTRUCTOR_DIMS[name]
            return Val(dim=dim, isfloat=isfloat)
        if name in INT_PRESERVING_CALLS and node.args:
            inner = arg_vals[0]
            keeps_float = name == "round" and len(node.args) > 1
            return Val(dim=None if inner.dim == _POLY else inner.dim,
                       isfloat=inner.isfloat if keeps_float else False)
        if name in DIM_PRESERVING_CALLS and node.args:
            dims = {v.dim for v in arg_vals}
            dims.discard(_POLY)
            dim = dims.pop() if len(dims) == 1 else None
            isfloat = True if name == "float" else None
            return Val(dim=dim, isfloat=isfloat,
                       origin_line=node.lineno if isfloat else None)

        sig = self._resolve_signature(node)
        if sig is not None:
            self._check_call_args(node, sig, arg_vals, kw_vals)
            returns_float = sig.returns_float
            return Val(dim=sig.return_dim, isfloat=returns_float,
                       origin_line=node.lineno if returns_float
                       else None)
        # Fall back to the callee's own name suffix.
        dim = name_dim(name)
        if dim is not None:
            return Val(dim=dim)
        return Val.unknown()

    def _check_call_args(self, node: ast.Call, sig: FuncSig,
                         arg_vals: List[Val],
                         kw_vals: Dict[str, Val]) -> None:
        for index, (arg, val) in enumerate(zip(node.args, arg_vals)):
            if index >= len(sig.param_dims):
                break
            self._check_flow_into(
                arg, val, sig.param_dims[index],
                f"parameter '{sig.param_names[index]}' of "
                f"{sig.name}()")
        for keyword in node.keywords:
            if keyword.arg is None or keyword.arg not in kw_vals:
                continue
            if keyword.arg in sig.param_names:
                index = sig.param_names.index(keyword.arg)
                self._check_flow_into(
                    keyword.value, kw_vals[keyword.arg],
                    sig.param_dims[index],
                    f"parameter '{keyword.arg}' of {sig.name}()")

    # -- flow checks -------------------------------------------------------

    def _suffix_covered(self, node: ast.expr, val: Val) -> bool:
        """True when the token-level U2xx rules already see this flow.

        A bare name/attribute whose dimension comes from its *own*
        suffix is U202's territory; flagging it again as U402 would
        double-report.  Values whose dimension was inferred (env,
        call result, arithmetic) are this pass's alone.
        """
        if not isinstance(node, (ast.Name, ast.Attribute)):
            return False
        return name_dim(self._target_name(node)) == val.dim

    def _check_flow_into(self, value_node: ast.expr, val: Val,
                         target_dim: Optional[str],
                         target_desc: str) -> None:
        if target_dim is None or val.dim in (None, _POLY):
            self._check_float_flow(value_node, val, target_dim,
                                   target_desc)
            return
        if val.dim != target_dim:
            if not self._suffix_covered(value_node, val):
                pair = {val.dim, target_dim}
                rule = "U403" if pair == {"bytes", "bits"} else "U402"
                self._flag(value_node, rule,
                           f"value inferred as {val.dim} flows into "
                           f"{target_desc} ({target_dim}) without "
                           f"conversion")
            return
        self._check_float_flow(value_node, val, target_dim, target_desc)

    def _check_float_flow(self, value_node: ast.expr, val: Val,
                          target_dim: Optional[str],
                          target_desc: str) -> None:
        """U404: tracked float reaching an integer-ns target by name."""
        if target_dim != "ns" or val.isfloat is not True:
            return
        if not isinstance(value_node, (ast.Name, ast.Attribute)):
            # Direct float expressions are U201's territory.
            return
        where = f" (float since line {val.origin_line})" \
            if val.origin_line else ""
        self._flag(value_node, "U404",
                   f"float-contaminated value flows into "
                   f"{target_desc}{where}; the clock contract is "
                   f"integer nanoseconds")

    # -- statement execution ----------------------------------------------

    def run(self) -> None:
        self._exec(self.node.body)

    def _exec(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            val = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, stmt.value, val, None)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                val = self._eval(stmt.value)
                self._assign(stmt.target, stmt.value, val,
                             stmt.annotation)
            else:
                key = self._key(stmt.target)
                if key is not None:
                    dim = self._declared_dim(stmt.target,
                                             stmt.annotation)
                    self.env[key] = Val(dim=dim)
        elif isinstance(stmt, ast.AugAssign):
            self._aug_assign(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                val = self._eval(stmt.value)
                if self.return_dim is not None:
                    self._check_flow_into(
                        stmt.value, val, self.return_dim,
                        f"the return of {self.node.name}()")
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_loop_target(stmt.target, stmt.iter)
            self._exec_branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._exec_branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._exec(stmt.body)
        elif isinstance(stmt, ast.Try):
            branches = [stmt.body + stmt.orelse]
            for handler in stmt.handlers:
                branches.append(handler.body)
            self._exec_branches(branches)
            self._exec(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # Nested scopes are visited separately by the pass.
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)

    def _exec_branches(self,
                       branches: Sequence[Sequence[ast.stmt]]) -> None:
        snapshots: List[Dict[str, Val]] = []
        base = dict(self.env)
        for branch in branches:
            self.env = dict(base)
            self._exec(branch)
            snapshots.append(self.env)
        if not any(branches):
            self.env = base
            return
        self.env = _merge_env(base, snapshots)

    def _bind_loop_target(self, target: ast.expr,
                          iterable: ast.expr) -> None:
        key = self._key(target)
        if key is None:
            return
        # A collection named with a unit suffix holds values of that
        # unit (``for rtt_ms in rtts_ms``).
        dim = name_dim(self._target_name(iterable)) \
            if isinstance(iterable, (ast.Name, ast.Attribute)) else None
        self.env[key] = Val(dim=dim)

    def _assign(self, target: ast.expr, value_node: ast.expr, val: Val,
                annotation: Optional[ast.expr]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, value_node, Val.unknown(), None)
            return
        key = self._key(target)
        declared = self._declared_dim(target, annotation)
        if declared is not None:
            self._check_flow_into(value_node, val, declared,
                                  f"'{self._target_name(target)}'")
        if key is not None:
            dim = declared if declared is not None else (
                None if val.dim == _POLY else val.dim)
            self.env[key] = Val(dim=dim, isfloat=val.isfloat,
                                origin_line=val.origin_line)

    def _aug_assign(self, stmt: ast.AugAssign) -> None:
        key = self._key(stmt.target)
        target_val = self._eval(stmt.target)
        value = self._eval(stmt.value)
        synthetic = ast.BinOp(left=stmt.target, op=stmt.op,
                              right=stmt.value)
        ast.copy_location(synthetic, stmt)
        if isinstance(stmt.op, (ast.Add, ast.Sub)):
            self._combine_linear(synthetic, target_val, value)
        if key is not None and key in self.env:
            declared = self.env[key].dim
            isfloat: Optional[bool]
            if isinstance(stmt.op, ast.Div):
                isfloat = True
            elif target_val.isfloat or value.isfloat:
                isfloat = True
            elif target_val.isfloat is False and value.isfloat is False:
                isfloat = False
            else:
                isfloat = None
            self.env[key] = Val(dim=declared, isfloat=isfloat,
                                origin_line=stmt.lineno
                                if isfloat else None)


class UnitPass:
    """Runs the U4xx inference over every function of one module."""

    def __init__(self, path: str, tree: ast.Module, module: str,
                 signatures: Optional[Dict[str, FuncSig]] = None) -> None:
        self.path = path
        self.tree = tree
        self.module = module
        self.imports = ImportMap(tree, module)
        own = collect_signatures(tree, module)
        if signatures:
            merged = dict(signatures)
            merged.update(own)
            self.signatures = merged
        else:
            self.signatures = own
        self.findings: List[Finding] = []

    def flag(self, node: ast.AST, rule_id: str, message: str) -> None:
        self.findings.append(Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
            end_line=getattr(node, "end_lineno", None),
        ))

    def run(self) -> List[Finding]:
        self._visit(self.tree.body, None)
        return self.findings

    def _visit(self, body: Sequence[ast.stmt],
               class_name: Optional[str]) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                self._visit(node.body, node.name)
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                _FunctionUnits(self, node, class_name).run()
                self._visit(node.body, None)
