"""Cebinae: scalable in-network fairness augmentation — a from-scratch
Python reproduction of the SIGCOMM 2022 paper.

Subpackages:

* :mod:`repro.core` — the Cebinae mechanism (LBF, control plane,
  parameters, resource model).
* :mod:`repro.netsim` — the discrete-event packet simulator substrate.
* :mod:`repro.tcp` — TCP machinery and the evaluated CCAs.
* :mod:`repro.heavyhitter` — the passive flow cache and trace tooling.
* :mod:`repro.fairness` — max-min allocations and fairness metrics.
* :mod:`repro.experiments` — the per-table/figure evaluation harness.
"""

from .core import (CebinaeControlPlane, CebinaeParams, CebinaeQueueDisc,
                   FlowGroup, LbfDecision, LeakyBucketFilter,
                   cebinae_factory, estimate_resources)
from .experiments import (Discipline, ScalePolicy, ScenarioSpec,
                          run_comparison, run_scenario)
from .fairness import (FlowSpec, jain_fairness_index, normalized_jfi,
                       water_filling)
from .heavyhitter import CebinaeFlowCache, SyntheticTrace
from .netsim import (Network, Simulator, build_dumbbell,
                     build_parking_lot)
from .tcp import connect_flow, make_cca

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CebinaeParams", "CebinaeQueueDisc", "CebinaeControlPlane",
    "LeakyBucketFilter", "FlowGroup", "LbfDecision", "cebinae_factory",
    "estimate_resources",
    "Simulator", "Network", "build_dumbbell", "build_parking_lot",
    "connect_flow", "make_cca",
    "CebinaeFlowCache", "SyntheticTrace",
    "FlowSpec", "water_filling", "jain_fairness_index",
    "normalized_jfi",
    "ScenarioSpec", "ScalePolicy", "Discipline", "run_scenario",
    "run_comparison",
]
