"""Adaptive parameter control (paper section 7, "fine-grained
adaptation to current network conditions").

The paper leaves τ static and notes that heuristics could "limit
unnecessary oscillations or selectively avoid penalties that cause
out-sized short-term fluctuations".  This module implements a simple,
safe version of that idea as a supervisor over a
:class:`~repro.core.control_plane.CebinaeControlPlane`:

* **Oscillation damping** — if the port's saturation state flaps
  (saturated↔unsaturated transitions above a rate threshold), the tax
  is reduced: the penalties themselves are destabilising utilisation.
* **Stagnation escalation** — if the port stays saturated with a
  persistently skewed ⊤ share (the taxed flows keep holding far more
  than the rest), the tax is increased toward a cap: the current rate
  isn't redistributing fast enough.

Both adjustments are multiplicative with hard bounds, so the supervisor
degenerates to static-τ behaviour in steady conditions — "conservative
values for all parameters result in a correct implementation" still
holds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..analysis.invariants import unwrap
from ..netsim.engine import Simulator
from .control_plane import CebinaeControlPlane
from .params import CebinaeParams

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..netsim.queues import QueueDisc
    from ..netsim.topology import PortSpec, QueueFactory
    from .units import Ratio, TimeNs


@dataclass
class AdaptiveTauConfig:
    """Bounds and gains for the τ supervisor."""

    min_tau: float = 0.005
    max_tau: float = 0.16
    #: Supervision period, in recomputation windows.
    window_recomputes: int = 8
    #: Saturation flap fraction above which τ is damped.
    flap_threshold: float = 0.45
    #: ⊤ bandwidth share above which τ is escalated (while saturated).
    skew_threshold: float = 0.7
    decrease_factor: float = 0.8
    increase_factor: float = 1.25


class AdaptiveTauController:
    """Periodically retunes τ on a live control-plane agent."""

    def __init__(self, sim: Simulator, agent: CebinaeControlPlane,
                 config: Optional[AdaptiveTauConfig] = None) -> None:
        self.sim = sim
        self.agent = agent
        self.config = config or AdaptiveTauConfig()
        self._last_seen = 0
        #: (time_ns, new_tau, reason) per retune.
        self.adjustments: List[Tuple[int, float, str]] = []
        if agent.history is None:
            raise ValueError(
                "the supervised agent must record history "
                "(record_history=True)")
        interval = (self.config.window_recomputes
                    * agent.params.recompute_interval_ns)
        self._interval_ns = interval
        self.sim.schedule(interval, self._supervise)

    @property
    def tau(self) -> Ratio:
        return self.agent.params.tau

    def _set_tau(self, new_tau: Ratio, reason: str) -> None:
        config = self.config
        new_tau = min(max(new_tau, config.min_tau), config.max_tau)
        if abs(new_tau - self.tau) < 1e-9:
            return
        # CebinaeParams is frozen: install a retuned copy (the
        # equivalent of a control-plane register write).
        self.agent.params = replace(self.agent.params, tau=new_tau)
        self.agent.qdisc.params = self.agent.params
        self.adjustments.append((self.sim.now_ns, new_tau, reason))

    def _supervise(self) -> None:
        # Non-None by the constructor's record_history check.
        history = unwrap(self.agent.history, "agent history vanished")
        window = history[self._last_seen:]
        self._last_seen = len(history)
        self.sim.schedule(self._interval_ns, self._supervise)
        if len(window) < 2:
            return
        flaps = sum(1 for prev, cur in zip(window, window[1:])
                    if prev.saturated != cur.saturated)
        flap_rate = flaps / (len(window) - 1)
        config = self.config
        if flap_rate > config.flap_threshold:
            self._set_tau(self.tau * config.decrease_factor,
                          "oscillation")
            return
        saturated = [s for s in window if s.saturated]
        if len(saturated) == len(window) and saturated:
            capacity = self.agent.capacity_bytes_per_sec
            skew = (sum(s.top_rate_bytes_per_sec for s in saturated)
                    / len(saturated)) / capacity
            if skew > config.skew_threshold:
                self._set_tau(self.tau * config.increase_factor,
                              "stagnation")


def adaptive_cebinae_factory(
        buffer_mtus: int = 100,
        max_rtt_ns: int = 100_000_000,
        config: Optional[AdaptiveTauConfig] = None,
        agents: Optional[List[CebinaeControlPlane]] = None,
        controllers: Optional[List[AdaptiveTauController]] = None,
        params: Optional[CebinaeParams] = None) -> "QueueFactory":
    """Queue factory installing Cebinae plus the τ supervisor."""
    from .control_plane import cebinae_factory

    def factory(spec: "PortSpec") -> "QueueDisc":
        local_agents: List[CebinaeControlPlane] = []
        qdisc = cebinae_factory(params=params, buffer_mtus=buffer_mtus,
                                max_rtt_ns=max_rtt_ns,
                                record_history=True,
                                agents=local_agents)(spec)
        controller = AdaptiveTauController(spec.sim, local_agents[0],
                                           config=config)
        if agents is not None:
            agents.extend(local_agents)
        if controllers is not None:
            controllers.append(controller)
        return qdisc

    return factory
