"""The paper's contribution: the Cebinae mechanism.

Parameters (Table 1), the two-queue leaky-bucket filter (Figure 5),
the per-port queue disc (Figure 3), the control-plane agent (Figures 4
and 6), and the Tofino resource model (Table 3).
"""

from .adaptive import (AdaptiveTauConfig, AdaptiveTauController,
                       adaptive_cebinae_factory)
from .units import (BITS_PER_BYTE, NS_PER_S, Bits, BitsPerSec, Bytes,
                    Ratio, Seconds, TimeNs, UnitError, bits_from_bytes,
                    bytes_from_bits, ns_from_seconds, ratio_of,
                    rate_from_volume, seconds_from_ns,
                    transmit_time_ns)
from .control_plane import (CebinaeControlPlane, ControlPlaneSample,
                            cebinae_factory)
from .perflow import (PerFlowCebinaeControlPlane,
                      PerFlowCebinaeQueueDisc,
                      perflow_cebinae_factory)
from .lbf import FlowGroup, LbfDecision, LeakyBucketFilter
from .params import CebinaeParams
from .queue_disc import CebinaeQueueDisc
from .resource_model import (CACHE_ENTRY_BYTES, TOFINO_PORTS,
                             ResourceUsage, estimate_resources,
                             queues_required)

__all__ = [
    "TimeNs", "Seconds", "Bytes", "Bits", "BitsPerSec", "Ratio",
    "UnitError", "NS_PER_S", "BITS_PER_BYTE",
    "ns_from_seconds", "seconds_from_ns", "bits_from_bytes",
    "bytes_from_bits", "rate_from_volume", "transmit_time_ns",
    "ratio_of",
    "CebinaeParams",
    "FlowGroup", "LbfDecision", "LeakyBucketFilter",
    "CebinaeQueueDisc",
    "CebinaeControlPlane", "ControlPlaneSample", "cebinae_factory",
    "PerFlowCebinaeQueueDisc", "PerFlowCebinaeControlPlane",
    "perflow_cebinae_factory",
    "AdaptiveTauController", "AdaptiveTauConfig",
    "adaptive_cebinae_factory",
    "ResourceUsage", "estimate_resources", "queues_required",
    "TOFINO_PORTS", "CACHE_ENTRY_BYTES",
]
