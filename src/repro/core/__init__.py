"""The paper's contribution: the Cebinae mechanism.

Parameters (Table 1), the two-queue leaky-bucket filter (Figure 5),
the per-port queue disc (Figure 3), the control-plane agent (Figures 4
and 6), and the Tofino resource model (Table 3).
"""

from .adaptive import (AdaptiveTauConfig, AdaptiveTauController,
                       adaptive_cebinae_factory)
from .control_plane import (CebinaeControlPlane, ControlPlaneSample,
                            cebinae_factory)
from .perflow import (PerFlowCebinaeControlPlane,
                      PerFlowCebinaeQueueDisc,
                      perflow_cebinae_factory)
from .lbf import FlowGroup, LbfDecision, LeakyBucketFilter
from .params import CebinaeParams
from .queue_disc import CebinaeQueueDisc
from .resource_model import (CACHE_ENTRY_BYTES, TOFINO_PORTS,
                             ResourceUsage, estimate_resources,
                             queues_required)

__all__ = [
    "CebinaeParams",
    "FlowGroup", "LbfDecision", "LeakyBucketFilter",
    "CebinaeQueueDisc",
    "CebinaeControlPlane", "ControlPlaneSample", "cebinae_factory",
    "PerFlowCebinaeQueueDisc", "PerFlowCebinaeControlPlane",
    "perflow_cebinae_factory",
    "AdaptiveTauController", "AdaptiveTauConfig",
    "adaptive_cebinae_factory",
    "ResourceUsage", "estimate_resources", "queues_required",
    "TOFINO_PORTS", "CACHE_ENTRY_BYTES",
]
