"""Cebinae's control-plane agent (paper Figure 4 and the Figure 6
timeline).

Per round of length ``dT``:

* at ``t0`` the data plane rotates queue priorities (modelled as the
  ROTATE packet-generator event);
* the control plane then has the window ``[t0 + vdT, t0 + vdT + L]`` —
  after the retired queue has provably drained — to fix the retired
  queue's rates and apply membership/phase changes.  We model the
  deadline by applying all changes atomically at ``t0 + vdT + L``.

Every ``P`` rounds the agent recomputes (Figure 4 lines 8-28): it reads
the port byte counter to classify saturation against ``1 - δp``, polls
and resets the flow cache, selects the ⊤ set within ``δf`` of the
maximum flow, and taxes the group's aggregate rate by ``τ``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set

from ..heavyhitter.hashpipe import select_bottlenecked
from ..netsim.engine import SECOND, Simulator
from ..netsim.packet import FlowId
from .params import CebinaeParams
from .queue_disc import CebinaeQueueDisc

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..netsim.topology import QueueFactory


@dataclass
class ControlPlaneSample:
    """One recomputation's observations (Figure 1's background shading)."""

    time_ns: int
    utilization: float
    saturated: bool
    top_flows: Set[FlowId] = field(default_factory=set)
    top_rate_bytes_per_sec: float = 0.0
    bottom_rate_bytes_per_sec: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready payload; ``top_flows`` is sorted so the output
        is byte-identical across processes (set iteration order is
        not)."""
        return {
            "time_ns": self.time_ns,
            "utilization": self.utilization,
            "saturated": self.saturated,
            "top_flows": sorted(list(flow) for flow in self.top_flows),
            "top_rate_bytes_per_sec": self.top_rate_bytes_per_sec,
            "bottom_rate_bytes_per_sec": self.bottom_rate_bytes_per_sec,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ControlPlaneSample":
        return cls(
            time_ns=data["time_ns"],
            utilization=data["utilization"],
            saturated=data["saturated"],
            top_flows={FlowId(*flow) for flow in data["top_flows"]},
            top_rate_bytes_per_sec=data["top_rate_bytes_per_sec"],
            bottom_rate_bytes_per_sec=data["bottom_rate_bytes_per_sec"],
        )


class CebinaeControlPlane:
    """The per-port agent driving rotation and reconfiguration."""

    def __init__(self, sim: Simulator, qdisc: CebinaeQueueDisc,
                 record_history: bool = False) -> None:
        self.sim = sim
        self.qdisc = qdisc
        self.params: CebinaeParams = qdisc.params
        self.capacity_bytes_per_sec = qdisc.rate_bps / 8.0
        self.round_counter = 0
        self._last_port_bytes = 0
        # Pending configuration, installed on each retired queue.
        self._pending_top_rate = self.capacity_bytes_per_sec
        self._pending_bottom_rate = self.capacity_bytes_per_sec
        self._pending_membership: Optional[Set[FlowId]] = None
        self._pending_saturated: Optional[bool] = None
        self.history: Optional[List[ControlPlaneSample]] = (
            [] if record_history else None)
        self.recomputations = 0
        # Bootstrap the round schedule: first rotation after one dT.
        self.sim.schedule(self.params.dt_ns, self._on_rotate)

    # -- the per-round loop ---------------------------------------------------
    def _on_rotate(self) -> None:
        retired = self.qdisc.rotate()
        self.round_counter += 1
        delay = self.params.vdt_ns + self.params.l_ns
        self.sim.schedule(delay, self._apply_config, retired)
        self.sim.schedule(self.params.dt_ns, self._on_rotate)

    def _apply_config(self, retired_queue: int) -> None:
        """End of the control window: all changes become visible."""
        if self.round_counter % self.params.recompute_rounds == 0:
            self._recompute()
        if self._pending_saturated is not None:
            capacity = self.capacity_bytes_per_sec
            self.qdisc.set_saturated(
                self._pending_saturated,
                top_share=self._pending_top_rate / capacity,
                bottom_share=self._pending_bottom_rate / capacity)
            self._pending_saturated = None
        if self._pending_membership is not None:
            self.qdisc.set_membership(self._pending_membership)
            self._pending_membership = None
        self.qdisc.lbf.set_queue_rates(retired_queue,
                                       self._pending_top_rate,
                                       self._pending_bottom_rate)

    # -- the every-P-rounds recomputation -----------------------------------------
    def _recompute(self) -> None:
        self.recomputations += 1
        params = self.params
        window_sec = params.recompute_interval_ns / SECOND
        byte_count = self.qdisc.port_tx_bytes - self._last_port_bytes
        self._last_port_bytes = self.qdisc.port_tx_bytes
        utilization = byte_count / (self.capacity_bytes_per_sec
                                    * window_sec)
        # Poll-and-reset every window so counts always span P*dT.
        flow_bytes = self.qdisc.cache.poll_and_reset()
        if utilization < 1.0 - params.delta_port:
            self._configure_unsaturated(utilization)
            return
        top, bottleneck_bytes = select_bottlenecked(flow_bytes,
                                                    params.delta_flow)
        taxed_bytes = bottleneck_bytes * (1.0 - params.tau)
        top_rate = taxed_bytes / window_sec
        top_rate = min(top_rate, self.capacity_bytes_per_sec)
        bottom_rate = self.capacity_bytes_per_sec - top_rate
        floor = params.min_bottom_rate_fraction * \
            self.capacity_bytes_per_sec
        if bottom_rate < floor:
            bottom_rate = floor
            top_rate = self.capacity_bytes_per_sec - floor
        self._pending_top_rate = top_rate
        self._pending_bottom_rate = bottom_rate
        self._pending_membership = top
        self._pending_saturated = True
        self._record(utilization, True, top, top_rate, bottom_rate)

    def _configure_unsaturated(self, utilization: float) -> None:
        """Release all limits so any flow may claim the headroom."""
        self._pending_top_rate = self.capacity_bytes_per_sec
        self._pending_bottom_rate = self.capacity_bytes_per_sec
        self._pending_membership = set()
        self._pending_saturated = False
        self._record(utilization, False, set(),
                     self.capacity_bytes_per_sec,
                     self.capacity_bytes_per_sec)

    def _record(self, utilization: float, saturated: bool,
                top: Set[FlowId], top_rate: float,
                bottom_rate: float) -> None:
        if self.history is None:
            return
        self.history.append(ControlPlaneSample(
            time_ns=self.sim.now_ns, utilization=utilization,
            saturated=saturated, top_flows=set(top),
            top_rate_bytes_per_sec=top_rate,
            bottom_rate_bytes_per_sec=bottom_rate))


def cebinae_factory(params: Optional[CebinaeParams] = None,
                    buffer_mtus: int = 100,
                    max_rtt_ns: int = 100_000_000,
                    record_history: bool = False,
                    agents: Optional[List["CebinaeControlPlane"]] = None
                    ) -> "QueueFactory":
    """Queue factory installing Cebinae (data plane + agent) on a port.

    When ``params`` is None, timing parameters are derived per port from
    its rate and buffer via :meth:`CebinaeParams.for_link`.  Created
    control-plane agents are appended to ``agents`` (when given) so
    experiments can inspect their histories.
    """
    from ..netsim.packet import MTU_BYTES
    from ..netsim.topology import PortSpec

    def factory(spec: PortSpec) -> CebinaeQueueDisc:
        buffer_bytes = buffer_mtus * MTU_BYTES
        port_params = params
        if port_params is None:
            port_params = CebinaeParams.for_link(
                spec.rate_bps, buffer_bytes, max_rtt_ns=max_rtt_ns)
        qdisc = CebinaeQueueDisc(spec.sim, port_params, spec.rate_bps,
                                 buffer_bytes, name=spec.name)
        agent = CebinaeControlPlane(spec.sim, qdisc,
                                    record_history=record_history)
        if agents is not None:
            agents.append(agent)
        return qdisc

    return factory
