"""Cebinae's control-plane agent (paper Figure 4 and the Figure 6
timeline).

Per round of length ``dT``:

* at ``t0`` the data plane rotates queue priorities (modelled as the
  ROTATE packet-generator event);
* the control plane then has the window ``[t0 + vdT, t0 + vdT + L]`` —
  after the retired queue has provably drained — to fix the retired
  queue's rates and apply membership/phase changes.  We model the
  deadline by applying all changes atomically at ``t0 + vdT + L``.

Every ``P`` rounds the agent recomputes (Figure 4 lines 8-28): it reads
the port byte counter to classify saturation against ``1 - δp``, polls
and resets the flow cache, selects the ⊤ set within ``δf`` of the
maximum flow, and taxes the group's aggregate rate by ``τ``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set

from ..heavyhitter.hashpipe import select_bottlenecked
from ..netsim.engine import SECOND, Simulator
from ..netsim.packet import FlowId
from ..obs import bus as obs_bus
from ..obs import spans as obs_spans
from ..obs.events import ControlRound, sorted_flow_strings
from .params import CebinaeParams
from .queue_disc import CebinaeQueueDisc

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..faults.schedule import ControlPlaneFaults
    from ..netsim.topology import QueueFactory
    from .units import Ratio, TimeNs


@dataclass
class ControlPlaneSample:
    """One recomputation's observations (Figure 1's background shading)."""

    time_ns: TimeNs
    utilization: Ratio
    saturated: bool
    top_flows: Set[FlowId] = field(default_factory=set)
    top_rate_bytes_per_sec: float = 0.0
    bottom_rate_bytes_per_sec: float = 0.0
    #: True when the port failed open at least once since the previous
    #: recomputation (fault injection only; see repro.faults).
    degraded: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready payload; ``top_flows`` is sorted so the output
        is byte-identical across processes (set iteration order is
        not).  ``degraded`` is emitted only when set, so fault-free runs
        stay byte-identical to payloads from before fault injection
        existed."""
        data: Dict[str, Any] = {
            "time_ns": self.time_ns,
            "utilization": self.utilization,
            "saturated": self.saturated,
            "top_flows": sorted(list(flow) for flow in self.top_flows),
            "top_rate_bytes_per_sec": self.top_rate_bytes_per_sec,
            "bottom_rate_bytes_per_sec": self.bottom_rate_bytes_per_sec,
        }
        if self.degraded:
            data["degraded"] = True
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ControlPlaneSample":
        return cls(
            time_ns=data["time_ns"],
            utilization=data["utilization"],
            saturated=data["saturated"],
            top_flows={FlowId(*flow) for flow in data["top_flows"]},
            top_rate_bytes_per_sec=data["top_rate_bytes_per_sec"],
            bottom_rate_bytes_per_sec=data["bottom_rate_bytes_per_sec"],
            degraded=data.get("degraded", False),
        )


class CebinaeControlPlane:
    """The per-port agent driving rotation and reconfiguration."""

    def __init__(self, sim: Simulator, qdisc: CebinaeQueueDisc,
                 record_history: bool = False,
                 faults: Optional["ControlPlaneFaults"] = None) -> None:
        self.sim = sim
        self.qdisc = qdisc
        self.params: CebinaeParams = qdisc.params
        self.capacity_bytes_per_sec = qdisc.rate_bps / 8.0
        self.round_counter = 0
        self._last_port_bytes = 0
        # Fault injection: when an oracle is installed it is consulted
        # once per rotation; a verdict of "reconfiguration misses the
        # deadline L" triggers graceful degradation (see _miss_deadline).
        self.faults = faults
        self.deadline_misses = 0
        self.dropped_reconfigs = 0
        self.failopen_rounds = 0
        self._degraded_since_record = False
        # Pending configuration, installed on each retired queue.
        self._pending_top_rate = self.capacity_bytes_per_sec
        self._pending_bottom_rate = self.capacity_bytes_per_sec
        self._pending_membership: Optional[Set[FlowId]] = None
        self._pending_saturated: Optional[bool] = None
        self.history: Optional[List[ControlPlaneSample]] = (
            [] if record_history else None)
        self.recomputations = 0
        # Observability: one ControlRound record per applied (or
        # missed) reconfiguration.  Bound once; None when the topic is
        # off.  ``_last_utilization`` remembers the most recent
        # recompute's reading so non-recompute rounds still report it.
        self._trace_round = obs_bus.emitter_for("control")
        # Span leaves: one ``round`` span per applied reconfiguration,
        # emitted directly (no stack frame) under whatever run/phase
        # span is open when the round lands.
        self._trace_span = obs_bus.emitter_for("span")
        self._last_utilization = 0.0
        # Bootstrap the round schedule: first rotation after one dT.
        self.sim.schedule(self.params.dt_ns, self._on_rotate)

    # -- the per-round loop ---------------------------------------------------
    def _on_rotate(self) -> None:
        retired = self.qdisc.rotate()
        self.round_counter += 1
        deadline = self.params.control_deadline_ns
        faults = self.faults
        if faults is not None:
            dropped, extra_ns = faults.draw(self.sim.now_ns)
            if dropped or extra_ns > 0:
                self._miss_deadline(retired, deadline, dropped, extra_ns)
                self.sim.schedule(self.params.dt_ns, self._on_rotate)
                return
        self.sim.schedule(deadline, self._apply_config, retired)
        self.sim.schedule(self.params.dt_ns, self._on_rotate)

    def _miss_deadline(self, retired_queue: int, deadline_ns: TimeNs,
                       dropped: bool, extra_ns: int) -> None:
        """This round's reconfiguration will not arrive by ``t0 + vdT + L``.

        The configuration computed for the retired queue is stale the
        moment the deadline passes.  With fail-open semantics (the
        default) the switch detects the miss at the deadline and
        degrades to pass-through FIFO for the rest of the round —
        fairness augmentation pauses, forwarding never does.  With
        fail-open disabled the stale configuration is applied *late*
        (the hazard the paper's deadline exists to avoid), or never, if
        the control message was dropped outright.
        """
        self.deadline_misses += 1
        if dropped:
            self.dropped_reconfigs += 1
        faults = self.faults
        if faults is not None and faults.fail_open:
            self.sim.schedule(deadline_ns, self._fail_open)
        elif not dropped:
            self.sim.schedule(deadline_ns + extra_ns,
                              self._apply_config, retired_queue)
        else:
            # Dropped outright with fail-open disabled: nothing else
            # will account for this round, so the timeline records the
            # hole here.
            trace = self._trace_round
            if trace is not None:
                trace(ControlRound(
                    time_ns=self.sim.now_ns, port=self.qdisc.name,
                    kind="missed", round_index=self.round_counter,
                    retired_queue=retired_queue,
                    saturated=self.qdisc.saturated,
                    utilization=self._last_utilization,
                    top_rate_bytes_per_sec=self._pending_top_rate,
                    bottom_rate_bytes_per_sec=self._pending_bottom_rate,
                    top_flows=sorted_flow_strings(self.qdisc.top_flows),
                    recomputed=False, fail_open=False))

    def _fail_open(self) -> None:
        """Deadline passed with no fresh configuration: degrade."""
        self.failopen_rounds += 1
        self._degraded_since_record = True
        self.qdisc.enter_fail_open()
        trace = self._trace_round
        if trace is not None:
            trace(ControlRound(
                time_ns=self.sim.now_ns, port=self.qdisc.name,
                kind="fail_open", round_index=self.round_counter,
                retired_queue=-1, saturated=self.qdisc.saturated,
                utilization=self._last_utilization,
                top_rate_bytes_per_sec=self._pending_top_rate,
                bottom_rate_bytes_per_sec=self._pending_bottom_rate,
                top_flows=sorted_flow_strings(self.qdisc.top_flows),
                recomputed=False, fail_open=True))

    def _apply_config(self, retired_queue: int) -> None:
        """End of the control window: all changes become visible."""
        trace_span = self._trace_span
        wall0 = obs_spans.wall_now() if trace_span is not None else 0.0
        if self.qdisc.fail_open:
            # A fresh configuration ends the degraded spell; the next
            # recompute (below or on a later round) re-converges rates.
            self.qdisc.exit_fail_open()
        recomputed = self.round_counter % self.params.recompute_rounds == 0
        if recomputed:
            self._recompute()
        if self._pending_saturated is not None:
            capacity = self.capacity_bytes_per_sec
            self.qdisc.set_saturated(
                self._pending_saturated,
                top_share=self._pending_top_rate / capacity,
                bottom_share=self._pending_bottom_rate / capacity)
            self._pending_saturated = None
        if self._pending_membership is not None:
            self.qdisc.set_membership(self._pending_membership)
            self._pending_membership = None
        self.qdisc.lbf.set_queue_rates(retired_queue,
                                       self._pending_top_rate,
                                       self._pending_bottom_rate)
        trace = self._trace_round
        if trace is not None:
            trace(ControlRound(
                time_ns=self.sim.now_ns, port=self.qdisc.name,
                kind="config", round_index=self.round_counter,
                retired_queue=retired_queue,
                saturated=self.qdisc.saturated,
                utilization=self._last_utilization,
                top_rate_bytes_per_sec=self._pending_top_rate,
                bottom_rate_bytes_per_sec=self._pending_bottom_rate,
                top_flows=sorted_flow_strings(self.qdisc.top_flows),
                recomputed=recomputed, fail_open=False))
        if trace_span is not None:
            obs_spans.emit_leaf(
                trace_span, "round", "control-round", self.sim.now_ns,
                obs_spans.wall_now() - wall0, count=self.round_counter)

    # -- the every-P-rounds recomputation -----------------------------------------
    def _recompute(self) -> None:
        self.recomputations += 1
        params = self.params
        window_sec = params.recompute_interval_ns / SECOND
        byte_count = self.qdisc.port_tx_bytes - self._last_port_bytes
        self._last_port_bytes = self.qdisc.port_tx_bytes
        utilization = byte_count / (self.capacity_bytes_per_sec
                                    * window_sec)
        self._last_utilization = utilization
        # Poll-and-reset every window so counts always span P*dT.
        flow_bytes = self.qdisc.cache.poll_and_reset()
        if utilization < 1.0 - params.delta_port:
            self._configure_unsaturated(utilization)
            return
        top, bottleneck_bytes = select_bottlenecked(flow_bytes,
                                                    params.delta_flow)
        taxed_bytes = bottleneck_bytes * (1.0 - params.tau)
        top_rate = taxed_bytes / window_sec
        top_rate = min(top_rate, self.capacity_bytes_per_sec)
        bottom_rate = self.capacity_bytes_per_sec - top_rate
        floor = params.min_bottom_rate_fraction * \
            self.capacity_bytes_per_sec
        if bottom_rate < floor:
            bottom_rate = floor
            top_rate = self.capacity_bytes_per_sec - floor
        self._pending_top_rate = top_rate
        self._pending_bottom_rate = bottom_rate
        self._pending_membership = top
        self._pending_saturated = True
        self._record(utilization, True, top, top_rate, bottom_rate)

    def _configure_unsaturated(self, utilization: Ratio) -> None:
        """Release all limits so any flow may claim the headroom."""
        self._pending_top_rate = self.capacity_bytes_per_sec
        self._pending_bottom_rate = self.capacity_bytes_per_sec
        self._pending_membership = set()
        self._pending_saturated = False
        self._record(utilization, False, set(),
                     self.capacity_bytes_per_sec,
                     self.capacity_bytes_per_sec)

    def _record(self, utilization: Ratio, saturated: bool,
                top: Set[FlowId], top_rate: float,
                bottom_rate: float) -> None:
        if self.history is None:
            return
        degraded = self._degraded_since_record
        self._degraded_since_record = False
        self.history.append(ControlPlaneSample(
            time_ns=self.sim.now_ns, utilization=utilization,
            saturated=saturated, top_flows=set(top),
            top_rate_bytes_per_sec=top_rate,
            bottom_rate_bytes_per_sec=bottom_rate,
            degraded=degraded))


def cebinae_factory(params: Optional[CebinaeParams] = None,
                    buffer_mtus: int = 100,
                    max_rtt_ns: int = 100_000_000,
                    record_history: bool = False,
                    agents: Optional[List["CebinaeControlPlane"]] = None,
                    cp_faults: Optional["ControlPlaneFaults"] = None
                    ) -> "QueueFactory":
    """Queue factory installing Cebinae (data plane + agent) on a port.

    When ``params`` is None, timing parameters are derived per port from
    its rate and buffer via :meth:`CebinaeParams.for_link`.  Created
    control-plane agents are appended to ``agents`` (when given) so
    experiments can inspect their histories.  ``cp_faults`` installs a
    deadline oracle on every created agent (ports are created in
    deterministic topology order, so sharing one oracle keeps its draw
    sequence reproducible).
    """
    from ..netsim.packet import MTU_BYTES
    from ..netsim.topology import PortSpec

    def factory(spec: PortSpec) -> CebinaeQueueDisc:
        buffer_bytes = buffer_mtus * MTU_BYTES
        port_params = params
        if port_params is None:
            port_params = CebinaeParams.for_link(
                spec.rate_bps, buffer_bytes, max_rtt_ns=max_rtt_ns)
        qdisc = CebinaeQueueDisc(spec.sim, port_params, spec.rate_bps,
                                 buffer_bytes, name=spec.name)
        agent = CebinaeControlPlane(spec.sim, qdisc,
                                    record_history=record_history,
                                    faults=cp_faults)
        if agents is not None:
            agents.append(agent)
        return qdisc

    return factory
