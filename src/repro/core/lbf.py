"""Cebinae's two-queue leaky-bucket filter (paper Figure 5).

This module is the pure arithmetic of the data plane's admission
decision, independent of the simulator: given a flow group (⊤ or ⊥),
a packet size and the current time, decide whether the packet belongs
in the current round's queue (``headq``), the next round's queue
(``¬headq``, i.e. injected delay), or nowhere (injected loss).

The state per group is a single byte counter ``bytes[g]`` tracking the
group's consumption against its rate allocation.  Two mechanisms from
the paper shape the counter:

* **Virtual rounds** (``vdT``): before adding a packet, the counter is
  raised to at least ``aggregate_size`` — the bytes the group *would*
  have sent had it transmitted exactly at its allocated rate up to the
  current virtual round.  A group that idles early in a round therefore
  forfeits that credit and cannot catch up in one burst at the end
  (Figure 5 lines 14-22).
* **Rotation** (every ``dT``): the counter is decremented by one
  round's allocation, the round origin advances, and the queue
  priorities flip (lines 8-12).

Per the pseudocode, the counter update *commits even when the packet is
dropped* (the hardware cannot undo the register write); tests cover
this behaviour and experiments show TCP's backoff makes it benign.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Dict, List

from ..netsim.engine import SECOND
from .params import CebinaeParams

if TYPE_CHECKING:
    from .units import BitsPerSec, Bytes, TimeNs


class FlowGroup(enum.Enum):
    """The two-way classification at the heart of Cebinae's scalability."""

    TOP = "top"        # ⊤: bottlenecked at this port.
    BOTTOM = "bottom"  # ⊥: not bottlenecked here; allowed to grow.


class LbfDecision(enum.Enum):
    """Outcome of an admission check."""

    HEAD = "head"    # Within this round's allocation.
    TAIL = "tail"    # Delayed into the next round's queue.
    DROP = "drop"    # Past both rounds' allocations.


class LeakyBucketFilter:
    """The per-port LBF state machine."""

    def __init__(self, params: CebinaeParams,
                 capacity_bps: BitsPerSec) -> None:
        self.params = params
        self.capacity_bytes_per_sec = capacity_bps / 8.0
        # Derived constants, hoisted off the per-packet admit path.
        # CebinaeParams is frozen, so these cannot go stale; each is
        # computed with the exact expression the admit path used
        # inline, keeping admission decisions bit-identical.
        self._dt_ns = params.dt_ns
        self._vdt_ns = params.vdt_ns
        self._two_dt_ns = 2 * params.dt_ns
        self._dt_sec = params.dt_ns / SECOND
        self._rounds_per_dt = params.dt_ns // params.vdt_ns
        self._capacity_dt_bytes = \
            self.capacity_bytes_per_sec * params.dt_ns / SECOND
        self.headq = 0
        self.base_round_time_ns = 0
        self.round_time_ns = 0
        self.bytes: Dict[FlowGroup, float] = {
            FlowGroup.TOP: 0.0, FlowGroup.BOTTOM: 0.0}
        # rates[queue_index][group] in bytes/second.  Until the control
        # plane says otherwise, both groups may use the full capacity.
        self.rates: List[Dict[FlowGroup, float]] = [
            {FlowGroup.TOP: self.capacity_bytes_per_sec,
             FlowGroup.BOTTOM: self.capacity_bytes_per_sec},
            {FlowGroup.TOP: self.capacity_bytes_per_sec,
             FlowGroup.BOTTOM: self.capacity_bytes_per_sec},
        ]
        # The aggregate counter for phase changes (section 4.3,
        # "Supporting phase changes"): same arithmetic, full capacity.
        self.total_bytes = 0.0
        self.rotations = 0

    # -- helpers -----------------------------------------------------------
    def _advance_virtual_round(self, now_ns: TimeNs) -> None:
        vdt = self._vdt_ns
        if now_ns >= self.round_time_ns + vdt:
            self.round_time_ns = now_ns - (now_ns % vdt)

    def _aggregate_size(self, rate_head: float, rate_tail: float) -> float:
        """Credit line: bytes allowed by now at the allocated rates."""
        vdt = self._vdt_ns
        dt = self._dt_ns
        rounds_per_dt = self._rounds_per_dt
        relative_round = (self.round_time_ns
                          - self.base_round_time_ns) // vdt
        if relative_round < rounds_per_dt:
            return rate_head * relative_round * vdt / SECOND
        # Past the current physical round but ROTATE not yet processed:
        # bill the overflow against the next round's rate.
        relative_round = min(relative_round, 2 * rounds_per_dt)
        return (rate_head * dt / SECOND
                + (relative_round - rounds_per_dt) * rate_tail
                * vdt / SECOND)

    def queue_for(self, decision: LbfDecision) -> int:
        """Physical queue index for an admission decision."""
        if decision is LbfDecision.HEAD:
            return self.headq
        if decision is LbfDecision.TAIL:
            return 1 - self.headq
        raise ValueError("dropped packets have no queue")

    # -- data plane operations ------------------------------------------------
    def admit(self, group: FlowGroup, size_bytes: Bytes,
              now_ns: TimeNs) -> LbfDecision:
        """Figure 5 lines 13-33 for a saturated port."""
        self._advance_virtual_round(now_ns)
        rate_head = self.rates[self.headq][group]
        rate_tail = self.rates[1 - self.headq][group]
        aggregate = self._aggregate_size(rate_head, rate_tail)
        level = max(self.bytes[group], aggregate) + size_bytes
        self.bytes[group] = level
        dt_sec = self._dt_sec
        past_head = level - rate_head * dt_sec
        past_tail = past_head - rate_tail * dt_sec
        if past_head <= 0:
            return LbfDecision.HEAD
        if past_tail <= 0:
            return LbfDecision.TAIL
        return LbfDecision.DROP

    def admit_aggregate(self, size_bytes: Bytes,
                        now_ns: TimeNs) -> LbfDecision:
        """The unsaturated-phase filter over all traffic at capacity."""
        self._advance_virtual_round(now_ns)
        capacity = self.capacity_bytes_per_sec
        relative_ns = self.round_time_ns - self.base_round_time_ns
        aggregate = capacity * min(relative_ns, self._two_dt_ns) / SECOND
        level = max(self.total_bytes, aggregate) + size_bytes
        self.total_bytes = level
        dt_bytes = self._capacity_dt_bytes
        if level - dt_bytes <= 0:
            return LbfDecision.HEAD
        if level - 2 * dt_bytes <= 0:
            return LbfDecision.TAIL
        return LbfDecision.DROP

    def track_total(self, size_bytes: Bytes) -> None:
        """Track the aggregate counter while the per-group filter runs."""
        self.total_bytes += size_bytes

    def rotate(self, now_ns: TimeNs) -> int:
        """Figure 5 lines 8-12.  Returns the queue index just retired.

        The retired queue (the old ``headq``) is guaranteed drained by
        the Equation (2) bound and becomes the new ``¬headq``, eligible
        for a rate update during the control window.
        """
        dt_sec = self._dt_sec
        for group in FlowGroup:
            last_rate = self.rates[self.headq][group]
            self.bytes[group] = max(
                self.bytes[group] - last_rate * dt_sec, 0.0)
        self.total_bytes = max(
            self.total_bytes - self.capacity_bytes_per_sec * dt_sec, 0.0)
        self.base_round_time_ns += self.params.dt_ns
        retired = self.headq
        self.headq = 1 - self.headq
        self.rotations += 1
        return retired

    # -- control plane operations ----------------------------------------------
    def set_queue_rates(self, queue_index: int, top_bytes_per_sec: float,
                        bottom_bytes_per_sec: float) -> None:
        """Fix the rates of a drained queue (only legal on ¬headq)."""
        if queue_index == self.headq:
            raise ValueError(
                "rates may only change on the drained (non-head) queue")
        self.rates[queue_index][FlowGroup.TOP] = top_bytes_per_sec
        self.rates[queue_index][FlowGroup.BOTTOM] = bottom_bytes_per_sec

    def bootstrap_from_total(self, top_share: float,
                             bottom_share: float) -> None:
        """Unsaturated→saturated hand-off (section 4.3).

        Each group's counter starts from its proportional share of the
        aggregate counter (``bytes[f] = total_bytes · rate[f]/BW``) so
        the phase change neither grants a free burst nor bills either
        group for the other's history.
        """
        self.bytes[FlowGroup.TOP] = self.total_bytes * min(top_share, 1.0)
        self.bytes[FlowGroup.BOTTOM] = self.total_bytes * \
            min(bottom_share, 1.0)

    def reset_group_counters(self) -> None:
        """Clear per-group state when filtering is released."""
        self.bytes[FlowGroup.TOP] = 0.0
        self.bytes[FlowGroup.BOTTOM] = 0.0

    # -- introspection -----------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The filter's full state as a JSON-ready dict.

        Used by the observability layer (metrics gauges, control-plane
        timeline) and by tests that want to assert on LBF state without
        reaching into attributes.  Keys are stable; iteration follows
        the ``FlowGroup`` definition order, so output is deterministic.
        """
        return {
            "headq": self.headq,
            "rotations": self.rotations,
            "round_time_ns": self.round_time_ns,
            "base_round_time_ns": self.base_round_time_ns,
            "bytes": {group.value: self.bytes[group]
                      for group in FlowGroup},
            "rates_bytes_per_sec": [
                {group.value: queue_rates[group] for group in FlowGroup}
                for queue_rates in self.rates],
            "total_bytes": self.total_bytes,
        }
