"""Cebinae's configurable parameters (paper Table 1 and section 4.4).

==========  =============================================================
Parameter   Meaning
==========  =============================================================
``δp``      Port-saturation threshold: a port is saturated when its
            measured utilisation exceeds ``1 - δp``.
``δf``      Flow-bottleneck threshold: flows within ``δf`` of the
            maximum observed rate are classified ⊤ (bottlenecked).
``τ``       The Cebinae tax: the fraction of the ⊤ group's measured
            bandwidth withheld each recomputation to make room for ⊥
            flows to grow.
``P``       Number of ``dT`` rounds between utilisation/rate
            recomputations; ``P·dT`` should cover the network's largest
            RTT so measurements average over burst timescales.
``L``       The control plane's per-round reconfiguration deadline.
``dT``      Physical-queue round duration: each of the two priority
            queues represents a ``dT``-sized time bucket.
``vdT``     Virtual-round duration inside a physical round, limiting
            end-of-round catch-up bursts.
==========  =============================================================

Constraints enforced here (section 4.4):

* ``vdT < dT`` and ``L ≤ dT - vdT`` (the queue rotation must fit);
* Equation (2): ``(dT - (vdT + L)) · BW ≥ buffer`` so that even a
  buffer-filling burst arriving right before ``t0 + vdT + L`` can be
  admitted — checked per link by :meth:`CebinaeParams.validate_for_link`.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, Mapping

from ..netsim.engine import MICROSECOND, MILLISECOND, SECOND

if TYPE_CHECKING:
    from .units import BitsPerSec, Bytes, Ratio, TimeNs


@dataclass(frozen=True)
class CebinaeParams:
    """One Cebinae router configuration.

    The defaults follow the paper's robust setting: δp = δf = τ = 1%.
    Timing parameters have no universal default — derive them from link
    characteristics with :meth:`for_link`.
    """

    delta_port: Ratio = 0.01
    delta_flow: Ratio = 0.01
    tau: Ratio = 0.01
    dt_ns: TimeNs = 50 * MILLISECOND
    vdt_ns: TimeNs = 100 * MICROSECOND
    l_ns: TimeNs = 100 * MICROSECOND
    recompute_rounds: int = 1          # P.
    ecn_marking: bool = True
    cache_stages: int = 2
    cache_slots: int = 2048
    use_exact_cache: bool = False
    #: Scale-compensation floor on the ⊥ group's rate, as a fraction of
    #: capacity.  At the paper's link speeds the post-tax headroom
    #: (≥ τ·C) always exceeds TCP's minimum operating rate (~2 MSS/RTT),
    #: so flows squeezed to ⊥ can always restart; in bandwidth-scaled
    #: simulations that implicit floor disappears and a starved flow can
    #: enter an RTO death spiral.  0.0 disables the floor (the paper's
    #: literal algorithm).
    min_bottom_rate_fraction: Ratio = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.delta_port <= 1.0:
            raise ValueError("delta_port must be in [0, 1]")
        if not 0.0 <= self.delta_flow <= 1.0:
            raise ValueError("delta_flow must be in [0, 1]")
        if not 0.0 <= self.tau <= 1.0:
            raise ValueError("tau must be in [0, 1]")
        if self.vdt_ns <= 0 or self.dt_ns <= 0 or self.l_ns < 0:
            raise ValueError("timing parameters must be positive")
        if self.vdt_ns >= self.dt_ns:
            raise ValueError("vdT must be smaller than dT")
        if self.l_ns > self.dt_ns - self.vdt_ns:
            raise ValueError("L must satisfy L <= dT - vdT")
        if self.recompute_rounds < 1:
            raise ValueError("P (recompute_rounds) must be >= 1")
        if not 0.0 <= self.min_bottom_rate_fraction < 1.0:
            raise ValueError(
                "min_bottom_rate_fraction must be in [0, 1)")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready payload (field name → primitive value)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CebinaeParams":
        """Rebuild parameters from :meth:`to_dict` output (strict)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown CebinaeParams keys: {unknown}")
        return cls(**dict(data))

    @property
    def recompute_interval_ns(self) -> TimeNs:
        """``P · dT``: the measurement window for saturation and rates."""
        return self.recompute_rounds * self.dt_ns

    @property
    def control_deadline_ns(self) -> TimeNs:
        """``vdT + L``: the reconfiguration deadline, relative to ``t0``.

        A round whose reconfiguration is not applied by
        ``t0 + control_deadline_ns`` is *stale* (paper section 4.4); the
        agent detects this and fails open rather than installing rates
        computed for a window that has already closed.  (A property, not
        a field: adding a dataclass field would change every cached
        :class:`~repro.experiments.parallel.RunSpec` fingerprint.)
        """
        return self.vdt_ns + self.l_ns

    def min_dt_ns(self, rate_bps: BitsPerSec,
              buffer_bytes: Bytes) -> TimeNs:
        """Equation (2) lower bound on dT for a given port."""
        drain_ns = int(math.ceil(buffer_bytes * 8 * SECOND / rate_bps))
        return drain_ns + self.vdt_ns + self.l_ns

    def validate_for_link(self, rate_bps: BitsPerSec,
                          buffer_bytes: Bytes) -> None:
        """Raise if Equation (2) is violated for this port."""
        minimum = self.min_dt_ns(rate_bps, buffer_bytes)
        if self.dt_ns < minimum:
            raise ValueError(
                f"dT={self.dt_ns}ns violates Equation (2): needs >= "
                f"{minimum}ns for {rate_bps / 1e6:.1f} Mbps with "
                f"{buffer_bytes} B of buffer")

    @classmethod
    def for_link(cls, rate_bps: BitsPerSec, buffer_bytes: Bytes,
                 max_rtt_ns: TimeNs = 100 * MILLISECOND,
                 **overrides) -> "CebinaeParams":
        """Derive dT/vdT/L/P from link characteristics (section 4.4).

        ``vdT`` is set to a small fraction of ``dT`` (the paper wants
        the data-plane clock precision; in simulation the limit is
        pointless, so we use dT/256 with a 10 µs floor), ``L`` likewise
        (the multi-round control plane makes the effective L tiny), and
        ``dT`` to the Equation (2) bound.  ``P`` is the smallest integer
        with ``P·dT`` covering the largest RTT.
        """
        drain_ns = int(math.ceil(buffer_bytes * 8 * SECOND / rate_bps))
        vdt_ns = max(drain_ns // 256, 10 * MICROSECOND)
        l_ns = vdt_ns
        dt_ns = drain_ns + vdt_ns + l_ns
        # Round dT up to a whole number of vdTs for clean virtual rounds.
        dt_ns = ((dt_ns + vdt_ns - 1) // vdt_ns) * vdt_ns
        recompute_rounds = max(1, math.ceil(max_rtt_ns / dt_ns))
        params = cls(dt_ns=dt_ns, vdt_ns=vdt_ns, l_ns=l_ns,
                     recompute_rounds=recompute_rounds)
        if overrides:
            params = replace(params, **overrides)
        params.validate_for_link(rate_bps, buffer_bytes)
        return params

    def convergence_steps(self, excess_ratio: float = 1.5) -> float:
        """Taxation steps to shrink a flow by ``excess_ratio``×.

        Section 3.2, example (2): a flow holding ``excess_ratio`` times
        its fair share converges in ``ln(1/excess) / ln(1-τ)`` steps
        (the paper's ``ln(2/3)/ln(1-τ)`` instance has excess 3/2).
        """
        if self.tau <= 0:
            return math.inf
        if self.tau >= 1:
            return 1.0
        return math.log(1.0 / excess_ratio) / math.log(1.0 - self.tau)
