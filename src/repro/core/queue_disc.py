"""The Cebinae queue disc: data-plane half of the per-router design.

This class glues the pieces of Figure 3 into a
:class:`~repro.netsim.queues.QueueDisc` that installs on a bottleneck
port:

* **Ingress classifier + LBF** (enqueue path): packets of ⊤ flows are
  matched in an exact table (no hash-collision false positives — the
  "never make unfairness worse" principle) and admitted through the
  :class:`~repro.core.lbf.LeakyBucketFilter` into one of two priority
  queues, delayed, or dropped.
* **Egress accounting** (transmit path): a per-port byte counter for
  saturation detection and the passive flow cache for bottleneck-flow
  detection.

The control plane half lives in
:class:`~repro.core.control_plane.CebinaeControlPlane`.
"""

from __future__ import annotations

import collections
from typing import TYPE_CHECKING, Deque, List, Optional, Set, Union

from ..heavyhitter.hashpipe import CebinaeFlowCache, ExactFlowCache
from ..netsim.engine import Simulator
from ..netsim.packet import FlowId, Packet
from ..netsim.queues import QueueDisc
from ..obs import bus as obs_bus
from ..obs.events import CacheUpdate, LbfDecisionEvent, LbfRotation
from .lbf import FlowGroup, LbfDecision, LeakyBucketFilter
from .params import CebinaeParams

if TYPE_CHECKING:
    from .units import BitsPerSec, Bytes, Ratio


class CebinaeQueueDisc(QueueDisc):
    """Two priority queues plus LBF admission and egress accounting."""

    def __init__(self, sim: Simulator, params: CebinaeParams,
                 rate_bps: BitsPerSec, buffer_bytes: Bytes,
                 name: str = "cebinae") -> None:
        super().__init__()
        params.validate_for_link(rate_bps, buffer_bytes)
        self.sim = sim
        self.params = params
        self.rate_bps = rate_bps
        self.buffer_bytes = buffer_bytes
        self.name = name
        self.lbf = LeakyBucketFilter(params, rate_bps)
        self._queues: List[Deque[Packet]] = [collections.deque(),
                                             collections.deque()]
        self._queue_bytes = [0, 0]
        #: The ⊤ membership table (exact match, installed by the CP).
        self.top_flows: Set[FlowId] = set()
        #: Whether the per-group filter is active (port saturated).
        self.saturated = False
        #: Egress pipeline: transmit byte counter and flow cache.
        self.port_tx_bytes = 0
        self.cache: Union[CebinaeFlowCache[FlowId],
                          ExactFlowCache[FlowId]]
        if params.use_exact_cache:
            self.cache = ExactFlowCache()
        else:
            self.cache = CebinaeFlowCache(
                stages=params.cache_stages,
                slots_per_stage=params.cache_slots)
        # Diagnostics.
        self.lbf_delays = 0
        self.lbf_drops = 0
        self.buffer_drops = 0
        self.ecn_marks = 0
        self.rotation_residue = 0
        # Graceful degradation: when the control plane misses its
        # deadline ``L`` the port *fails open* — packets bypass LBF
        # admission into the head queue (plain drop-tail FIFO), so a
        # faulty control plane can never stall the data plane.  The
        # agent clears the flag at the next successful reconfiguration.
        self.fail_open = False
        self.failopen_enqueues = 0
        # Observability: emitters bound once at construction (None when
        # the topic is off), so the disabled enqueue path pays one
        # attribute test.  The flow cache gets its trace hook through a
        # closure that stamps the simulation clock and port name the
        # cache itself does not hold.
        self._trace_lbf = obs_bus.emitter_for("lbf")
        cache_emit = obs_bus.emitter_for("hashpipe")
        if cache_emit is not None:
            def cache_trace(action: str, flow: FlowId, stage: int,
                            nbytes: int,
                            _emit: obs_bus.Emitter = cache_emit) -> None:
                _emit(CacheUpdate(time_ns=sim.now_ns, port=name,
                                  action=action, flow=str(flow),
                                  stage=stage, nbytes=nbytes))
            self.cache.trace = cache_trace

    # -- classification --------------------------------------------------------
    def group_of(self, flow: FlowId) -> FlowGroup:
        return FlowGroup.TOP if flow in self.top_flows else \
            FlowGroup.BOTTOM

    # -- ingress path ------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        if self.byte_length + packet.size_bytes > self.buffer_bytes:
            self.buffer_drops += 1
            self.record_drop(packet, reason="buffer")
            return False
        trace = self._trace_lbf
        if self.fail_open:
            # Degraded pass-through: straight into the head queue, no
            # LBF state updates (the rates are stale by definition).
            self.failopen_enqueues += 1
            queue_index = self.lbf.headq
            if trace is not None:
                trace(LbfDecisionEvent(
                    time_ns=self.sim.now_ns, port=self.name,
                    kind="failopen_enqueue", flow=str(packet.flow),
                    group="aggregate", size_bytes=packet.size_bytes,
                    queue_index=queue_index))
            queues = self._queues
            was_empty = not (queues[0] or queues[1])
            queues[queue_index].append(packet)
            self._queue_bytes[queue_index] += packet.size_bytes
            if was_empty:
                self.notify_waker()
            return True
        now = self.sim.now_ns
        if self.saturated:
            group = self.group_of(packet.flow)
            decision = self.lbf.admit(group, packet.size_bytes, now)
            self.lbf.track_total(packet.size_bytes)
            group_name = group.value
        else:
            decision = self.lbf.admit_aggregate(packet.size_bytes, now)
            group_name = "aggregate"
        if decision is LbfDecision.DROP:
            self.lbf_drops += 1
            if trace is not None:
                trace(LbfDecisionEvent(
                    time_ns=now, port=self.name, kind="drop",
                    flow=str(packet.flow), group=group_name,
                    size_bytes=packet.size_bytes, queue_index=-1))
            self.record_drop(packet, reason="lbf")
            return False
        if decision is LbfDecision.TAIL:
            self.lbf_delays += 1
            marked = self.params.ecn_marking and packet.mark_ce()
            if marked:
                self.ecn_marks += 1
            if trace is not None:
                trace(LbfDecisionEvent(
                    time_ns=now, port=self.name,
                    kind="mark" if marked else "delay",
                    flow=str(packet.flow), group=group_name,
                    size_bytes=packet.size_bytes,
                    queue_index=1 - self.lbf.headq))
        queue_index = self.lbf.queue_for(decision)
        queues = self._queues
        was_empty = not (queues[0] or queues[1])
        queues[queue_index].append(packet)
        self._queue_bytes[queue_index] += packet.size_bytes
        if was_empty:
            self.notify_waker()
        return True

    def _empty(self) -> bool:
        return not (self._queues[0] or self._queues[1])

    def dequeue(self) -> Optional[Packet]:
        """Strict priority: headq first, then the next-round queue.

        Serving ¬headq when headq is idle is what makes Cebinae
        work-conserving — a group may exceed its allocation whenever the
        other group leaves the link idle.
        """
        queues = self._queues
        head = self.lbf.headq
        queue: Deque[Packet] = queues[head]
        if not queue:
            head = 1 - head
            queue = queues[head]
            if not queue:
                return None
        packet = queue.popleft()
        self._queue_bytes[head] -= packet.size_bytes
        return packet

    # -- egress path ---------------------------------------------------------------
    def on_transmit(self, packet: Packet) -> None:
        """Egress pipeline hook, called by the link per transmission."""
        self.port_tx_bytes += packet.size_bytes
        self.cache.update(packet.flow, packet.size_bytes)

    # -- control plane interface ------------------------------------------------------
    def rotate(self) -> int:
        """Advance the round; returns the retired queue index."""
        retired = self.lbf.headq
        residue = len(self._queues[retired])
        if residue and not self.fail_open:
            # Equation (2) should make this impossible; count
            # violations.  Not a violation while failed open: the
            # pass-through path ignores the LBF pacing that Equation (2)
            # assumes.
            self.rotation_residue += 1
        index = self.lbf.rotate(self.sim.now_ns)
        trace = self._trace_lbf
        if trace is not None:
            trace(LbfRotation(time_ns=self.sim.now_ns, port=self.name,
                              rotation=self.lbf.rotations,
                              retired_queue=index,
                              residue_packets=residue))
        return index

    def enter_fail_open(self) -> None:
        """Degrade to pass-through FIFO (stale reconfiguration)."""
        self.fail_open = True

    def exit_fail_open(self) -> None:
        """Restore LBF admission (fresh configuration installed)."""
        self.fail_open = False

    def set_membership(self, top_flows: Set[FlowId]) -> None:
        self.top_flows = set(top_flows)

    def set_saturated(self, saturated: bool,
                      top_share: Ratio = 0.5,
                      bottom_share: Ratio = 0.5) -> None:
        """Phase change, applied atomically by the control plane.

        On unsaturated→saturated, the group counters are bootstrapped
        from the aggregate counter split by the incoming rate shares.
        """
        if saturated and not self.saturated:
            self.lbf.bootstrap_from_total(top_share, bottom_share)
        elif not saturated and self.saturated:
            self.lbf.reset_group_counters()
        self.saturated = saturated

    # -- QueueDisc interface ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queues[0]) + len(self._queues[1])

    @property
    def byte_length(self) -> Bytes:
        return self._queue_bytes[0] + self._queue_bytes[1]
