"""Tofino data-plane resource model (paper Table 3).

Table 3 reports the hardware resources the Cebinae P4 program consumes
on a 32-port Tofino for one- and two-stage egress flow caches with
4096 slots per port per stage.  Without the vendor toolchain we model
the program's footprint analytically: each component's cost is an
affine function of the cache configuration, calibrated so the model
reproduces the paper's two published rows exactly and extrapolates
plausibly to other configurations.

The cost drivers are physical: SRAM scales with
``stages × ports × slots × entry_bytes`` (flow key + byte counter);
PHV and VLIW grow with per-stage hash/compare/update actions; TCAM
holds the per-stage match tables; the queue count is fixed at two
priorities per port — the paper's headline scalability claim.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The evaluation platform: a Wedge100BF-32X (32-port Tofino).
TOFINO_PORTS = 32
#: Tofino 1 budgets used for utilisation percentages.
TOFINO_SRAM_KB = 24 * 1024          # ~24 MB of match SRAM.
TOFINO_TCAM_KB = 6 * 1024 // 4      # ~1.5 MB of TCAM.
TOFINO_PHV_BITS = 4096
TOFINO_PIPELINE_STAGES = 12
TOFINO_VLIW_PER_STAGE = 32
TOFINO_QUEUES_PER_PORT = 32

#: Bytes per cache entry: 9 B flow key (compressed 5-tuple digest)
#: plus 4 B byte counter, as in the paper's prototype.
CACHE_ENTRY_BYTES = 13


@dataclass(frozen=True)
class ResourceUsage:
    """Resources consumed by one Cebinae data-plane configuration."""

    cache_stages: int
    slots_per_port: int
    ports: int
    pipeline_stages: int
    phv_bits: int
    sram_kb: int
    tcam_kb: int
    vliw_instructions: int
    queues: int

    @property
    def sram_utilization(self) -> float:
        return self.sram_kb / TOFINO_SRAM_KB

    @property
    def phv_utilization(self) -> float:
        return self.phv_bits / TOFINO_PHV_BITS

    @property
    def queue_utilization(self) -> float:
        return self.queues / (TOFINO_QUEUES_PER_PORT * self.ports)

    @property
    def max_utilization(self) -> float:
        """The binding *memory/compute* fraction (paper: < 25%).

        Pipeline-stage occupancy (11 of 12) and PHV width are reported
        separately: stages are a layout property, not a consumable
        budget shared with other programs in the same way.
        """
        vliw_budget = TOFINO_VLIW_PER_STAGE * TOFINO_PIPELINE_STAGES
        return max(self.sram_utilization,
                   self.tcam_kb / TOFINO_TCAM_KB,
                   self.vliw_instructions / vliw_budget,
                   self.queue_utilization)


# Affine calibration constants fit to Table 3's two rows
# (1 stage -> 937b PHV / 2448KB SRAM / 15KB TCAM / 89 VLIW;
#  2 stage -> 1042b / 4096KB / 34KB / 93).
_PHV_BASE_BITS = 832
_PHV_PER_STAGE_BITS = 105
_SRAM_BASE_KB = 800
_TCAM_BASE_KB = -4
_TCAM_PER_STAGE_KB = 19
_VLIW_BASE = 85
_VLIW_PER_STAGE = 4


def estimate_resources(cache_stages: int = 2,
                       slots_per_port: int = 4096,
                       ports: int = TOFINO_PORTS) -> ResourceUsage:
    """Model the data-plane footprint of a Cebinae configuration.

    With the paper's configuration (4096 slots/port, 32 ports) the
    SRAM-per-stage term is ``4096 × 32 × 13 B ≈ 1648 KB``, matching the
    published delta between the one- and two-stage rows.
    """
    if cache_stages < 1:
        raise ValueError("need at least one cache stage")
    if slots_per_port < 1:
        raise ValueError("need at least one slot per port")
    if ports < 1:
        raise ValueError("need at least one port")
    sram_per_stage_kb = slots_per_port * ports * CACHE_ENTRY_BYTES / 1024
    usage = ResourceUsage(
        cache_stages=cache_stages,
        slots_per_port=slots_per_port,
        ports=ports,
        pipeline_stages=11,
        phv_bits=_PHV_BASE_BITS + _PHV_PER_STAGE_BITS * cache_stages,
        sram_kb=int(round(_SRAM_BASE_KB
                          + sram_per_stage_kb * cache_stages)),
        tcam_kb=max(_TCAM_BASE_KB + _TCAM_PER_STAGE_KB * cache_stages, 1),
        vliw_instructions=_VLIW_BASE + _VLIW_PER_STAGE * cache_stages,
        queues=2 * ports,
    )
    return usage


def queues_required(num_flows: int, mechanism: str = "cebinae") -> int:
    """Physical queues needed as a function of concurrent flow count.

    The paper's scalability argument (section 5.5): Cebinae needs a
    constant two queues per port, while AFQ/PCQ-style calendar queues
    and ideal fair queuing need queue counts that grow with flows (or
    cap the flows they can serve).  This helper encodes that comparison
    for the Table 3 discussion and the scalability benchmark.
    """
    mechanism = mechanism.lower()
    if mechanism == "cebinae":
        return 2
    if mechanism in ("afq", "pcq"):
        # Calendar queues: fixed number of priority levels (32 on
        # Tofino), independent of flows but limiting usable buffer per
        # flow; flows beyond the per-queue BpR budget lose accuracy.
        return 32
    if mechanism in ("fq", "ideal-fq"):
        return max(num_flows, 1)
    raise ValueError(f"unknown mechanism {mechanism!r}")
