"""Dimensional unit types and checked conversions.

The simulator computes with nanosecond deadlines, byte counts and
bits-per-second rates side by side; a wrong ns↔s or bytes↔bits mix does
not crash — it silently corrupts JFI results (see DESIGN.md section
13).  This module gives every such quantity a *name*:

=================  ==========  =====================================
Alias              Backing     Meaning
=================  ==========  =====================================
:data:`TimeNs`     ``int``     simulation time / durations, integer ns
:data:`Seconds`    ``float``   wall-style durations for reporting
:data:`Bytes`      ``int``     payload / buffer sizes
:data:`Bits`       ``int``     on-the-wire sizes (8 × bytes)
:data:`BitsPerSec` ``float``   link and flow rates
:data:`Ratio`      ``float``   dimensionless fractions in [0, 1]-ish
=================  ==========  =====================================

Two layers enforce the dimensions:

* **simlint's U4xx flow-sensitive pass** reads these aliases in
  signatures (plus ``*_ns``/``*_bytes``/... name suffixes) and
  propagates dimensions through assignments, arithmetic and call
  sites.  That is where enforcement lives — it understands the
  repo's idioms (``* SECOND`` scale factors, ``* 8`` byte↔bit
  conversions) that a nominal type system cannot.
* **mypy** sees the aliases as plain ``int``/``float`` (the
  ``TYPE_CHECKING`` branch below), so annotating a hot-path signature
  never forces call-site wrapping or widens ``--strict`` churn.  At
  runtime the aliases are real :func:`typing.NewType` objects, so
  tests and fixtures can construct and introspect them.

The conversion helpers are *checked*: they validate argument types
(rejecting ``bool``, which is an ``int`` subtype, and non-finite
floats) and raise :class:`UnitError` instead of silently producing a
corrupted quantity.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, NewType, Union

if TYPE_CHECKING:
    # mypy view: transparent aliases.  Dimension enforcement is
    # simlint's job (U4xx); a nominal NewType here would demand a
    # wrap at every call site for zero extra safety.
    TimeNs = int
    Seconds = float
    Bytes = int
    Bits = int
    BitsPerSec = float
    Ratio = float
else:
    TimeNs = NewType("TimeNs", int)
    Seconds = NewType("Seconds", float)
    Bytes = NewType("Bytes", int)
    Bits = NewType("Bits", int)
    BitsPerSec = NewType("BitsPerSec", float)
    Ratio = NewType("Ratio", float)

#: All dimensional aliases, keyed by name (the simlint U4xx pass and
#: the DESIGN.md catalog table are generated from this).
UNIT_TYPES = ("TimeNs", "Seconds", "Bytes", "Bits", "BitsPerSec",
              "Ratio")

#: Nanoseconds per second (mirrors ``repro.netsim.engine.SECOND``,
#: duplicated here so the units module stays dependency-free).
NS_PER_S = 1_000_000_000
#: Bits per byte.
BITS_PER_BYTE = 8


class UnitError(TypeError):
    """A checked conversion was fed a value outside its dimension."""


def _require_real(value: Union[int, float], what: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise UnitError(f"{what} must be int or float, "
                        f"got {type(value).__name__}")
    if isinstance(value, float) and not math.isfinite(value):
        raise UnitError(f"{what} must be finite, got {value!r}")


def _require_int(value: int, what: str) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise UnitError(f"{what} must be an int, "
                        f"got {type(value).__name__}")


def ns_from_seconds(value_s: Seconds) -> TimeNs:
    """Seconds → integer nanoseconds (rounded to the nearest ns)."""
    _require_real(value_s, "seconds value")
    return TimeNs(int(round(value_s * NS_PER_S)))


def seconds_from_ns(value_ns: TimeNs) -> Seconds:
    """Integer nanoseconds → float seconds (reporting only)."""
    _require_int(value_ns, "nanosecond value")
    return Seconds(value_ns / NS_PER_S)


def bits_from_bytes(size_bytes: Bytes) -> Bits:
    """Bytes → bits (×8, exact)."""
    _require_int(size_bytes, "byte count")
    return Bits(size_bytes * BITS_PER_BYTE)


def bytes_from_bits(size_bits: Bits) -> Bytes:
    """Bits → whole bytes; raises unless divisible by 8."""
    _require_int(size_bits, "bit count")
    if size_bits % BITS_PER_BYTE:
        raise UnitError(f"{size_bits} bits is not a whole number of "
                        f"bytes")
    return Bytes(size_bits // BITS_PER_BYTE)


def rate_from_volume(size_bits: Bits, duration_s: Seconds) -> BitsPerSec:
    """Bits transferred over a duration → average rate in bps."""
    _require_int(size_bits, "bit count")
    _require_real(duration_s, "duration")
    if duration_s <= 0:
        raise UnitError(f"rate needs a positive duration, "
                        f"got {duration_s!r}")
    return BitsPerSec(size_bits / duration_s)


def transmit_time_ns(size_bytes: Bytes, rate_bps: BitsPerSec) -> TimeNs:
    """Serialization time of ``size_bytes`` at ``rate_bps``, in ns.

    The canonical checked form of the ``bytes * 8 * SECOND / rate``
    idiom that appears at every Link/rate boundary.
    """
    _require_int(size_bytes, "byte count")
    _require_real(rate_bps, "rate")
    if rate_bps <= 0:
        raise UnitError(f"rate must be positive, got {rate_bps!r}")
    return TimeNs(int(round(
        size_bytes * BITS_PER_BYTE * NS_PER_S / rate_bps)))


def ratio_of(numerator: Union[int, float],
             denominator: Union[int, float]) -> Ratio:
    """Dimensionless quotient of two same-dimension quantities."""
    _require_real(numerator, "numerator")
    _require_real(denominator, "denominator")
    if denominator == 0:
        raise UnitError("ratio denominator is zero")
    return Ratio(numerator / denominator)
