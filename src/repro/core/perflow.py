"""Per-flow Cebinae: the paper's section 7 extension.

The shipped Cebinae tracks just two groups (⊤/⊥), trading intra-group
fairness for statistical multiplexing and minimal hardware state.  The
paper postulates that "an extension of Cebinae that tracks each
bottleneck flow separately would provide the opportunity for much
stronger guarantees" — equivalent network-level convergence to fair
queuing under eventual stability.

This module implements that extension in simulation: every ⊤ flow gets
its *own* leaky-bucket allocation (its own measured rate, taxed by τ),
while ⊥ remains one shared group.  The cost is per-⊤-flow state in the
data plane (still bounded: only heavy hitters are ⊤) and per-flow rate
updates in the control window; the benefit is that two unequal
aggressors can no longer fight inside a shared ⊤ budget — each is
squeezed toward the fair share individually.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from ..heavyhitter.hashpipe import select_bottlenecked
from ..netsim.engine import SECOND, Simulator
from ..netsim.packet import FlowId, Packet
from ..netsim.queues import QueueDisc  # noqa: F401 (docs reference)
from .control_plane import CebinaeControlPlane
from .lbf import FlowGroup, LbfDecision
from .params import CebinaeParams
from .queue_disc import CebinaeQueueDisc

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..netsim.topology import QueueFactory


class PerFlowCebinaeQueueDisc(CebinaeQueueDisc):
    """Cebinae with an individual allocation per bottlenecked flow.

    ⊥ traffic follows the base class unchanged; ⊤ packets are admitted
    against per-flow buckets using the same virtual-round arithmetic.
    """

    def __init__(self, sim: Simulator, params: CebinaeParams,
                 rate_bps: float, buffer_bytes: int,
                 name: str = "cebinae-perflow") -> None:
        super().__init__(sim, params, rate_bps, buffer_bytes, name=name)
        #: Per-⊤-flow bucket levels (bytes), same semantics as
        #: ``lbf.bytes[group]``.
        self.flow_bytes: Dict[FlowId, float] = {}
        #: Per-⊤-flow rates (bytes/second), per physical queue.
        self.flow_rates: List[Dict[FlowId, float]] = [dict(), dict()]

    # -- per-flow LBF arithmetic -------------------------------------------
    def _admit_top_flow(self, flow: FlowId, size_bytes: int,
                        now_ns: int) -> LbfDecision:
        lbf = self.lbf
        lbf._advance_virtual_round(now_ns)
        rate_head = self.flow_rates[lbf.headq].get(
            flow, lbf.capacity_bytes_per_sec)
        rate_tail = self.flow_rates[1 - lbf.headq].get(
            flow, lbf.capacity_bytes_per_sec)
        aggregate = lbf._aggregate_size(rate_head, rate_tail)
        level = max(self.flow_bytes.get(flow, 0.0), aggregate) + \
            size_bytes
        self.flow_bytes[flow] = level
        dt_sec = self.params.dt_ns / SECOND
        past_head = level - rate_head * dt_sec
        past_tail = past_head - rate_tail * dt_sec
        if past_head <= 0:
            return LbfDecision.HEAD
        if past_tail <= 0:
            return LbfDecision.TAIL
        return LbfDecision.DROP

    def enqueue(self, packet: Packet) -> bool:
        if (self.saturated
                and self.group_of(packet.flow) is FlowGroup.TOP):
            if self.byte_length + packet.size_bytes > self.buffer_bytes:
                self.buffer_drops += 1
                self.record_drop(packet)
                return False
            decision = self._admit_top_flow(packet.flow,
                                            packet.size_bytes,
                                            self.sim.now_ns)
            self.lbf.track_total(packet.size_bytes)
            if decision is LbfDecision.DROP:
                self.lbf_drops += 1
                self.record_drop(packet)
                return False
            if decision is LbfDecision.TAIL:
                self.lbf_delays += 1
                if self.params.ecn_marking and packet.mark_ce():
                    self.ecn_marks += 1
            queue_index = self.lbf.queue_for(decision)
            was_empty = self._empty()
            self._queues[queue_index].append(packet)
            self._queue_bytes[queue_index] += packet.size_bytes
            if was_empty:
                self.notify_waker()
            return True
        return super().enqueue(packet)

    def rotate(self) -> int:
        """Decay every per-flow bucket by its round allocation."""
        retired = self.lbf.headq  # Captured before the flip.
        dt_sec = self.params.dt_ns / SECOND
        for flow in list(self.flow_bytes):
            rate = self.flow_rates[retired].get(
                flow, self.lbf.capacity_bytes_per_sec)
            level = self.flow_bytes[flow] - rate * dt_sec
            if level <= 0 and flow not in self.top_flows:
                del self.flow_bytes[flow]  # Fully drained ex-member.
            else:
                self.flow_bytes[flow] = max(level, 0.0)
        return super().rotate()

    # -- control plane interface ----------------------------------------------
    def set_flow_rates(self, queue_index: int,
                       rates: Dict[FlowId, float]) -> None:
        if queue_index == self.lbf.headq:
            raise ValueError(
                "rates may only change on the drained (non-head) queue")
        self.flow_rates[queue_index] = dict(rates)

    def set_membership(self, top_flows: Set[FlowId]) -> None:
        removed = self.top_flows - top_flows
        super().set_membership(top_flows)
        # Sorted so ``flow_bytes`` insertion order (hence rotate() and
        # report iteration order) never depends on set hash order.
        for flow in sorted(removed):
            # Ex-⊤ flows rejoin the shared ⊥ bucket; their leftover
            # level decays out via rotate().
            self.flow_bytes.setdefault(flow, 0.0)


class PerFlowCebinaeControlPlane(CebinaeControlPlane):
    """Figure 4 with per-flow rate assignments for the ⊤ set."""

    #: Narrowed from the base class: this agent drives the per-flow
    #: queue disc's rate table as well.
    qdisc: PerFlowCebinaeQueueDisc

    def __init__(self, sim: Simulator, qdisc: PerFlowCebinaeQueueDisc,
                 record_history: bool = False) -> None:
        self._pending_flow_rates: Dict[FlowId, float] = {}
        super().__init__(sim, qdisc, record_history=record_history)

    def _apply_config(self, retired_queue: int) -> None:
        super()._apply_config(retired_queue)
        self.qdisc.set_flow_rates(retired_queue,
                                  self._pending_flow_rates)

    def _recompute(self) -> None:
        params = self.params
        window_sec = params.recompute_interval_ns / SECOND
        byte_count = self.qdisc.port_tx_bytes - self._last_port_bytes
        utilization = byte_count / (self.capacity_bytes_per_sec
                                    * window_sec)
        flow_bytes_snapshot = self.qdisc.cache.snapshot()
        # The base class polls/resets the cache and handles the shared
        # state; it must see the same utilisation value.
        super()._recompute()
        if utilization < 1.0 - params.delta_port:
            self._pending_flow_rates = {}
            return
        top, _ = select_bottlenecked(flow_bytes_snapshot,
                                     params.delta_flow)
        self._pending_flow_rates = {
            flow: flow_bytes_snapshot[flow] * (1.0 - params.tau)
            / window_sec
            for flow in sorted(top)}


def perflow_cebinae_factory(params: Optional[CebinaeParams] = None,
                            buffer_mtus: int = 100,
                            max_rtt_ns: int = 100_000_000,
                            record_history: bool = False,
                            agents: Optional[
                                List[CebinaeControlPlane]] = None
                            ) -> "QueueFactory":
    """Queue factory installing the per-flow Cebinae variant."""
    from ..netsim.packet import MTU_BYTES
    from ..netsim.topology import PortSpec

    def factory(spec: PortSpec) -> PerFlowCebinaeQueueDisc:
        buffer_bytes = buffer_mtus * MTU_BYTES
        port_params = params
        if port_params is None:
            port_params = CebinaeParams.for_link(
                spec.rate_bps, buffer_bytes, max_rtt_ns=max_rtt_ns)
        qdisc = PerFlowCebinaeQueueDisc(spec.sim, port_params,
                                        spec.rate_bps, buffer_bytes,
                                        name=spec.name)
        agent = PerFlowCebinaeControlPlane(
            spec.sim, qdisc, record_history=record_history)
        if agents is not None:
            agents.append(agent)
        return qdisc

    return factory
