"""The sweep worker: claim shards, run tasks, stream results, survive.

A worker is one independent process (``cebinae-repro sweep work
<dir>``) holding no sweep state beyond its current lease.  Its loop:

1. scan the manifest for a shard that still has runnable tasks
   (not done, not quarantined) and try to claim its lease;
2. run the shard's tasks serially in-process, storing each result into
   the sweep's :class:`~repro.experiments.parallel.ResultCache` the
   moment it finishes (streaming: a crash loses at most the in-flight
   task), heartbeating the lease from a background thread;
3. retry transient failures with the executor's deterministic seeded
   backoff, recording the delays *actually slept*; after the retry
   budget — or immediately for deterministic casualties
   (:func:`~repro.experiments.parallel._no_retry`) — **quarantine**
   the task instead of wedging the shard;
4. release the lease and move on; exit when a full scan finds no
   runnable task anywhere.

SIGTERM and SIGINT raise :class:`SweepShutdown` at the next bytecode
boundary: the worker releases its lease (so the shard is instantly
re-claimable, no expiry wait), writes its metrics snapshot, and exits
— every already-completed result is on disk already.  SIGKILL skips
all of that by definition, which is exactly what lease expiry (plus
the dead-pid fast path) exists for.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..experiments.parallel import (FailedRun, _backoff_delays,
                                    _call_task, _no_retry)
from ..faults.watchdog import RunAborted
from ..obs import spans as obs_spans
from ..obs.metrics import MetricsRegistry, record_sweep
from .lease import Lease, LeaseStore
from .manifest import ManifestTask, SweepDir, _shard_key

#: How many times per expiry window the heartbeat renews.
HEARTBEAT_FRACTION = 4.0


class SweepShutdown(BaseException):
    """Graceful stop requested by SIGTERM/SIGINT.

    A ``BaseException`` (like ``KeyboardInterrupt``) so no library
    except-clause between the signal and the worker loop can swallow
    the shutdown.
    """


@dataclass
class WorkerConfig:
    """Tunables of one worker process."""

    worker_id: str
    expiry_s: float = 30.0
    retries: int = 1
    backoff_base_s: float = 0.05
    #: Seconds to idle between scans when every runnable shard is
    #: leased by someone else.
    poll_s: float = 0.5
    #: Stop after completing this many tasks (None = run to the end);
    #: the chaos tests use it to park workers at exact progress points.
    max_tasks: Optional[int] = None
    install_signal_handlers: bool = True
    heartbeat: bool = True


@dataclass
class WorkerReport:
    """What one worker run accomplished (JSON-able)."""

    worker_id: str
    completed: int = 0
    quarantined: int = 0
    lease_expiries: int = 0
    lease_lost: int = 0
    interrupted: bool = False
    failures: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"worker_id": self.worker_id,
                "completed": self.completed,
                "quarantined": self.quarantined,
                "lease_expiries": self.lease_expiries,
                "lease_lost": self.lease_lost,
                "interrupted": self.interrupted,
                "failures": list(self.failures)}


class _Heartbeat:
    """Background lease renewal while a shard's tasks run."""

    def __init__(self, store: LeaseStore, lease: Lease,
                 interval_s: float) -> None:
        self._store = store
        self._lease = lease
        self._interval_s = interval_s
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            if not self._store.renew(self._lease):
                self.lost = True
                return


class SweepWorker:
    """One worker process's claim-run-stream loop."""

    def __init__(self, sweep: SweepDir, config: WorkerConfig,
                 progress: Optional[Callable[[str], None]] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.sweep = sweep
        self.config = config
        self.progress = progress
        self.registry = registry or MetricsRegistry()
        self._stop_requested = False

    # -- plumbing ----------------------------------------------------------
    def _emit(self, message: str) -> None:
        if self.progress is not None:
            self.progress(f"[{self.config.worker_id}] {message}")

    def _count(self, event: str, amount: float = 1) -> None:
        record_sweep(self.registry, event,
                     worker=self.config.worker_id, amount=amount)

    def _write_metrics(self) -> None:
        """Atomically publish this worker's live metrics snapshot.

        Called after every finished task (and at exit) so ``sweep
        watch`` always reads a current, whole document: the snapshot is
        staged to a worker-unique temp file and renamed into place, and
        stamped with ``captured_at`` so readers can judge staleness.
        """
        try:
            self.sweep.metrics_dir.mkdir(parents=True, exist_ok=True)
            path = (self.sweep.metrics_dir
                    / f"{self.config.worker_id}.json")
            temp = path.with_name(path.name + f".tmp-{os.getpid()}")
            self.registry.write_json(
                str(temp),
                captured_at=time.monotonic())  # simlint: allow[D103] snapshot staleness stamp
            os.replace(temp, path)
        except OSError:
            pass    # Metrics are best-effort; never fail the sweep.

    def _raise_shutdown(self, signum: int, frame: Any) -> None:
        self._stop_requested = True
        raise SweepShutdown(signal.Signals(signum).name)

    # -- the loop ----------------------------------------------------------
    def run(self) -> WorkerReport:
        """Work until nothing runnable remains (or a signal stops us)."""
        report = WorkerReport(worker_id=self.config.worker_id)
        manifest = self.sweep.load_manifest()
        store = LeaseStore(self.sweep.lease_dir,
                           expiry_s=self.config.expiry_s)
        cache = self.sweep.cache()
        previous: Dict[int, Any] = {}
        if (self.config.install_signal_handlers
                and threading.current_thread()
                is threading.main_thread()):
            for signum in (signal.SIGTERM, signal.SIGINT):
                previous[signum] = signal.signal(
                    signum, self._raise_shutdown)
        # Host-level lifecycle span over the whole worker run (None
        # when no bus carries the span topic — the default).
        sweep_span = obs_spans.open_span("sweep", manifest.name,
                                         sim_clock=False)
        try:
            self._loop(manifest.shards(), store, cache, report)
        except SweepShutdown as exc:
            report.interrupted = True
            self._emit(f"shutdown ({exc}): lease released, "
                       f"{report.completed} completed result(s) "
                       f"already flushed")
            self._count("interrupts")
        finally:
            if sweep_span is not None:
                sweep_span.count = report.completed
                obs_spans.close_span(
                    sweep_span,
                    status="error" if report.interrupted else "ok")
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            report.lease_expiries = store.expired_claims
            if store.expired_claims:
                self._count("lease_expiries", store.expired_claims)
            self.registry.gauge(
                "sweep_worker_completed",
                worker=self.config.worker_id).set(report.completed)
            self._count("inflight_shards", 0)
            self._count("quarantine_depth", report.quarantined)
            self._write_metrics()
        return report

    def _runnable(self, tasks: List[ManifestTask]) -> List[ManifestTask]:
        return [task for task in tasks
                if not self.sweep.is_done(task.fingerprint)
                and not self.sweep.is_quarantined(task.fingerprint)]

    def _loop(self, shards: Dict[int, List[ManifestTask]],
              store: LeaseStore, cache: Any,
              report: WorkerReport) -> None:
        while True:
            claimed_any = False
            remaining = 0
            for shard, tasks in sorted(shards.items()):
                runnable = self._runnable(tasks)
                if not runnable:
                    continue
                remaining += len(runnable)
                lease = store.claim(_shard_key(shard),
                                    self.config.worker_id)
                if lease is None:
                    continue
                claimed_any = True
                try:
                    self._run_shard(shard, runnable, store, lease,
                                    cache, report)
                finally:
                    store.release(lease)
                if (self.config.max_tasks is not None
                        and report.completed >= self.config.max_tasks):
                    self._emit(f"max-tasks budget "
                               f"({self.config.max_tasks}) reached")
                    return
            if remaining == 0:
                return
            if not claimed_any:
                # Everything runnable is leased elsewhere: idle one
                # poll interval, then rescan (their leases may expire).
                time.sleep(self.config.poll_s)

    def _run_shard(self, shard: int, tasks: List[ManifestTask],
                   store: LeaseStore, lease: Lease, cache: Any,
                   report: WorkerReport) -> None:
        self._emit(f"claimed {_shard_key(shard)} "
                   f"({len(tasks)} runnable task(s))")
        self._count("inflight_shards", 1)
        self._write_metrics()
        interval = lease.expiry_s / HEARTBEAT_FRACTION
        heartbeat: Any
        if self.config.heartbeat:
            heartbeat = _Heartbeat(store, lease, interval)
        else:
            from contextlib import nullcontext
            heartbeat = nullcontext()
        try:
            self._run_shard_tasks(shard, tasks, heartbeat, cache,
                                  report)
        finally:
            self._count("inflight_shards", 0)
            self._write_metrics()

    def _run_shard_tasks(self, shard: int, tasks: List[ManifestTask],
                         heartbeat: Any, cache: Any,
                         report: WorkerReport) -> None:
        with obs_spans.span("shard", _shard_key(shard),
                            sim_clock=False) as shard_span:
            if shard_span is not None:
                shard_span.count = len(tasks)
            with heartbeat:
                for task in tasks:
                    if self.sweep.is_done(task.fingerprint):
                        continue  # A twin finished it while we held on.
                    if getattr(heartbeat, "lost", False):
                        # Our lease was stolen (we must have stalled
                        # past expiry).  Finishing the current task was
                        # safe — results are idempotent — but racing
                        # the new owner through the rest of the shard
                        # is waste.
                        report.lease_lost += 1
                        self._count("lease_lost")
                        self._emit(f"lost lease on "
                                   f"{_shard_key(shard)}; "
                                   f"abandoning the shard")
                        return
                    self._run_task(task, cache, report)
                    if (self.config.max_tasks is not None
                            and report.completed
                            >= self.config.max_tasks):
                        return

    def _run_task(self, mtask: ManifestTask, cache: Any,
                  report: WorkerReport) -> None:
        with obs_spans.span("task", mtask.label,
                            sim_clock=False) as task_span:
            self._attempt_task(mtask, cache, report, task_span)

    def _attempt_task(self, mtask: ManifestTask, cache: Any,
                      report: WorkerReport,
                      task_span: Optional[obs_spans.SpanHandle]
                      ) -> None:
        task = mtask.task()
        delays = _backoff_delays(mtask.fingerprint or task.label,
                                 self.config.retries,
                                 self.config.backoff_base_s)
        attempts = 0
        slept: List[float] = []
        self._emit(f"start  {task.label}")
        while True:
            attempts += 1
            try:
                envelope = _call_task(task.fn, task.kwargs)
            except SweepShutdown:
                raise
            except Exception as exc:  # noqa: BLE001 - triaged below.
                if _no_retry(exc) or attempts > self.config.retries:
                    self._quarantine(mtask, exc, attempts, slept,
                                     report)
                    return
                delay = delays[attempts - 1]
                self._emit(f"retry  {task.label} after "
                           f"{type(exc).__name__}: {exc} "
                           f"(backoff {delay * 1e3:.0f}ms)")
                # Record what was actually slept: an interrupt mid-
                # backoff must leave a truthful trail, not the plan.
                started = time.monotonic()  # simlint: allow[D103] retry pacing
                try:
                    time.sleep(delay)
                except BaseException:
                    slept.append(min(
                        delay,
                        time.monotonic() - started))  # simlint: allow[D103] retry pacing
                    raise
                slept.append(delay)
                continue
            cache.store(mtask.fingerprint, task.kind, task.label,
                        task.encode(envelope["value"]))
            report.completed += 1
            if task_span is not None:
                task_span.count = 1
            self._count("tasks_completed")
            self._count("last_task_index", mtask.index)
            self.registry.histogram(
                "sweep_task_wall_seconds",
                worker=self.config.worker_id).observe(
                    envelope["elapsed_s"])
            self._write_metrics()
            self._emit(f"done   {task.label}  "
                       f"wall {envelope['elapsed_s']:.2f}s")
            return

    def _quarantine(self, mtask: ManifestTask, exc: Exception,
                    attempts: int, slept: List[float],
                    report: WorkerReport) -> None:
        timed_out = False
        partial = None
        if isinstance(exc, RunAborted):
            timed_out = True
            partial = exc.partial
        failed = FailedRun(
            label=mtask.label,
            error=str(exc) or type(exc).__name__,
            attempts=attempts, timed_out=timed_out,
            backoff_s=slept, partial=partial)
        self.sweep.quarantine(mtask, failed, self.config.worker_id)
        report.quarantined += 1
        report.failures.append(failed.to_dict())
        self._count("tasks_quarantined")
        self._count("quarantine_depth", report.quarantined)
        self._write_metrics()
        self._emit(f"QUARANTINED {mtask.label} after {attempts} "
                   f"attempt(s): {exc}")
