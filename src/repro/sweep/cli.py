"""``cebinae-repro sweep``: drive the crash-resumable sweep fabric.

Typical lifecycle::

    cebinae-repro sweep init  SWEEP --suite examples/suites/tier1
    cebinae-repro sweep work  SWEEP &         # repeat for N workers
    cebinae-repro sweep watch SWEEP           # live fleet view
    cebinae-repro sweep status SWEEP
    # ... a worker dies, the host reboots, CI cancels the job ...
    cebinae-repro sweep resume SWEEP --workers 4
    cebinae-repro sweep merge SWEEP --out results.json

``init`` compiles a directory of declarative suite specs into the
fsynced manifest; ``work`` runs one worker process against it;
``status`` reports per-shard progress computed from the sweep
directory alone; ``watch`` renders the cross-worker fleet view
(:func:`repro.obs.aggregate.fleet_view`) on a refresh loop, or — with
``--once --json`` — prints the one canonical aggregate document CI and
tests parse; ``resume`` breaks expired leases, counts the resume
in the metrics, and finishes the remaining tasks with N fresh workers
(in-process when N=1, subprocesses otherwise); ``merge`` writes the
ordered, canonical merged result document — byte-identical regardless
of which workers ran which tasks in which order, because every payload
comes from the fingerprint-keyed cache.

Exit codes: 0 success; 1 incomplete (pending tasks remain after
resume, or merge found holes); 2 usage/spec errors; 3 interrupted
(SIGTERM/SIGINT reached a worker, which released its lease and
flushed completed results first).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..obs.metrics import MetricsRegistry, record_sweep
from .lease import LeaseStore
from .manifest import (ManifestError, SweepDir, SweepManifest,
                       _shard_key, manifest_from_runs)
from .worker import SweepShutdown, SweepWorker, WorkerConfig

#: Exit code when a worker was stopped by SIGTERM/SIGINT.
EXIT_INTERRUPTED = 3


def _print(message: str) -> None:
    print(message, file=sys.stderr, flush=True)


def _compile_suite(directory: str, backend: Optional[str],
                   shard_size: int) -> SweepManifest:
    """Compile every suite spec in ``directory`` into one manifest."""
    import dataclasses

    from ..suite.registry import SuiteRegistry
    registry = SuiteRegistry.from_directory(directory)
    runs: List[Any] = []
    labels: List[str] = []
    for spec in registry:
        if backend is not None and spec.parking is None:
            spec = dataclasses.replace(spec, backend=backend)
        for run in spec.compile():
            runs.append(run)
            # Prefix with the owning spec so labels are sweep-unique.
            labels.append(f"{spec.name}:{run.label}")
    return manifest_from_runs(Path(directory).name, runs,
                              shard_size=shard_size, labels=labels)


def _cmd_init(args: argparse.Namespace) -> int:
    from ..suite.spec import SpecError
    try:
        manifest = _compile_suite(args.suite, args.backend,
                                  args.shard_size)
    except SpecError as exc:
        _print(f"error: {exc}")
        return 2
    sweep = SweepDir(args.directory)
    try:
        sweep.initialise(manifest, force=args.force)
    except ManifestError as exc:
        _print(f"error: {exc}")
        return 2
    shards = len(manifest.shards())
    _print(f"[sweep] initialised {args.directory}: "
           f"{len(manifest.tasks)} task(s) in {shards} shard(s)")
    return 0


def _worker_config(args: argparse.Namespace) -> WorkerConfig:
    worker_id = args.worker_id or f"w{os.getpid()}"
    return WorkerConfig(worker_id=worker_id, expiry_s=args.expiry_s,
                        retries=args.retries, poll_s=args.poll_s,
                        max_tasks=args.max_tasks)


def _cmd_work(args: argparse.Namespace) -> int:
    sweep = SweepDir(args.directory)
    config = _worker_config(args)
    worker = SweepWorker(sweep, config, progress=_print)
    bus = sink = None
    if args.spans:
        # Lifecycle spans for this worker: sweep → shard → task (and,
        # below the tasks, run/phase/engine spans from the runner).
        from ..obs import bus as obs_bus
        from ..obs.sinks import JsonlSpanSink
        sweep.metrics_dir.mkdir(parents=True, exist_ok=True)
        sink = JsonlSpanSink(str(
            sweep.metrics_dir / f"{config.worker_id}.spans.jsonl"))
        bus = obs_bus.install(obs_bus.TraceBus())
        bus.subscribe("span", sink)
    try:
        report = worker.run()
    except ManifestError as exc:
        _print(f"error: {exc}")
        return 2
    finally:
        if bus is not None:
            from ..obs import bus as obs_bus
            obs_bus.uninstall()
            sink.close()
    _print(f"[sweep] worker {report.worker_id}: "
           f"{report.completed} completed, "
           f"{report.quarantined} quarantined, "
           f"{report.lease_expiries} expired lease(s) claimed")
    return EXIT_INTERRUPTED if report.interrupted else 0


def _cmd_status(args: argparse.Namespace) -> int:
    sweep = SweepDir(args.directory)
    try:
        status = sweep.status()
    except ManifestError as exc:
        _print(f"error: {exc}")
        return 2
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    counts = status["counts"]
    print(f"sweep {status['name']}: {status['total']} task(s)  "
          f"done={counts['done']} quarantined={counts['quarantined']} "
          f"leased={counts['leased']} pending={counts['pending']}")
    lease_by_key = {info["key"]: info
                    for info in status.get("lease_info", [])}
    for shard, info in status["shards"].items():
        holder = ""
        if info["worker"]:
            # Heartbeat *age*, not the raw renewal timestamp: the
            # operator question is "is this worker alive", and an age
            # answers it without mental clock arithmetic.
            holder = f"  worker={info['worker']}"
            lease = lease_by_key.get(_shard_key(int(shard)))
            if lease is not None and isinstance(
                    lease.get("age_s"), (int, float)):
                holder += f" heartbeat {lease['age_s']:.1f}s ago"
        print(f"  shard {shard}: {info['done']}/{info['total']} done"
              + (f"  quarantined={info['quarantined']}"
                 if info["quarantined"] else "") + holder)
    for info in status.get("lease_info", []):
        if not info["expired"]:
            continue
        age = (f"{info['age_s']:.1f}s"
               if isinstance(info.get("age_s"), (int, float))
               else "unknown")
        print(f"  lease {info['key']}: worker={info['worker']} "
              f"EXPIRED (heartbeat {age} ago, expiry "
              f"{info['expiry_s']:.0f}s; resume would reclaim it)")
    for fingerprint, record in sorted(sweep.quarantined().items()):
        failed = record.get("failed", {})
        print(f"  quarantined {record.get('label', fingerprint)}: "
              f"{failed.get('error', '?')} "
              f"(attempts={failed.get('attempts', '?')})")
    return 0


def _render_watch(doc: Dict[str, Any]) -> str:
    """The terminal rendering of one aggregate document."""
    counts = doc["counts"]
    totals = doc["totals"]
    lines = [f"sweep {doc['sweep']}: {counts['done']}/{doc['total']} "
             f"done  quarantined={counts['quarantined']} "
             f"leased={counts['leased']} pending={counts['pending']}"]
    summary = []
    if doc["cache_hit_ratio"] is not None:
        summary.append(f"cache hits {doc['cache_hit_ratio']:.0%}")
    if doc["eta_s"] is not None:
        summary.append("ETA done" if doc["eta_s"] == 0
                       else f"ETA ~{doc['eta_s']:.0f}s")
    if totals["lease_expiries"] or totals["lease_lost"]:
        summary.append(f"lease expiries={totals['lease_expiries']} "
                       f"lost={totals['lease_lost']}")
    if summary:
        lines.append("  " + "  ".join(summary))
    if doc["workers"]:
        lines.append(f"  {'worker':<14} {'shards':<18} {'hb age':>7} "
                     f"{'done':>5} {'quar':>5} {'t/min':>6}  last task")
        for row in doc["workers"]:
            shards = ",".join(key.replace("shard-", "")
                              for key in row["shards"]) or "-"
            if row["lease_expired"]:
                shards += "!"
            age = (f"{row['heartbeat_age_s']:.0f}s"
                   if row["heartbeat_age_s"] is not None else "-")
            rate = (f"{row['tasks_per_min']:.1f}"
                    if row["tasks_per_min"] is not None else "-")
            last = (row["last_task"]["label"]
                    if row["last_task"] is not None else "-")
            lines.append(f"  {row['worker']:<14} {shards:<18} "
                         f"{age:>7} {row['completed']:>5} "
                         f"{row['quarantined']:>5} {rate:>6}  {last}")
    if doc["snapshot_errors"]:
        lines.append("  unreadable snapshot(s): "
                     + ", ".join(doc["snapshot_errors"]))
    integrity = doc["integrity"]
    lines.append(f"  integrity: missing={integrity['missing_results']} "
                 f"orphans={integrity['orphan_results']}")
    return "\n".join(lines)


def _cmd_watch(args: argparse.Namespace) -> int:
    from ..obs.aggregate import fleet_view
    if args.json and not args.once:
        _print("error: --json requires --once (one canonical "
               "document, not a stream)")
        return 2
    sweep = SweepDir(args.directory)
    while True:
        try:
            doc = fleet_view(sweep)
        except ManifestError as exc:
            _print(f"error: {exc}")
            return 2
        if args.json:
            print(json.dumps(doc, indent=2, sort_keys=True))
            return 0
        if not args.once and sys.stdout.isatty():
            print("\x1b[2J\x1b[H", end="")
        print(_render_watch(doc), flush=True)
        finished = (doc["counts"]["pending"] == 0
                    and doc["counts"]["leased"] == 0)
        if args.once or finished:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _spawn_workers(directory: str, count: int,
                   args: argparse.Namespace) -> int:
    """Run ``count`` worker subprocesses to completion."""
    commands = []
    for index in range(count):
        command = [sys.executable, "-m", "repro.sweep.cli", "work",
                   directory, "--worker-id", f"resume-w{index}",
                   "--expiry-s", str(args.expiry_s),
                   "--retries", str(args.retries),
                   "--poll-s", str(args.poll_s)]
        commands.append(command)
    procs = [subprocess.Popen(command) for command in commands]
    exit_code = 0
    try:
        for proc in procs:
            code = proc.wait()
            if code not in (0, EXIT_INTERRUPTED):
                exit_code = code
    except (KeyboardInterrupt, SweepShutdown):
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs:
            proc.wait()
        raise
    return exit_code


def _cmd_resume(args: argparse.Namespace) -> int:
    sweep = SweepDir(args.directory)
    try:
        manifest = sweep.load_manifest()
    except ManifestError as exc:
        _print(f"error: {exc}")
        return 2
    store = LeaseStore(sweep.lease_dir, expiry_s=args.expiry_s)
    broken = store.break_expired()
    if broken:
        _print(f"[sweep] broke {broken} expired lease(s)")
    registry = MetricsRegistry()
    record_sweep(registry, "resumes", worker="resume")
    if broken:
        record_sweep(registry, "lease_expiries", worker="resume",
                     amount=broken)
    sweep.metrics_dir.mkdir(parents=True, exist_ok=True)
    registry.write_json(str(sweep.metrics_dir / "resume.json"))

    if args.workers <= 1:
        worker = SweepWorker(
            sweep, WorkerConfig(worker_id="resume-w0",
                                expiry_s=args.expiry_s,
                                retries=args.retries,
                                poll_s=args.poll_s),
            progress=None if args.quiet else _print)
        report = worker.run()
        if report.interrupted:
            return EXIT_INTERRUPTED
    else:
        code = _spawn_workers(args.directory, args.workers, args)
        if code != 0:
            return code

    status = sweep.status()
    counts = status["counts"]
    _print(f"[sweep] resume finished: {counts['done']}/"
           f"{status['total']} done, "
           f"{counts['quarantined']} quarantined, "
           f"{counts['pending']} pending")
    if counts["quarantined"]:
        for fingerprint, record in sorted(sweep.quarantined().items()):
            failed = record.get("failed", {})
            _print(f"[sweep]   quarantined "
                   f"{record.get('label', fingerprint)}: "
                   f"{failed.get('error', '?')}")
    return 0 if counts["pending"] == 0 and counts["leased"] == 0 else 1


def _cmd_merge(args: argparse.Namespace) -> int:
    sweep = SweepDir(args.directory)
    try:
        manifest = sweep.load_manifest()
    except ManifestError as exc:
        _print(f"error: {exc}")
        return 2
    cache = sweep.cache()
    quarantined = sweep.quarantined()
    entries: List[Dict[str, Any]] = []
    missing = 0
    for task in manifest.tasks:
        entry: Dict[str, Any] = {"label": task.label,
                                 "fingerprint": task.fingerprint}
        payload = cache.load(task.fingerprint)
        if payload is not None:
            entry["status"] = "done"
            entry["payload"] = payload
        elif task.fingerprint in quarantined:
            entry["status"] = "quarantined"
            entry["failed"] = quarantined[task.fingerprint]["failed"]
        else:
            entry["status"] = "missing"
            missing += 1
        entries.append(entry)
    document = {"sweep": manifest.name, "results": entries}
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        _print(f"[sweep] merged {len(entries)} result(s) "
               f"({missing} missing) -> {args.out}")
    else:
        print(text, end="")
    return 1 if missing else 0


def _cmd_run(args: argparse.Namespace) -> int:
    code = _cmd_init(args)
    if code != 0:
        return code
    return _cmd_resume(args)


def _add_worker_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--expiry-s", type=float, default=30.0,
                        help="seconds without a heartbeat before a "
                             "shard lease is stealable (default 30)")
    parser.add_argument("--retries", type=int, default=1,
                        help="per-task retry budget before a "
                             "deterministic failure is quarantined")
    parser.add_argument("--poll-s", type=float, default=0.5,
                        help="idle seconds between scans when every "
                             "runnable shard is leased elsewhere")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cebinae-repro sweep",
        description="Crash-resumable distributed sweeps: manifest of "
                    "fingerprinted tasks, lease-claiming workers, "
                    "quarantine for poison tasks, kill -9-safe resume.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_init = sub.add_parser(
        "init", help="compile suite specs into a sweep manifest")
    p_init.add_argument("directory")
    p_init.add_argument("--suite", required=True,
                        help="directory of declarative suite specs")
    p_init.add_argument("--backend",
                        help="override the simulation backend for "
                             "dumbbell specs")
    p_init.add_argument("--shard-size", type=int, default=1,
                        help="tasks per lease shard (default 1)")
    p_init.add_argument("--force", action="store_true",
                        help="overwrite a differing existing manifest")
    p_init.set_defaults(handler=_cmd_init)

    p_work = sub.add_parser(
        "work", help="run one worker process against a sweep")
    p_work.add_argument("directory")
    p_work.add_argument("--worker-id",
                        help="stable worker name (default: w<pid>)")
    p_work.add_argument("--max-tasks", type=int,
                        help="stop after completing this many tasks")
    p_work.add_argument("--spans", action="store_true",
                        help="record lifecycle spans to "
                             "metrics/<worker>.spans.jsonl")
    _add_worker_options(p_work)
    p_work.set_defaults(handler=_cmd_work)

    p_status = sub.add_parser(
        "status", help="per-shard progress from the sweep dir alone")
    p_status.add_argument("directory")
    p_status.add_argument("--json", action="store_true")
    p_status.set_defaults(handler=_cmd_status)

    p_watch = sub.add_parser(
        "watch", help="refresh-loop fleet view: per-worker progress, "
                      "heartbeats, throughput, ETA")
    p_watch.add_argument("directory")
    p_watch.add_argument("--interval", type=float, default=2.0,
                         help="seconds between refreshes (default 2)")
    p_watch.add_argument("--once", action="store_true",
                         help="print one view and exit")
    p_watch.add_argument("--json", action="store_true",
                         help="with --once: print the canonical "
                              "aggregate document as JSON")
    p_watch.set_defaults(handler=_cmd_watch)

    p_resume = sub.add_parser(
        "resume", help="break expired leases and finish the sweep")
    p_resume.add_argument("directory")
    p_resume.add_argument("--workers", type=int, default=1)
    p_resume.add_argument("--quiet", action="store_true")
    _add_worker_options(p_resume)
    p_resume.set_defaults(handler=_cmd_resume)

    p_merge = sub.add_parser(
        "merge", help="write the ordered merged result document")
    p_merge.add_argument("directory")
    p_merge.add_argument("--out", help="output path (default: stdout)")
    p_merge.set_defaults(handler=_cmd_merge)

    p_run = sub.add_parser(
        "run", help="init + resume in one command")
    p_run.add_argument("directory")
    p_run.add_argument("--suite", required=True)
    p_run.add_argument("--backend")
    p_run.add_argument("--shard-size", type=int, default=1)
    p_run.add_argument("--force", action="store_true")
    p_run.add_argument("--workers", type=int, default=1)
    p_run.add_argument("--quiet", action="store_true")
    _add_worker_options(p_run)
    p_run.set_defaults(handler=_cmd_run)

    args = parser.parse_args(argv)
    handler = args.handler
    try:
        return int(handler(args))
    except SweepShutdown:
        return EXIT_INTERRUPTED


if __name__ == "__main__":
    sys.exit(main())
