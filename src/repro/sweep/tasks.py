"""Deterministic demo tasks for sweep tests and chaos drills.

The fabric's ``callable`` manifest source rebuilds tasks from
``"pkg.mod:name"`` strings, so worker *subprocesses* need an importable
module holding the functions the chaos tests sweep over.  Everything
here is a pure function of its JSON-able kwargs — equal kwargs produce
byte-identical results, which is what lets a killed-and-resumed sweep
merge to the same document as an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Dict


def checksum(label: str, seed: int, rounds: int = 1000) -> Dict[str, Any]:
    """Deterministic busywork: iterated SHA-256 over the kwargs.

    ``rounds`` tunes wall time (about 1ms per 1000 rounds), so chaos
    drills can widen the window in which a kill lands mid-task without
    touching the result, which depends only on ``label``/``seed``/
    ``rounds``.
    """
    digest = f"{label}:{seed}:{rounds}".encode("utf-8")
    for _ in range(rounds):
        digest = hashlib.sha256(digest).digest()
    return {"label": label, "seed": seed, "rounds": rounds,
            "digest": digest.hex()}


def slow_checksum(label: str, seed: int, rounds: int = 1000,
                  wall_s: float = 0.5) -> Dict[str, Any]:
    """:func:`checksum` padded to at least ``wall_s`` wall seconds.

    The sleep is host-side pacing only — it widens the kill window for
    chaos drills and never reaches the result payload, so resumed
    sweeps still merge byte-identically.
    """
    started = time.monotonic()  # simlint: allow[D103] chaos-drill pacing
    result = checksum(label, seed, rounds)
    remaining = wall_s - (time.monotonic() - started)  # simlint: allow[D103] chaos-drill pacing
    if remaining > 0:
        time.sleep(remaining)
    return result


def always_fails(label: str, message: str = "synthetic failure"
                 ) -> Dict[str, Any]:
    """Deterministic casualty: raises on every attempt.

    Exercises the retry-then-quarantine path; the sweep should park it
    and keep going rather than wedge the shard.
    """
    raise ValueError(f"{label}: {message}")


def fails_until_marker(label: str, marker: str) -> Dict[str, Any]:
    """Transient casualty: fails while ``marker`` (a path) is absent.

    Tests create the marker between attempts to model a fault that
    heals — e.g. an NFS blip — and assert the retry/backoff path
    eventually lands the result.
    """
    import os
    if not os.path.exists(marker):
        raise RuntimeError(f"{label}: marker {marker} absent")
    return {"label": label, "healed": True}


def flaky(label: str, counter: str, fail_first: int = 1
          ) -> Dict[str, Any]:
    """Transient casualty: fails its first ``fail_first`` attempts.

    ``counter`` is a scratch file tracking the attempt count across
    calls, so tests can assert the worker's in-process retry/backoff
    loop (not the fabric) healed the task.  Deliberately impure —
    never use it where byte-identical resumption is being asserted.
    """
    import os
    count = 0
    if os.path.exists(counter):
        with open(counter, "r", encoding="utf-8") as handle:
            count = int(handle.read().strip() or 0)
    count += 1
    with open(counter, "w", encoding="utf-8") as handle:
        handle.write(str(count))
    if count <= fail_first:
        raise RuntimeError(f"{label}: transient failure #{count}")
    return {"label": label, "attempts": count}
