"""Sweep manifests: the on-disk task list a sweep is resumed from.

The manifest is the fabric's source of truth.  It is written once at
``sweep init`` with the same hygiene as
:meth:`~repro.experiments.parallel.ResultCache.store` (write-to-temp,
fsync, atomic rename) and never mutated afterwards: *progress* lives
in the result cache (done), the quarantine directory (parked), and the
lease directory (in flight), so any process can compute the sweep's
exact state from the directory alone — which is what ``sweep status``
and ``sweep resume`` do after a ``kill -9``.

Each task entry records its label, its cache ``fingerprint`` (shared
with the single-pool executor, so warm figure-sweep caches satisfy
sweep tasks and vice versa), its shard assignment, and a ``source``
document from which a worker process rebuilds the executable
:class:`~repro.experiments.parallel.Task`:

``{"type": "runspec", ...}``
    A dumbbell scenario point: a full
    :meth:`~repro.experiments.parallel.RunSpec.to_dict` payload.
``{"type": "parking", ...}``
    A parking-lot point: the
    :class:`~repro.suite.spec.ParkingLotSpec` payload plus discipline,
    seed, and resolved Cebinae parameters.
``{"type": "callable", "fn": "pkg.mod:name", "kwargs": {...}}``
    A generic deterministic function of JSON-able kwargs returning a
    JSON-able value — the escape hatch the chaos tests and non-scenario
    sweeps (e.g. heavy-hitter trials) use.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from ..experiments.parallel import (CACHE_VERSION, FailedRun, ResultCache,
                                    RunSpec, Task, scenario_task)
from ..experiments.runner import ScenarioResult

#: Bump when the manifest layout changes incompatibly.
MANIFEST_VERSION = 1

#: Source documents a manifest task may carry.
SOURCE_TYPES = ("runspec", "parking", "callable")


class ManifestError(ValueError):
    """A manifest document failed validation or could not be loaded."""


def _atomic_write_json(path: Path, document: Dict[str, Any]) -> None:
    """Write-to-temp + fsync + rename, the repo's torn-write hygiene."""
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", dir=path.parent, suffix=".tmp", delete=False,
        encoding="utf-8")
    try:
        with handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def resolve_callable(spec: str) -> Callable[..., Any]:
    """Import ``"pkg.mod:qualname"`` back into the function object."""
    module_name, _, qualname = spec.partition(":")
    if not module_name or not qualname:
        raise ManifestError(
            f"callable spec {spec!r} must look like 'pkg.mod:name'")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ManifestError(f"{spec!r} resolved to non-callable {obj!r}")
    return obj


def _identity(payload: Dict[str, Any]) -> Dict[str, Any]:
    return payload


@dataclass(frozen=True)
class ManifestTask:
    """One fingerprinted unit of sweep work."""

    index: int
    label: str
    fingerprint: str
    shard: int
    kind: str
    source: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {"index": self.index, "label": self.label,
                "fingerprint": self.fingerprint, "shard": self.shard,
                "kind": self.kind, "source": self.source}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ManifestTask":
        source = data["source"]
        if source.get("type") not in SOURCE_TYPES:
            raise ManifestError(
                f"task {data.get('label')!r}: unknown source type "
                f"{source.get('type')!r}; known: {list(SOURCE_TYPES)}")
        return cls(index=int(data["index"]), label=str(data["label"]),
                   fingerprint=str(data["fingerprint"]),
                   shard=int(data["shard"]), kind=str(data["kind"]),
                   source=dict(source))

    def task(self) -> Task:
        """Rebuild the executable pool task from the source document."""
        kind = self.source["type"]
        if kind == "runspec":
            task = scenario_task(RunSpec.from_dict(
                self.source["runspec"]))
            return dataclasses.replace(task, label=self.label)
        if kind == "parking":
            from ..suite.parking import run_parking_lot
            return Task(
                fn=run_parking_lot,
                kwargs={"spec": self._parking_spec(),
                        "discipline_name": self.source["discipline"],
                        "seed": self.source["seed"],
                        "cebinae": self._cebinae_params(),
                        "collect_series": self.source["collect_series"]},
                label=self.label, fingerprint=self.fingerprint,
                kind="ScenarioResult",
                encode=ScenarioResult.to_dict,
                decode=ScenarioResult.from_dict)
        assert kind == "callable"
        return Task(fn=resolve_callable(self.source["fn"]),
                    kwargs=dict(self.source.get("kwargs", {})),
                    label=self.label, fingerprint=self.fingerprint,
                    kind=self.kind, encode=_identity, decode=_identity)

    def _parking_spec(self) -> Any:
        from ..suite.spec import ParkingLotSpec
        return ParkingLotSpec.from_dict(self.source["parking_name"],
                                        self.source["parking_lot"])

    def _cebinae_params(self) -> Any:
        from ..core.params import CebinaeParams
        return CebinaeParams.from_dict(self.source["cebinae"])


@dataclass
class SweepManifest:
    """The immutable task list of one sweep."""

    name: str
    tasks: List[ManifestTask] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"manifest_version": MANIFEST_VERSION,
                "cache_version": CACHE_VERSION,
                "name": self.name,
                "tasks": [task.to_dict() for task in self.tasks]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepManifest":
        version = data.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise ManifestError(
                f"manifest_version {version!r} is not "
                f"{MANIFEST_VERSION}; re-init the sweep")
        if data.get("cache_version") != CACHE_VERSION:
            raise ManifestError(
                f"manifest was built for cache_version "
                f"{data.get('cache_version')!r}, this build uses "
                f"{CACHE_VERSION}; its fingerprints would never match "
                f"— re-init the sweep")
        tasks = [ManifestTask.from_dict(entry)
                 for entry in data.get("tasks", [])]
        labels = [task.label for task in tasks]
        if len(set(labels)) != len(labels):
            raise ManifestError("manifest task labels collide")
        return cls(name=str(data.get("name", "sweep")), tasks=tasks)

    def shards(self) -> Dict[int, List[ManifestTask]]:
        """Shard id → its tasks, in manifest order."""
        out: Dict[int, List[ManifestTask]] = {}
        for task in self.tasks:
            out.setdefault(task.shard, []).append(task)
        return out


def manifest_from_runs(name: str, runs: Iterable[Any],
                       shard_size: int = 1,
                       labels: Optional[List[str]] = None
                       ) -> SweepManifest:
    """Compile suite :class:`~repro.suite.spec.CompiledRun`s to a manifest.

    ``shard_size`` groups consecutive tasks under one lease: larger
    shards amortise claim traffic for huge sweeps, smaller shards give
    finer crash granularity.  ``labels`` overrides the per-run labels
    (the suite CLI prefixes them with the owning spec's name so runs
    from different specs cannot collide).
    """
    if shard_size < 1:
        raise ManifestError(f"shard_size must be >= 1, got {shard_size}")
    tasks: List[ManifestTask] = []
    for index, run in enumerate(runs):
        label = labels[index] if labels is not None else run.label
        shard = index // shard_size
        if getattr(run, "runspec", None) is not None:
            source: Dict[str, Any] = {
                "type": "runspec",
                "runspec": run.runspec.to_dict()}
            fingerprint = run.runspec.fingerprint()
        else:
            parking = run.parking
            spec, discipline, seed, params, collect_series = parking
            source = {"type": "parking",
                      "parking_name": spec.name,
                      "parking_lot": spec.to_dict(),
                      "discipline": discipline.value,
                      "seed": seed,
                      "cebinae": params.to_dict(),
                      "collect_series": collect_series}
            fingerprint = run.fingerprint()
        tasks.append(ManifestTask(
            index=index, label=label, fingerprint=fingerprint,
            shard=shard, kind="ScenarioResult", source=source))
    return SweepManifest(name=name, tasks=tasks)


def manifest_from_callables(name: str,
                            entries: Iterable[Dict[str, Any]],
                            shard_size: int = 1) -> SweepManifest:
    """A manifest of generic ``pkg.mod:fn`` tasks.

    Each entry needs ``label``, ``fn``, and ``kwargs``; the fingerprint
    is derived from them with the executor's canonical scheme so equal
    entries dedup across sweeps exactly like scenario points do.
    """
    from ..experiments.parallel import fingerprint as _fingerprint
    if shard_size < 1:
        raise ManifestError(f"shard_size must be >= 1, got {shard_size}")
    tasks: List[ManifestTask] = []
    for index, entry in enumerate(entries):
        kwargs = dict(entry.get("kwargs", {}))
        tasks.append(ManifestTask(
            index=index, label=str(entry["label"]),
            fingerprint=_fingerprint(
                "callable", {"fn": entry["fn"], "kwargs": kwargs}),
            shard=index // shard_size, kind="callable",
            source={"type": "callable", "fn": str(entry["fn"]),
                    "kwargs": kwargs}))
    return SweepManifest(name=name, tasks=tasks)


# --------------------------------------------------------------------------
# The sweep directory: manifest + cache + leases + quarantine + metrics.
# --------------------------------------------------------------------------

class SweepDir:
    """Filesystem layout and derived state of one sweep directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- paths -------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    @property
    def cache_dir(self) -> Path:
        return self.root / "cache"

    @property
    def lease_dir(self) -> Path:
        return self.root / "leases"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    @property
    def metrics_dir(self) -> Path:
        return self.root / "metrics"

    # -- lifecycle ---------------------------------------------------------
    def initialise(self, manifest: SweepManifest,
                   force: bool = False) -> None:
        """Create the directory tree and persist the manifest.

        Re-initialising over an existing manifest is refused unless the
        task lists agree (same labels and fingerprints) — progress made
        under the old manifest would otherwise be silently misread.
        ``force`` overwrites regardless.
        """
        if self.manifest_path.exists() and not force:
            existing = self.load_manifest()
            ours = [(t.label, t.fingerprint) for t in manifest.tasks]
            theirs = [(t.label, t.fingerprint) for t in existing.tasks]
            if ours != theirs:
                raise ManifestError(
                    f"{self.manifest_path} already holds a different "
                    f"manifest ({len(theirs)} task(s)); pass --force "
                    f"to overwrite or point at a fresh directory")
        for directory in (self.root, self.cache_dir, self.lease_dir,
                          self.quarantine_dir, self.metrics_dir):
            directory.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(self.manifest_path, manifest.to_dict())

    def load_manifest(self) -> SweepManifest:
        try:
            with open(self.manifest_path, "r",
                      encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            raise ManifestError(
                f"no manifest at {self.manifest_path}; run "
                f"'cebinae-repro sweep init' first") from None
        except ValueError as exc:
            raise ManifestError(
                f"{self.manifest_path}: corrupt manifest: {exc}"
                ) from exc
        return SweepManifest.from_dict(data)

    def cache(self) -> ResultCache:
        return ResultCache(self.cache_dir)

    # -- derived task state ------------------------------------------------
    def is_done(self, fingerprint: str) -> bool:
        """Done == the atomic cache entry exists (complete by construction)."""
        return (self.cache_dir / f"{fingerprint}.json").exists()

    def quarantine_path(self, fingerprint: str) -> Path:
        return self.quarantine_dir / f"{fingerprint}.json"

    def is_quarantined(self, fingerprint: str) -> bool:
        return self.quarantine_path(fingerprint).exists()

    def quarantine(self, task: ManifestTask, failed: FailedRun,
                   worker_id: str) -> None:
        """Park a deterministic failure (atomic, idempotent)."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(self.quarantine_path(task.fingerprint), {
            "quarantine_version": 1,
            "label": task.label,
            "fingerprint": task.fingerprint,
            "worker_id": worker_id,
            "failed": failed.to_dict()})

    def quarantined(self) -> Dict[str, Dict[str, Any]]:
        """Fingerprint → quarantine record, unreadable entries skipped."""
        out: Dict[str, Dict[str, Any]] = {}
        for path in sorted(self.quarantine_dir.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    out[path.stem] = json.load(handle)
            except (OSError, ValueError):
                continue
        return out

    def status(self, clock: Optional[Callable[[], float]] = None
               ) -> Dict[str, Any]:
        """The sweep's full progress, computed from the directory alone.

        ``clock`` (wall seconds) is injectable so tests can pin lease
        heartbeat ages; None uses the lease store's wall clock.  The
        returned ``lease_info`` lists *every* lease file — expired ones
        flagged, with heartbeat ages — while ``leases``/``shards`` keep
        counting only live ones, as before.
        """
        from .lease import LeaseStore
        manifest = self.load_manifest()
        store = LeaseStore(self.lease_dir) if clock is None else \
            LeaseStore(self.lease_dir, clock=clock)
        lease_info = store.describe()
        leased = {info["key"]: info for info in lease_info
                  if not info["expired"]}
        shards: Dict[int, Dict[str, Any]] = {}
        counts = {"done": 0, "quarantined": 0, "leased": 0,
                  "pending": 0}
        for task in manifest.tasks:
            if self.is_done(task.fingerprint):
                state = "done"
            elif self.is_quarantined(task.fingerprint):
                state = "quarantined"
            elif _shard_key(task.shard) in leased:
                state = "leased"
            else:
                state = "pending"
            counts[state] += 1
            shard = shards.setdefault(task.shard, {
                "total": 0, "done": 0, "quarantined": 0,
                "worker": None})
            shard["total"] += 1
            if state in ("done", "quarantined"):
                shard[state] += 1
            info = leased.get(_shard_key(task.shard))
            if info is not None:
                shard["worker"] = info["worker"]
        return {"name": manifest.name,
                "total": len(manifest.tasks),
                "counts": counts,
                "shards": {str(k): v for k, v in sorted(shards.items())},
                "leases": sorted(leased),
                "lease_info": lease_info}


def _shard_key(shard: int) -> str:
    """The lease key for one shard."""
    return f"shard-{shard:05d}"
