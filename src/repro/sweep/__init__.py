"""``repro.sweep``: the crash-resumable distributed sweep fabric.

A *sweep* is a directory on disk that fully describes a parameter
study and its progress — no Python state survives anywhere else:

* ``manifest.json`` — the versioned, fsynced list of fingerprinted
  tasks (:mod:`repro.sweep.manifest`), written once at init;
* ``cache/`` — the standard fingerprint-keyed
  :class:`~repro.experiments.parallel.ResultCache` that results stream
  into as they finish (a task is *done* iff its entry exists);
* ``leases/`` — per-shard claim files with heartbeat renewal and
  expiry (:mod:`repro.sweep.lease`), so N independent worker
  processes can share the manifest without a coordinator;
* ``quarantine/`` — deterministic failures, parked after the retry
  budget instead of wedging the sweep;
* ``metrics/`` — one labelled metrics snapshot per worker.

Workers (:mod:`repro.sweep.worker`, CLI ``cebinae-repro sweep work``)
are crash-isolated: a SIGKILLed worker's shard lease expires and the
shard is re-claimed by any survivor or a later ``sweep resume``;
because results are keyed by the same fingerprints the single-pool
executor uses, re-execution after a crash is idempotent and the merged
result set is byte-identical to an uninterrupted run.
"""

from .lease import Lease, LeaseStore
from .manifest import (MANIFEST_VERSION, ManifestTask, SweepDir,
                       SweepManifest, manifest_from_runs)
from .worker import SweepShutdown, SweepWorker, WorkerConfig, WorkerReport

__all__ = [
    "Lease", "LeaseStore", "MANIFEST_VERSION", "ManifestTask",
    "SweepDir", "SweepManifest", "SweepShutdown", "SweepWorker",
    "WorkerConfig", "WorkerReport", "manifest_from_runs",
]
