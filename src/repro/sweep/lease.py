"""Shard leases: crash-safe work claiming over a shared directory.

A lease is a small JSON file ``leases/<key>.lease`` naming the worker
that currently owns one shard of the manifest.  The protocol needs
nothing but POSIX filesystem atomicity, so it works for N processes on
one host today and N hosts on a shared filesystem tomorrow:

* **Claim** — the worker writes a temp file (fsynced) and
  ``os.link``\\ s it to the lease path.  ``link`` fails with
  ``FileExistsError`` if the shard is already owned, and the lease file
  it creates is complete by construction — a reader can never observe
  a torn claim.
* **Renew (heartbeat)** — the owner periodically rewrites the file via
  atomic replace, bumping ``renewed_unix``.  Renewal re-reads the file
  first and refuses if the nonce changed: a worker that lost its lease
  (e.g. it froze past expiry and was stolen from) finds out on its
  next heartbeat.
* **Expiry / steal** — a lease is *expired* when its last heartbeat is
  older than ``expiry_s``, or when its owning pid is provably gone on
  this host (the post-``kill -9`` fast path).  A claimer that finds an
  expired lease unlinks it and retries the ``link`` once.

The steal path has a benign race: two claimers can, in a narrow
window, both conclude the same lease is dead and both run the shard.
That duplicates *work*, never *results* — tasks write to the
fingerprint-keyed cache via atomic same-content stores, so execution
is idempotent by construction and the fabric prefers rare duplicate
computation over a coordinator process.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

#: Bump when the lease-file layout changes incompatibly.
LEASE_VERSION = 1

#: Default seconds without a heartbeat before a lease is stealable.
DEFAULT_EXPIRY_S = 30.0


def _wall_clock() -> float:
    # Lease timestamps must be comparable across processes (and, on a
    # shared filesystem, across hosts), which only the wall clock is.
    # Host-side orchestration state: never flows into simulation.
    return time.time()  # simlint: allow[D103] cross-process lease timestamps


@dataclass
class Lease:
    """One claimed shard, as held by its owning worker."""

    key: str
    worker_id: str
    nonce: str
    path: Path
    expiry_s: float
    renewed_unix: float


class LeaseStore:
    """Claim/renew/release shard leases under one directory.

    ``clock`` is injectable so expiry logic is testable without
    sleeping; it must return wall-clock seconds.
    """

    def __init__(self, directory: Union[str, Path],
                 expiry_s: float = DEFAULT_EXPIRY_S,
                 clock: Callable[[], float] = _wall_clock) -> None:
        if expiry_s <= 0:
            raise ValueError(f"expiry_s must be > 0, got {expiry_s}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.expiry_s = expiry_s
        self._clock = clock
        #: Leases this store stole after expiry (observability).
        self.expired_claims = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.lease"

    # -- record I/O --------------------------------------------------------
    def read(self, key: str) -> Optional[Dict[str, Any]]:
        """The current lease record for ``key``, or None if unclaimed."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict):
            return None
        return record

    def _record(self, key: str, worker_id: str, nonce: str,
                acquired: float) -> Dict[str, Any]:
        return {"lease_version": LEASE_VERSION, "key": key,
                "worker_id": worker_id, "nonce": nonce,
                "pid": os.getpid(), "host": socket.gethostname(),
                "acquired_unix": acquired,
                "renewed_unix": self._clock(),
                "expiry_s": self.expiry_s}

    def _write(self, path: Path, record: Dict[str, Any]) -> str:
        """Write a record to a temp file (fsynced); return its name."""
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.directory, suffix=".tmp", delete=False,
            encoding="utf-8")
        try:
            with handle:
                json.dump(record, handle)
                handle.flush()
                os.fsync(handle.fileno())
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return handle.name

    # -- expiry ------------------------------------------------------------
    def is_expired(self, record: Dict[str, Any]) -> bool:
        """Heartbeat too old, or owner provably dead on this host."""
        renewed = record.get("renewed_unix")
        expiry = record.get("expiry_s", self.expiry_s)
        if not isinstance(renewed, (int, float)):
            return True
        if self._clock() - float(renewed) > float(expiry):
            return True
        pid = record.get("pid")
        if (isinstance(pid, int) and pid > 0
                and record.get("host") == socket.gethostname()):
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True     # kill -9 fast path: no waiting out expiry.
            except (PermissionError, OSError):
                pass            # Alive (or unknowable): trust the heartbeat.
        return False

    # -- the protocol ------------------------------------------------------
    def claim(self, key: str, worker_id: str) -> Optional[Lease]:
        """Try to acquire ``key``; None means someone else owns it."""
        nonce = os.urandom(8).hex()
        now = self._clock()
        record = self._record(key, worker_id, nonce, acquired=now)
        path = self._path(key)
        for attempt in range(2):
            temp = self._write(path, record)
            try:
                os.link(temp, path)
                return Lease(key=key, worker_id=worker_id, nonce=nonce,
                             path=path, expiry_s=self.expiry_s,
                             renewed_unix=record["renewed_unix"])
            except FileExistsError:
                pass
            finally:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
            current = self.read(key)
            if current is None:
                continue        # Vanished (released): retry the link.
            if attempt == 0 and self.is_expired(current):
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass
                self.expired_claims += 1
                continue        # Stole it: retry the link once.
            return None
        return None

    def renew(self, lease: Lease) -> bool:
        """Heartbeat: True if still owned, False if the lease was lost."""
        current = self.read(lease.key)
        if (current is None
                or current.get("nonce") != lease.nonce
                or current.get("worker_id") != lease.worker_id):
            return False
        current["renewed_unix"] = self._clock()
        temp = self._write(lease.path, current)
        os.replace(temp, lease.path)
        lease.renewed_unix = current["renewed_unix"]
        return True

    def release(self, lease: Lease) -> None:
        """Drop the lease if (and only if) we still own it."""
        current = self.read(lease.key)
        if current is not None and current.get("nonce") == lease.nonce:
            try:
                os.unlink(lease.path)
            except FileNotFoundError:
                pass

    # -- observation -------------------------------------------------------
    def active(self) -> List[Dict[str, Any]]:
        """All live (non-expired) lease records, sorted by key."""
        out = []
        for path in sorted(self.directory.glob("*.lease")):
            record = self.read(path.stem)
            if record is not None and not self.is_expired(record):
                out.append(record)
        return out

    def describe(self) -> List[Dict[str, Any]]:
        """One row per lease file — expired ones included, flagged.

        Unlike :meth:`active`, this is the *watch-view* reading: the
        operator wants to see a stale lease (with its heartbeat age)
        precisely because :meth:`break_expired` would reclaim it.
        ``age_s`` is seconds since the last heartbeat on this store's
        clock (None when the record carries no usable timestamp, which
        also marks it expired).
        """
        out = []
        for path in sorted(self.directory.glob("*.lease")):
            record = self.read(path.stem)
            if record is None:
                continue
            renewed = record.get("renewed_unix")
            age_s: Optional[float] = None
            if isinstance(renewed, (int, float)) \
                    and not isinstance(renewed, bool):
                age_s = max(0.0, self._clock() - float(renewed))
            out.append({
                "key": str(record.get("key", path.stem)),
                "worker": str(record.get("worker_id", "")),
                "age_s": age_s,
                "expiry_s": float(record.get("expiry_s",
                                             self.expiry_s)),
                "expired": self.is_expired(record),
            })
        return out

    def break_expired(self) -> int:
        """Unlink every expired lease; returns how many were broken."""
        broken = 0
        for path in sorted(self.directory.glob("*.lease")):
            record = self.read(path.stem)
            if record is None or self.is_expired(record):
                try:
                    path.unlink()
                except FileNotFoundError:
                    continue
                broken += 1
        return broken
