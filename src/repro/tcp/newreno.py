"""TCP NewReno congestion control (RFC 5681 + RFC 6582).

The classic loss-based algorithm: slow start, AIMD congestion
avoidance, halving on fast retransmit.  The NewReno partial-ACK logic
itself lives in the shared socket (it is about retransmission, not
window arithmetic); this class supplies the window dynamics.
"""

from __future__ import annotations

from .cca import (AckContext, CongestionControl,
                  congestion_avoidance_increase, slow_start_increase)


class NewReno(CongestionControl):
    """Loss-based AIMD with multiplicative decrease of 1/2."""

    name = "newreno"
    beta = 0.5

    def on_ack(self, ctx: AckContext) -> None:
        if ctx.in_recovery:
            return
        if self.in_slow_start:
            slow_start_increase(self, ctx.acked_bytes)
        else:
            congestion_avoidance_increase(self, ctx.acked_bytes)

    def on_enter_recovery(self, in_flight_bytes: int, now_ns: int) -> None:
        self.ssthresh_bytes = max(in_flight_bytes * self.beta,
                                  2 * self.mss)
        self.cwnd_bytes = self.ssthresh_bytes
        self.clamp()
