"""Flow wiring helpers and the CCA registry.

Experiments describe workloads as "{NewReno:16, Cubic:1}"-style mixes
(Table 2's ``CCAs`` column); this module turns those descriptions into
connected sender/receiver pairs on a topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Dict, List, Optional,
                    Sequence, Tuple, Type)

from ..netsim.engine import Simulator
from ..netsim.node import Host
from ..netsim.packet import FlowId
from ..netsim.tracing import FlowMonitor

if TYPE_CHECKING:
    from ..core.units import Bytes, TimeNs
from .bbr import Bbr
from .cca import CongestionControl
from .cubic import Bic, Cubic
from .newreno import NewReno
from .socket import TcpReceiver, TcpSender
from .vegas import Vegas

#: Registry of congestion control algorithms by paper name.
CCA_REGISTRY: Dict[str, Type[CongestionControl]] = {
    "newreno": NewReno,
    "cubic": Cubic,
    "bic": Bic,
    "vegas": Vegas,
    "bbr": Bbr,
}


def make_cca(name: str) -> CongestionControl:
    """Instantiate a CCA by its (case-insensitive) registry name."""
    try:
        return CCA_REGISTRY[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(CCA_REGISTRY))
        raise ValueError(f"unknown CCA {name!r}; known: {known}") from None


@dataclass
class TcpFlow:
    """A connected sender/receiver pair."""

    flow_id: FlowId
    sender: TcpSender
    receiver: TcpReceiver
    cca_name: str
    start_time_ns: TimeNs = 0

    @property
    def goodput_bytes(self) -> Bytes:
        return self.receiver.delivered_bytes


def connect_flow(sender_host: Host, receiver_host: Host, cca_name: str,
                 monitor: Optional[FlowMonitor] = None,
                 src_port: int = 10000, dst_port: int = 80,
                 start_time_ns: TimeNs = 0,
                 max_bytes: Optional[int] = None,
                 ecn_enabled: bool = False) -> TcpFlow:
    """Create a TCP flow between two hosts and schedule its start."""
    flow_id = FlowId(src=sender_host.node_id, dst=receiver_host.node_id,
                     src_port=src_port, dst_port=dst_port)
    receiver = TcpReceiver(receiver_host, flow_id, monitor=monitor)
    sender = TcpSender(sender_host, flow_id, make_cca(cca_name),
                       max_bytes=max_bytes, ecn_enabled=ecn_enabled)
    sim: Simulator = sender_host.sim
    if start_time_ns <= sim.now_ns:
        sender.start()
    else:
        sim.schedule_at(start_time_ns, sender.start)
    return TcpFlow(flow_id=flow_id, sender=sender, receiver=receiver,
                   cca_name=cca_name.lower(), start_time_ns=start_time_ns)


def expand_mix(mix: Sequence[Tuple[str, int]]) -> List[str]:
    """Expand [("newreno", 16), ("cubic", 1)] into a per-flow CCA list.

    Order matters: flow index in figures follows the mix order (e.g.
    Figure 7's flows 0-15 are Vegas and flow 16 is NewReno).
    """
    names: List[str] = []
    for name, count in mix:
        if count < 0:
            raise ValueError(f"negative count for {name}")
        names.extend([name] * count)
    return names
