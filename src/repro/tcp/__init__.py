"""TCP substrate: shared transport machinery plus the paper's CCA mix.

NewReno (loss), Cubic/Bic (aggressive loss), Vegas (delay) and BBRv1
(model-based, loss-oblivious) — the set the paper evaluates Cebinae
against — all run over one sender/receiver implementation.
"""

from .bbr import Bbr, BbrState
from .cca import (INITIAL_CWND_SEGMENTS, MIN_CWND_SEGMENTS, AckContext,
                  CongestionControl, WindowedFilter)
from .cubic import Bic, Cubic
from .flows import (CCA_REGISTRY, TcpFlow, connect_flow, expand_mix,
                    make_cca)
from .newreno import NewReno
from .socket import (DUPACK_THRESHOLD, INITIAL_RTO_NS, MAX_RTO_NS,
                     MIN_RTO_NS, RttEstimator, TcpReceiver, TcpSender)
from .udp import UdpSender, UdpSink, connect_udp_flow
from .vegas import Vegas

__all__ = [
    "AckContext", "CongestionControl", "WindowedFilter",
    "INITIAL_CWND_SEGMENTS", "MIN_CWND_SEGMENTS",
    "NewReno", "Cubic", "Bic", "Vegas", "Bbr", "BbrState",
    "TcpSender", "TcpReceiver", "RttEstimator",
    "MIN_RTO_NS", "MAX_RTO_NS", "INITIAL_RTO_NS", "DUPACK_THRESHOLD",
    "CCA_REGISTRY", "make_cca", "TcpFlow", "connect_flow", "expand_mix",
    "UdpSender", "UdpSink", "connect_udp_flow",
]
