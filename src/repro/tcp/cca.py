"""Congestion control algorithm (CCA) interface.

The paper evaluates Cebinae against a representative mix of CCAs:
NewReno (classic loss-based), Cubic and Bic (aggressive loss-based),
Vegas (delay-based) and BBRv1 (model-based, loss-oblivious).  Each is
implemented as a subclass of :class:`CongestionControl`; the TCP
machinery (:mod:`repro.tcp.socket`) is shared.

The contract: the socket owns reliability (sequence numbers,
retransmission, recovery bookkeeping) and calls into the CCA on ACKs,
losses, timeouts and ECN signals; the CCA owns ``cwnd_bytes`` and an
optional pacing rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..netsim.packet import MSS_BYTES

if TYPE_CHECKING:
    from ..core.units import BitsPerSec, Bytes, TimeNs

#: Initial congestion window (RFC 6928): 10 segments.
INITIAL_CWND_SEGMENTS = 10
#: Never shrink below this many segments (loss-based algorithms).
MIN_CWND_SEGMENTS = 2


@dataclass
class AckContext:
    """Everything a CCA may want to know about one cumulative ACK."""

    acked_bytes: Bytes
    ack_seq: int
    rtt_ns: Optional[TimeNs]
    now_ns: TimeNs
    in_flight_bytes: Bytes
    snd_nxt: int
    delivery_rate_bps: Optional[BitsPerSec] = None
    is_app_limited: bool = False
    in_recovery: bool = False


class CongestionControl:
    """Base class: a fixed-window sender (useful for tests)."""

    name = "fixed"

    def __init__(self, mss_bytes: Bytes = MSS_BYTES) -> None:
        self.mss = mss_bytes
        self.cwnd_bytes: float = INITIAL_CWND_SEGMENTS * mss_bytes
        self.ssthresh_bytes: float = float("inf")

    # -- signal hooks ----------------------------------------------------
    def on_ack(self, ctx: AckContext) -> None:
        """A cumulative ACK advanced ``snd_una``."""

    def on_enter_recovery(self, in_flight_bytes: Bytes,
                          now_ns: TimeNs) -> None:
        """Triple duplicate ACK: multiplicative decrease goes here."""

    def on_exit_recovery(self, now_ns: TimeNs) -> None:
        """Recovery completed; default is to deflate to ssthresh."""
        self.cwnd_bytes = max(self.ssthresh_bytes,
                              MIN_CWND_SEGMENTS * self.mss)

    def on_retransmit_timeout(self, in_flight_bytes: Bytes,
                              now_ns: int) -> None:
        """RTO fired (RFC 5681 defaults; CCAs may override)."""
        self.ssthresh_bytes = max(in_flight_bytes / 2.0,
                                  MIN_CWND_SEGMENTS * self.mss)
        self.cwnd_bytes = float(self.mss)

    def on_ecn(self, now_ns: TimeNs) -> None:
        """ECN-Echo received (at most once per window, socket-enforced).

        Default mirrors RFC 3168: treat like a loss-based decrease but
        without retransmission.
        """
        self.on_enter_recovery(int(self.cwnd_bytes), now_ns)
        self.on_exit_recovery(now_ns)

    def on_packet_sent(self, size_bytes: Bytes, now_ns: TimeNs,
                       in_flight_bytes: int) -> None:
        """A data segment entered the network (used by BBR)."""

    # -- queries ----------------------------------------------------------
    @property
    def in_slow_start(self) -> bool:
        return self.cwnd_bytes < self.ssthresh_bytes

    def pacing_rate_bps(self) -> Optional[BitsPerSec]:
        """Bits/sec pacing rate, or None for pure ACK clocking."""
        return None

    def clamp(self) -> None:
        """Enforce the floor on cwnd after any adjustment."""
        floor = MIN_CWND_SEGMENTS * self.mss
        if self.cwnd_bytes < floor:
            self.cwnd_bytes = float(floor)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(cwnd={self.cwnd_bytes / self.mss:.1f}"
                f" seg, ssthresh={self.ssthresh_bytes / self.mss:.1f} seg)")


def slow_start_increase(cca: CongestionControl,
                        acked_bytes: Bytes) -> None:
    """Appropriate Byte Counting (RFC 3465, L=1) slow-start growth."""
    cca.cwnd_bytes += min(acked_bytes, cca.mss)


def congestion_avoidance_increase(cca: CongestionControl,
                                  acked_bytes: int) -> None:
    """Standard AIMD additive increase: one MSS per window of ACKs."""
    cca.cwnd_bytes += cca.mss * cca.mss / cca.cwnd_bytes


class WindowedFilter:
    """Max/min of samples within a sliding window (BBR's filters).

    Samples are (time, value); the filter keeps a monotonic deque so
    updates are amortised O(1).
    """

    def __init__(self, window: int, is_max: bool = True) -> None:
        self.window = window
        self.is_max = is_max
        # (time, value), monotonic in value.
        self._samples: List[Tuple[int, float]] = []

    def _better(self, a: float, b: float) -> bool:
        return a >= b if self.is_max else a <= b

    def update(self, time_key: int, value: float) -> None:
        samples = self._samples
        while samples and self._better(value, samples[-1][1]):
            samples.pop()
        samples.append((time_key, value))
        cutoff = time_key - self.window
        while samples and samples[0][0] < cutoff:
            samples.pop(0)

    def get(self, default: float = 0.0) -> float:
        return self._samples[0][1] if self._samples else default

    def reset(self) -> None:
        self._samples.clear()
