"""Unresponsive (UDP-like) constant-bit-rate traffic.

The paper notes that Cebinae "assumes protocols that respond to
capacity limitations — a blind UDP flow may unnecessarily waste network
bandwidth before being delayed and dropped by a downstream Cebinae
router" (section 4).  This module provides that blind flow so the
behaviour is testable: a CBR sender that ignores every congestion
signal, and a sink that measures what actually arrives.
"""

from __future__ import annotations

from typing import Optional

from ..netsim.engine import SECOND, Event, Simulator
from ..netsim.node import Host
from ..netsim.packet import HEADER_BYTES, MSS_BYTES, FlowId, Packet, \
    PacketType
from ..netsim.tracing import FlowMonitor


class UdpSender:
    """A constant-bit-rate sender with no feedback loop."""

    def __init__(self, host: Host, flow: FlowId, rate_bps: float,
                 packet_bytes: int = MSS_BYTES + HEADER_BYTES) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if packet_bytes <= HEADER_BYTES:
            raise ValueError("packet must carry payload")
        self.host = host
        self.sim: Simulator = host.sim
        self.flow = flow
        self.rate_bps = rate_bps
        self.packet_bytes = packet_bytes
        self.interval_ns = int(packet_bytes * 8 * SECOND / rate_bps)
        self.sent_packets = 0
        self.sent_bytes = 0
        self._seq = 0
        self._event: Optional[Event] = None
        self.running = False

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._send_next()

    def stop(self) -> None:
        self.running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _send_next(self) -> None:
        if not self.running:
            return
        payload = self.packet_bytes - HEADER_BYTES
        packet = Packet(flow=self.flow, size_bytes=self.packet_bytes,
                        ptype=PacketType.DATA, seq=self._seq,
                        payload_bytes=payload,
                        sent_time_ns=self.sim.now_ns)
        self._seq += payload
        self.sent_packets += 1
        self.sent_bytes += self.packet_bytes
        self.host.send(packet)
        self._event = self.sim.schedule(self.interval_ns,
                                        self._send_next)


class UdpSink:
    """Counts delivered payload for an unresponsive flow."""

    def __init__(self, host: Host, flow: FlowId,
                 monitor: Optional[FlowMonitor] = None) -> None:
        self.host = host
        self.flow = flow
        self.monitor = monitor
        self.received_packets = 0
        self.received_bytes = 0
        if monitor is not None:
            monitor.register(flow)
        host.register_handler(flow, self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        self.received_packets += 1
        self.received_bytes += packet.payload_bytes
        if self.monitor is not None:
            self.monitor.on_delivered(self.flow, packet.payload_bytes)

    def close(self) -> None:
        self.host.unregister_handler(self.flow)


def connect_udp_flow(sender_host: Host, receiver_host: Host,
                     rate_bps: float,
                     monitor: Optional[FlowMonitor] = None,
                     src_port: int = 20_000, dst_port: int = 9,
                     start_time_ns: int = 0) -> UdpSender:
    """Wire a CBR flow between two hosts and schedule its start."""
    flow = FlowId(src=sender_host.node_id, dst=receiver_host.node_id,
                  src_port=src_port, dst_port=dst_port, protocol="udp")
    UdpSink(receiver_host, flow, monitor=monitor)
    sender = UdpSender(sender_host, flow, rate_bps)
    sim = sender_host.sim
    if start_time_ns <= sim.now_ns:
        sender.start()
    else:
        sim.schedule_at(start_time_ns, sender.start)
    return sender
