"""TCP BBR version 1 (Cardwell et al., 2016).

BBRv1 is the paper's model-based, loss-oblivious representative: it
estimates the bottleneck bandwidth (windowed max of per-ACK delivery
rate samples) and the round-trip propagation delay (windowed min RTT),
paces at ``pacing_gain * btlbw`` and caps inflight at
``cwnd_gain * BDP``.  Because it ignores loss, a single BBR flow can
hold a large share of a buffer-limited bottleneck against any number of
loss-based flows — the behaviour of Figure 8a that Cebinae taxes away.

The implementation follows the BBRv1 Internet-Draft state machine
(STARTUP → DRAIN → PROBE_BW ⇄ PROBE_RTT) with simplified round
accounting: a round ends when the cumulative ACK passes the ``snd_nxt``
recorded at the round's start.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from .cca import AckContext, CongestionControl, WindowedFilter

if TYPE_CHECKING:
    from ..core.units import BitsPerSec, Bytes, TimeNs

#: 2/ln(2): fills the pipe in the same number of RTTs as slow start.
STARTUP_GAIN = 2.885
DRAIN_GAIN = 1.0 / STARTUP_GAIN
#: PROBE_BW pacing-gain cycle.
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
#: Bandwidth filter window, in rounds.
BTLBW_WINDOW_ROUNDS = 10
#: RTprop filter window, in nanoseconds.
RTPROP_WINDOW_NS = 10_000_000_000
#: Time spent in PROBE_RTT at minimal inflight.
PROBE_RTT_DURATION_NS = 200_000_000
#: Minimal cwnd during PROBE_RTT (segments).
PROBE_RTT_CWND_SEGMENTS = 4


class BbrState(enum.Enum):
    STARTUP = "startup"
    DRAIN = "drain"
    PROBE_BW = "probe_bw"
    PROBE_RTT = "probe_rtt"


class Bbr(CongestionControl):
    """BBRv1: rate-based congestion control that ignores loss."""

    name = "bbr"

    def __init__(self, mss_bytes: Optional[Bytes] = None) -> None:
        if mss_bytes is None:
            super().__init__()
        else:
            super().__init__(mss_bytes)
        self.state = BbrState.STARTUP
        self.pacing_gain = STARTUP_GAIN
        self.cwnd_gain = STARTUP_GAIN
        self._btlbw = WindowedFilter(BTLBW_WINDOW_ROUNDS, is_max=True)
        self._rtprop_ns: Optional[int] = None
        self._rtprop_stamp_ns = 0
        self._rtprop_expired = False
        # Round accounting.
        self._round_count = 0
        self._round_end_seq = 0
        self._round_start = True
        # Full-pipe detection (STARTUP exit).
        self._full_bw_bps = 0.0
        self._full_bw_count = 0
        self._filled_pipe = False
        # PROBE_BW cycle.
        self._cycle_index = 2  # Start in a neutral (gain 1.0) phase.
        self._cycle_stamp_ns = 0
        # PROBE_RTT bookkeeping.
        self._probe_rtt_done_ns: Optional[int] = None
        self._cwnd_before_probe_rtt = self.cwnd_bytes

    # -- derived quantities -------------------------------------------------
    @property
    def btlbw_bps(self) -> BitsPerSec:
        """Current bottleneck bandwidth estimate (bits/sec)."""
        return self._btlbw.get(0.0)

    @property
    def rtprop_ns(self) -> Optional[TimeNs]:
        return self._rtprop_ns

    def bdp_bytes(self, gain: float = 1.0) -> float:
        if self._rtprop_ns is None or self.btlbw_bps <= 0:
            return float("inf")
        return gain * self.btlbw_bps / 8.0 * self._rtprop_ns / 1e9

    def pacing_rate_bps(self) -> Optional[BitsPerSec]:
        if self.btlbw_bps <= 0:
            return None  # No samples yet: fall back to ACK clocking.
        return self.pacing_gain * self.btlbw_bps

    # -- state machine helpers ----------------------------------------------
    def _update_round(self, ctx: AckContext) -> None:
        self._round_start = False
        if ctx.ack_seq >= self._round_end_seq:
            self._round_count += 1
            self._round_end_seq = ctx.snd_nxt
            self._round_start = True

    def _update_filters(self, ctx: AckContext) -> None:
        if ctx.delivery_rate_bps is not None and ctx.delivery_rate_bps > 0:
            if (not ctx.is_app_limited
                    or ctx.delivery_rate_bps >= self.btlbw_bps):
                self._btlbw.update(self._round_count, ctx.delivery_rate_bps)
        if ctx.rtt_ns is not None:
            # Latch expiry BEFORE refreshing the filter: the draft uses
            # the latched flag to trigger PROBE_RTT even though the
            # expired sample also replaces the stale estimate.
            self._rtprop_expired = (
                self._rtprop_ns is not None
                and ctx.now_ns - self._rtprop_stamp_ns
                > RTPROP_WINDOW_NS)
            if (self._rtprop_ns is None or ctx.rtt_ns <= self._rtprop_ns
                    or self._rtprop_expired):
                self._rtprop_ns = ctx.rtt_ns
                self._rtprop_stamp_ns = ctx.now_ns

    def _check_full_pipe(self) -> None:
        if self._filled_pipe or not self._round_start:
            return
        if self.btlbw_bps >= self._full_bw_bps * 1.25:
            self._full_bw_bps = self.btlbw_bps
            self._full_bw_count = 0
            return
        self._full_bw_count += 1
        if self._full_bw_count >= 3:
            self._filled_pipe = True

    def _advance_cycle(self, now_ns: TimeNs) -> None:
        if self._rtprop_ns is None:
            return
        if now_ns - self._cycle_stamp_ns > self._rtprop_ns:
            self._cycle_index = (self._cycle_index + 1) % len(
                PROBE_BW_GAINS)
            self._cycle_stamp_ns = now_ns
            self.pacing_gain = PROBE_BW_GAINS[self._cycle_index]

    def _enter_probe_bw(self, now_ns: TimeNs) -> None:
        self.state = BbrState.PROBE_BW
        self.cwnd_gain = 2.0
        self._cycle_index = 2
        self._cycle_stamp_ns = now_ns
        self.pacing_gain = PROBE_BW_GAINS[self._cycle_index]

    def _maybe_enter_probe_rtt(self, ctx: AckContext) -> None:
        rtprop_expired = self._rtprop_expired
        self._rtprop_expired = False
        if (rtprop_expired and self.state is not BbrState.PROBE_RTT):
            self.state = BbrState.PROBE_RTT
            self._cwnd_before_probe_rtt = self.cwnd_bytes
            self.pacing_gain = 1.0
            self.cwnd_gain = 1.0
            self._probe_rtt_done_ns = ctx.now_ns + PROBE_RTT_DURATION_NS

    def _handle_probe_rtt(self, ctx: AckContext) -> None:
        self.cwnd_bytes = float(PROBE_RTT_CWND_SEGMENTS * self.mss)
        if (self._probe_rtt_done_ns is not None
                and ctx.now_ns >= self._probe_rtt_done_ns):
            self._rtprop_stamp_ns = ctx.now_ns
            self.cwnd_bytes = self._cwnd_before_probe_rtt
            if self._filled_pipe:
                self._enter_probe_bw(ctx.now_ns)
            else:
                self.state = BbrState.STARTUP
                self.pacing_gain = STARTUP_GAIN
                self.cwnd_gain = STARTUP_GAIN

    def _set_cwnd(self) -> None:
        bdp = self.bdp_bytes(self.cwnd_gain)
        if bdp == float("inf"):
            return  # Keep the initial window until we have estimates.
        floor = PROBE_RTT_CWND_SEGMENTS * self.mss
        self.cwnd_bytes = max(bdp, float(floor))

    # -- CCA hooks ------------------------------------------------------------
    def on_ack(self, ctx: AckContext) -> None:
        self._update_round(ctx)
        self._update_filters(ctx)
        if self.state is BbrState.STARTUP:
            self._check_full_pipe()
            if self._filled_pipe:
                self.state = BbrState.DRAIN
                self.pacing_gain = DRAIN_GAIN
                self.cwnd_gain = STARTUP_GAIN
        if self.state is BbrState.DRAIN:
            if ctx.in_flight_bytes <= self.bdp_bytes(1.0):
                self._enter_probe_bw(ctx.now_ns)
        if self.state is BbrState.PROBE_BW:
            self._advance_cycle(ctx.now_ns)
        self._maybe_enter_probe_rtt(ctx)
        if self.state is BbrState.PROBE_RTT:
            self._handle_probe_rtt(ctx)
        else:
            self._set_cwnd()

    # BBRv1 deliberately ignores loss signals: window and rate come from
    # the model, not from AIMD reactions.
    def on_enter_recovery(self, in_flight_bytes: Bytes,
                          now_ns: TimeNs) -> None:
        pass

    def on_exit_recovery(self, now_ns: TimeNs) -> None:
        pass

    def on_retransmit_timeout(self, in_flight_bytes: Bytes,
                              now_ns: int) -> None:
        # Retain the model; the socket still retransmits.  (Real BBRv1
        # sets cwnd to 1 packet but restores it from the model within a
        # round; we skip the dip.)
        pass

    def on_ecn(self, now_ns: TimeNs) -> None:
        pass  # BBRv1 ignores ECN as well.
