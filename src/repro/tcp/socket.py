"""TCP endpoints: reliability, SACK recovery, pacing, and ECN echo.

The sender implements the transport machinery shared by every CCA:

* cumulative ACKs with duplicate-ACK counting and fast retransmit;
* SACK loss recovery (a simplified RFC 6675 scoreboard: the receiver
  reports its out-of-order ranges, the sender fills holes below the
  highest SACKed byte while keeping ``pipe`` under cwnd) — enabled by
  default, as in ns-3.35, the paper's simulation substrate;
* NewReno partial-ACK recovery with window inflation (RFC 6582) when
  SACK is disabled;
* RFC 6298 RTT estimation and retransmission timeout with Karn's
  algorithm extended to hole-repair ACKs (no samples from any ACK whose
  range starts below the retransmission high-water mark — such ACKs
  measure recovery latency, not network RTT);
* go-back-N rebuild after an RTO;
* per-segment delivery-rate samples for BBR;
* optional packet pacing (used whenever the CCA supplies a rate);
* RFC 3168 ECN: senders mark data ECT(0) when enabled, receivers echo
  CE via ECE until the sender acknowledges with CWR.

The receiver delivers in-order payload to a
:class:`~repro.netsim.tracing.FlowMonitor` — that delivery stream is
the "application goodput" metric of the paper's tables.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Optional, Tuple

from ..netsim.engine import MILLISECOND, SECOND, Event, Simulator
from ..netsim.node import Host
from ..netsim.packet import (ACK_BYTES, HEADER_BYTES, MSS_BYTES,
                             EcnCodepoint, FlowId, Packet, PacketType)
from ..netsim.tracing import FlowMonitor
from ..obs import bus as obs_bus
from ..obs.events import TcpStateEvent

if TYPE_CHECKING:
    from ..core.units import Bytes, TimeNs
from .cca import AckContext, CongestionControl
from .intervals import IntervalSet

#: RTO floor (Linux default; ns-3's 1 s makes small simulations sluggish).
MIN_RTO_NS = 200 * MILLISECOND
#: RTO ceiling (RFC 6298).
MAX_RTO_NS = 60 * SECOND
#: RTO before the first RTT sample (RFC 6298 suggests 1 s).
INITIAL_RTO_NS = 1 * SECOND
#: Duplicate ACK threshold for fast retransmit.
DUPACK_THRESHOLD = 3
#: SACK blocks carried per ACK.  Real TCP fits 3-4 in the option space;
#: the simulator is not bound by a 40-byte options field, and richer
#: blocks only remove an artificial recovery slowdown.
SACK_BLOCK_LIMIT = 16


@dataclass
class _SegmentInfo:
    """Bookkeeping for one transmitted data segment."""

    end_seq: int
    sent_time_ns: TimeNs
    delivered_at_send: int


class RttEstimator:
    """RFC 6298 smoothed RTT and retransmission timeout."""

    def __init__(self) -> None:
        self.srtt_ns: Optional[TimeNs] = None
        self.rttvar_ns: TimeNs = 0
        self.rto_ns: TimeNs = INITIAL_RTO_NS

    def observe(self, rtt_ns: TimeNs) -> None:
        if self.srtt_ns is None:
            self.srtt_ns = rtt_ns
            self.rttvar_ns = rtt_ns // 2
        else:
            delta = abs(self.srtt_ns - rtt_ns)
            self.rttvar_ns = (3 * self.rttvar_ns + delta) // 4
            self.srtt_ns = (7 * self.srtt_ns + rtt_ns) // 8
        raw = self.srtt_ns + max(4 * self.rttvar_ns, MILLISECOND)
        self.rto_ns = min(max(raw, MIN_RTO_NS), MAX_RTO_NS)

    def backoff(self) -> None:
        self.rto_ns = min(self.rto_ns * 2, MAX_RTO_NS)


class TcpSender:
    """A bulk-data TCP sender with a pluggable congestion controller."""

    def __init__(self, host: Host, flow: FlowId, cca: CongestionControl,
                 max_bytes: Optional[int] = None,
                 ecn_enabled: bool = False,
                 sack_enabled: bool = True,
                 on_complete: Optional[Callable[[], None]] = None) -> None:
        self.host = host
        self.sim: Simulator = host.sim
        self.flow = flow
        self.cca = cca
        self.max_bytes = max_bytes
        self.ecn_enabled = ecn_enabled
        self.sack_enabled = sack_enabled
        self.on_complete = on_complete
        # Sequence state.
        self.snd_una = 0
        self.snd_nxt = 0
        # Recovery state.
        self.dupack_count = 0
        self.in_recovery = False
        self._recover_seq = 0
        self._inflation_bytes = 0       # NewReno mode only.
        self._scoreboard = IntervalSet()  # SACKed ranges above snd_una.
        self._recovery_scan = 0         # Hole-fill pointer (SACK mode).
        self._retx_out_bytes = 0        # Retransmissions in flight.
        self._rto_recovery = False      # Hole-fill everything unSACKed.
        # ECN state.
        self._ecn_recover_seq = 0
        self._cwr_pending = False
        # Timing.
        self.rtt = RttEstimator()
        self._rto_event: Optional[Event] = None
        self._pacing_event: Optional[Event] = None
        self._pacing_next_ns = 0
        # Karn's algorithm: no RTT samples at or below this sequence.
        self._ambiguous_below = 0
        # Delivery-rate accounting (BBR).
        self._delivered_bytes = 0
        self._segments: Deque[_SegmentInfo] = collections.deque()
        # Counters for diagnostics and tests.
        self.retransmits = 0
        self.timeouts = 0
        self.sent_segments = 0
        self.completed = False
        self.started = False
        # Observability: cwnd samples and state transitions.  Bound
        # once; the disabled path pays one attribute test per ACK.
        self._trace_tcp = obs_bus.emitter_for("tcp")
        host.register_handler(flow.reversed(), self._on_ack_packet)

    def _trace_state(self, kind: str) -> None:
        """Emit one TcpStateEvent (only called when the topic is on)."""
        trace = self._trace_tcp
        if trace is not None:
            trace(TcpStateEvent(time_ns=self.sim.now_ns,
                                flow=str(self.flow), kind=kind,
                                cwnd_bytes=self.cca.cwnd_bytes,
                                snd_una=self.snd_una,
                                snd_nxt=self.snd_nxt))

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        """Begin transmitting (call at the flow's start time)."""
        self.started = True
        if self._trace_tcp is not None:
            self._trace_state("start")
        self._try_send()

    @property
    def in_flight_bytes(self) -> Bytes:
        return self.snd_nxt - self.snd_una

    @property
    def pipe_bytes(self) -> Bytes:
        """Outstanding bytes believed to be in the network.

        FACK-style estimate: everything between the forward-most SACKed
        byte and ``snd_nxt`` is in flight, everything unSACKed below it
        is presumed lost, plus retransmissions still outstanding.
        Without the lost-byte exclusion, drops pin ``pipe`` at ``cwnd``
        and recovery deadlocks until the RTO.
        """
        fack = max(self.snd_una, self._scoreboard.max_end)
        horizon = fack
        if self._rto_recovery:
            # On RTO everything outstanding was marked lost: only
            # retransmissions and data sent after the timeout count.
            horizon = max(fack, self._recover_seq)
        return max(self.snd_nxt - horizon, 0) + self._retx_out_bytes

    @property
    def effective_cwnd_bytes(self) -> float:
        return self.cca.cwnd_bytes + self._inflation_bytes

    def _app_bytes_remaining(self) -> Optional[Bytes]:
        if self.max_bytes is None:
            return None
        return max(self.max_bytes - self.snd_nxt, 0)

    # -- transmission -------------------------------------------------------
    def _next_payload_size(self) -> Bytes:
        remaining = self._app_bytes_remaining()
        if remaining is None:
            return MSS_BYTES
        return min(MSS_BYTES, remaining)

    def _can_send_new(self) -> bool:
        if not self.started or self.completed:
            return False
        payload = self._next_payload_size()
        if payload <= 0:
            return False
        return self.pipe_bytes + payload <= self.effective_cwnd_bytes

    def _next_hole(self) -> Optional[int]:
        """The next unSACKed byte to retransmit during SACK recovery.

        In fast recovery a byte counts as lost when SACKed data exists
        above it (the RFC 6675 'FACK' heuristic, adequate at simulation
        fidelity).  In RTO recovery everything unSACKed below the
        recovery point is retransmitted — go-back-N that skips ranges
        the receiver already holds.
        """
        if not (self.sack_enabled and self.in_recovery):
            return None
        point = max(self._recovery_scan, self.snd_una)
        gap = self._scoreboard.first_gap_at_or_after(point)
        if gap >= self._recover_seq:
            return None
        if not self._rto_recovery and gap >= self._scoreboard.max_end:
            return None
        return gap

    def _try_send(self) -> None:
        while True:
            hole = self._next_hole()
            if hole is not None and \
                    self.pipe_bytes + MSS_BYTES <= self.cca.cwnd_bytes:
                if not self._pacing_gate():
                    return
                payload = min(MSS_BYTES, self._recover_seq - hole)
                self._transmit(hole, max(payload, 1), retransmit=True)
                self._recovery_scan = hole + max(payload, 1)
                continue
            if self._can_send_new():
                if not self._pacing_gate():
                    return
                payload = self._next_payload_size()
                self._transmit(self.snd_nxt, payload, retransmit=False)
                self.snd_nxt += payload
                continue
            return

    def _pacing_gate(self) -> bool:
        """True if a packet may be sent now; otherwise arm the pacer."""
        rate_bps = self.cca.pacing_rate_bps()
        if rate_bps is None or rate_bps <= 0:
            return True
        now = self.sim.now_ns
        if now < self._pacing_next_ns:
            if self._pacing_event is None:
                self._pacing_event = self.sim.schedule_at(
                    self._pacing_next_ns, self._on_pacing_timer)
            return False
        gap_ns = int((MSS_BYTES + HEADER_BYTES) * 8 * SECOND / rate_bps)
        self._pacing_next_ns = max(now, self._pacing_next_ns) + gap_ns
        return True

    def _on_pacing_timer(self) -> None:
        self._pacing_event = None
        self._try_send()

    def _transmit(self, seq: int, payload: int, retransmit: bool) -> None:
        packet = Packet(flow=self.flow, size_bytes=payload + HEADER_BYTES,
                        ptype=PacketType.DATA, seq=seq,
                        payload_bytes=payload,
                        sent_time_ns=self.sim.now_ns)
        if self.ecn_enabled:
            packet.ecn = EcnCodepoint.ECT0
        if self._cwr_pending:
            packet.cwr = True
            self._cwr_pending = False
        if retransmit:
            self.retransmits += 1
            self._retx_out_bytes += payload
            self._ambiguous_below = max(self._ambiguous_below,
                                        seq + payload)
        else:
            self._segments.append(_SegmentInfo(
                end_seq=seq + payload, sent_time_ns=self.sim.now_ns,
                delivered_at_send=self._delivered_bytes))
        self.sent_segments += 1
        self.host.send(packet)
        self.cca.on_packet_sent(packet.size_bytes, self.sim.now_ns,
                                self.pipe_bytes)
        # RFC 6298: arm the timer if idle, but never push back a running
        # one on transmission — only new-data ACKs restart it.  (A
        # retransmission must restart it or the backoff never takes
        # effect.)
        if self._rto_event is None or retransmit:
            self._arm_rto()

    def _retransmit_head(self) -> None:
        payload = min(MSS_BYTES, (self.max_bytes - self.snd_una)
                      if self.max_bytes is not None else MSS_BYTES)
        payload = max(payload, 1)
        self._transmit(self.snd_una, payload, retransmit=True)
        self._recovery_scan = self.snd_una + payload

    # -- timers ----------------------------------------------------------------
    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        self._rto_event = self.sim.schedule(self.rtt.rto_ns, self._on_rto)

    def _disarm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.in_flight_bytes <= 0 or self.completed:
            return
        self.timeouts += 1
        if self._trace_tcp is not None:
            self._trace_state("rto")
        # RFC 5681 FlightSize: use the pipe estimate (lost bytes
        # excluded) — the raw sequence range is inflated by dead data
        # and would leave ssthresh far above what the path can hold.
        self.cca.on_retransmit_timeout(self.pipe_bytes, self.sim.now_ns)
        self._inflation_bytes = 0
        self.dupack_count = 0
        self.rtt.backoff()
        # All outstanding timing info is now ambiguous (Karn).
        self._segments.clear()
        self._ambiguous_below = max(self._ambiguous_below, self.snd_nxt)
        self._retx_out_bytes = 0
        if self.sack_enabled:
            # Enter RTO recovery: everything outstanding and unSACKed
            # is presumed lost and refilled through the scoreboard's
            # hole machinery as the window rebuilds in slow start.
            self.in_recovery = True
            self._rto_recovery = True
            self._recover_seq = self.snd_nxt
            self._recovery_scan = self.snd_una
        else:
            # Go-back-N (RFC 5681): rebuild from snd_una in slow start.
            # The receiver discards duplicates and its cumulative ACKs
            # fast-forward past anything it already holds.
            self.in_recovery = False
            self.retransmits += 1
            self.snd_nxt = self.snd_una
        self._try_send()
        if self._rto_event is None and self.in_flight_bytes > 0:
            self._arm_rto()

    # -- ACK processing ----------------------------------------------------------
    def _on_ack_packet(self, packet: Packet) -> None:
        if packet.ptype is not PacketType.ACK:
            return
        if packet.ece:
            self._handle_ecn_echo()
        new_sack_info = self._update_scoreboard(packet)
        ack = packet.ack
        if ack > self.snd_una:
            self._handle_new_ack(ack)
        elif ack == self.snd_una and self.in_flight_bytes > 0 and \
                (new_sack_info or not self.sack_enabled):
            self._handle_dupack()
        self._try_send()
        self._maybe_complete()

    def _update_scoreboard(self, packet: Packet) -> bool:
        """Merge the ACK's SACK blocks; True if anything was new.

        Newly SACKed bytes count into the delivered counter immediately
        (as in Linux's rate sampler): deferring them to the cumulative
        hole-repair ACK would make delivery-rate samples spike far above
        the true bottleneck bandwidth.
        """
        if not self.sack_enabled or not packet.sack:
            return False
        before = self._scoreboard.total_bytes
        for start, end in packet.sack:
            start = max(start, self.snd_una)
            if end <= start:
                continue
            self._scoreboard.add(start, end)
        newly_sacked = self._scoreboard.total_bytes - before
        self._delivered_bytes += newly_sacked
        return newly_sacked > 0

    def _handle_ecn_echo(self) -> None:
        if self.snd_una < self._ecn_recover_seq or self.in_recovery:
            return  # Already reacted this window.
        self.cca.on_ecn(self.sim.now_ns)
        self._ecn_recover_seq = self.snd_nxt
        self._cwr_pending = True
        if self._trace_tcp is not None:
            self._trace_state("ecn_backoff")

    def _collect_samples(
            self, ack: int) -> Tuple[Optional[int], Optional[float]]:
        """RTT and delivery-rate samples from newly acked segments."""
        rtt_sample: Optional[int] = None
        rate_sample: Optional[float] = None
        now = self.sim.now_ns
        while self._segments and self._segments[0].end_seq <= ack:
            info = self._segments.popleft()
            if info.end_seq <= self._ambiguous_below:
                continue  # Karn: retransmitted range, timing ambiguous.
            rtt_sample = now - info.sent_time_ns
            interval_ns = now - info.sent_time_ns
            delivered = self._delivered_bytes - info.delivered_at_send
            if interval_ns > 0 and delivered > 0:
                rate_sample = delivered * 8 * SECOND / interval_ns
        return rtt_sample, rate_sample

    def _handle_new_ack(self, ack: int) -> None:
        acked = ack - self.snd_una
        # If the ACKed range begins below the retransmission high-water
        # mark, this is a hole-repair ACK: it may cumulatively cover
        # segments that were *delivered* long ago but blocked in the
        # receiver's reassembly queue, so their (ack time - send time)
        # measures recovery latency, not network RTT (Karn's algorithm,
        # applied to the whole ambiguous range).
        ambiguous_ack = self.snd_una < self._ambiguous_below
        # Bytes in the ACKed range that were already counted when they
        # were SACKed (or before an RTO) must not count twice.
        sacked_before = self._scoreboard.total_bytes
        self._scoreboard.prune_below(ack)
        already_counted = sacked_before - self._scoreboard.total_bytes
        self._delivered_bytes += max(acked - already_counted, 0)
        self._retx_out_bytes = max(self._retx_out_bytes - acked, 0)
        self.snd_una = ack
        self.dupack_count = 0
        rtt_sample, rate_sample = self._collect_samples(ack)
        if ambiguous_ack:
            rtt_sample, rate_sample = None, None
        if rtt_sample is not None:
            self.rtt.observe(rtt_sample)
        if self.in_recovery:
            if ack >= self._recover_seq:
                was_rto_recovery = self._rto_recovery
                self.in_recovery = False
                self._rto_recovery = False
                self._inflation_bytes = 0
                if not was_rto_recovery:
                    # Fast recovery deflates to ssthresh.  RTO recovery
                    # is ordinary slow start: the window grew with the
                    # ACK clock and must not jump (the jump would burst
                    # a full ssthresh of packets into the queue).
                    self.cca.on_exit_recovery(self.sim.now_ns)
                if self._trace_tcp is not None:
                    self._trace_state("exit_recovery")
            elif not self.sack_enabled:
                # NewReno partial ACK: retransmit the next hole, deflate
                # by the acked amount, re-inflate one MSS (RFC 6582).
                self._inflation_bytes = max(
                    self._inflation_bytes - acked, 0) + MSS_BYTES
                self._retransmit_head()
            # In SACK mode the scoreboard drives hole retransmissions
            # from _try_send; nothing else to do on a partial ACK.
        ctx = AckContext(acked_bytes=acked, ack_seq=ack,
                         rtt_ns=rtt_sample, now_ns=self.sim.now_ns,
                         in_flight_bytes=self.pipe_bytes,
                         snd_nxt=self.snd_nxt,
                         delivery_rate_bps=rate_sample,
                         is_app_limited=self._app_limited(),
                         # RTO recovery is slow start for the CCA: the
                         # window must rebuild with the ACK clock.
                         in_recovery=self.in_recovery
                         and not self._rto_recovery)
        self.cca.on_ack(ctx)
        if self._trace_tcp is not None:
            self._trace_state("cwnd")
        if self.in_flight_bytes > 0:
            self._arm_rto()
        else:
            self._disarm_rto()

    def _handle_dupack(self) -> None:
        self.dupack_count += 1
        if self.in_recovery:
            if not self.sack_enabled:
                self._inflation_bytes += MSS_BYTES
            return
        if self.dupack_count >= DUPACK_THRESHOLD:
            self.in_recovery = True
            self._recover_seq = self.snd_nxt
            self.cca.on_enter_recovery(self.pipe_bytes,
                                       self.sim.now_ns)
            if self._trace_tcp is not None:
                self._trace_state("fast_recovery")
            if not self.sack_enabled:
                self._inflation_bytes = DUPACK_THRESHOLD * MSS_BYTES
            self._retransmit_head()

    def _app_limited(self) -> bool:
        remaining = self._app_bytes_remaining()
        return remaining is not None and remaining == 0

    def _maybe_complete(self) -> None:
        if (not self.completed and self.max_bytes is not None
                and self.snd_una >= self.max_bytes):
            self.completed = True
            if self._trace_tcp is not None:
                self._trace_state("complete")
            self._disarm_rto()
            if self._pacing_event is not None:
                self._pacing_event.cancel()
                self._pacing_event = None
            if self.on_complete is not None:
                self.on_complete()

    def close(self) -> None:
        """Stop the sender and release its handler and timers."""
        self.completed = True
        self._disarm_rto()
        if self._pacing_event is not None:
            self._pacing_event.cancel()
            self._pacing_event = None
        self.host.unregister_handler(self.flow.reversed())


class TcpReceiver:
    """A TCP receiver: reassembly, immediate ACKs, SACK, ECN echo."""

    def __init__(self, host: Host, flow: FlowId,
                 monitor: Optional[FlowMonitor] = None,
                 sack_enabled: bool = True) -> None:
        self.host = host
        self.sim: Simulator = host.sim
        self.flow = flow
        self.monitor = monitor
        self.sack_enabled = sack_enabled
        self.rcv_nxt = 0
        self.delivered_bytes = 0
        self._ranges = IntervalSet()  # Out-of-order data above rcv_nxt.
        self._ece = False
        self.received_segments = 0
        if monitor is not None:
            monitor.register(flow)
        host.register_handler(flow, self._on_data_packet)

    @property
    def out_of_order_bytes(self) -> Bytes:
        return self._ranges.total_bytes

    def _on_data_packet(self, packet: Packet) -> None:
        if packet.ptype is not PacketType.DATA:
            return
        self.received_segments += 1
        if packet.cwr:
            self._ece = False
        if packet.ecn is EcnCodepoint.CE:
            self._ece = True
        self._reassemble(packet)
        self._send_ack()

    def _reassemble(self, packet: Packet) -> None:
        end = packet.seq + packet.payload_bytes
        if packet.payload_bytes <= 0 or end <= self.rcv_nxt:
            return  # Pure duplicate; the ACK we send is the signal.
        self._ranges.add(max(packet.seq, self.rcv_nxt), end)
        if self._ranges.covers_point(self.rcv_nxt):
            new_nxt = self._ranges.first_gap_at_or_after(self.rcv_nxt)
            self._deliver(new_nxt - self.rcv_nxt)
            self._ranges.prune_below(self.rcv_nxt)

    def _deliver(self, payload_bytes: Bytes) -> None:
        self.rcv_nxt += payload_bytes
        self.delivered_bytes += payload_bytes
        if self.monitor is not None:
            self.monitor.on_delivered(self.flow, payload_bytes)

    def _send_ack(self) -> None:
        sack: Tuple[Tuple[int, int], ...] = ()
        if self.sack_enabled and self._ranges:
            sack = tuple(self._ranges.first_blocks(SACK_BLOCK_LIMIT))
        ack = Packet(flow=self.flow.reversed(), size_bytes=ACK_BYTES,
                     ptype=PacketType.ACK, ack=self.rcv_nxt,
                     sack=sack, ece=self._ece)
        self.host.send(ack)

    def close(self) -> None:
        self.host.unregister_handler(self.flow)
