"""Byte-range interval sets for SACK bookkeeping.

Both endpoints of the TCP connection need to reason about sets of byte
ranges: the receiver tracks out-of-order data to generate SACK blocks,
and the sender keeps the SACK scoreboard.  :class:`IntervalSet` stores
disjoint, sorted, half-open ``[start, end)`` ranges with O(log n)
insertion via binary search and merge.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Tuple


class IntervalSet:
    """A set of disjoint half-open byte ranges ``[start, end)``."""

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []

    def __len__(self) -> int:
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(zip(self._starts, self._ends))

    def __repr__(self) -> str:
        ranges = ", ".join(f"[{s},{e})" for s, e in self)
        return f"IntervalSet({ranges})"

    @property
    def total_bytes(self) -> int:
        """Sum of all range lengths."""
        return sum(end - start
                   for start, end in zip(self._starts, self._ends))

    @property
    def max_end(self) -> int:
        """The highest covered byte + 1, or 0 when empty."""
        return self._ends[-1] if self._ends else 0

    def add(self, start: int, end: int) -> None:
        """Insert ``[start, end)``, merging any overlapping ranges."""
        if end <= start:
            raise ValueError(f"empty or inverted range [{start},{end})")
        # Find all existing ranges that touch or overlap the new one.
        left = bisect.bisect_left(self._ends, start)
        right = bisect.bisect_right(self._starts, end)
        if left < right:
            start = min(start, self._starts[left])
            end = max(end, self._ends[right - 1])
        self._starts[left:right] = [start]
        self._ends[left:right] = [end]

    def contains(self, start: int, end: int) -> bool:
        """True if ``[start, end)`` is entirely covered."""
        if end <= start:
            return True
        index = bisect.bisect_right(self._starts, start) - 1
        return (index >= 0 and self._ends[index] >= end)

    def covers_point(self, point: int) -> bool:
        """True if ``point`` lies inside some range."""
        index = bisect.bisect_right(self._starts, point) - 1
        return index >= 0 and point < self._ends[index]

    def first_gap_at_or_after(self, point: int) -> int:
        """The lowest byte >= ``point`` not covered by any range."""
        index = bisect.bisect_right(self._starts, point) - 1
        while index >= 0 and point < self._ends[index]:
            point = self._ends[index]
            index = bisect.bisect_right(self._starts, point) - 1
        return point

    def prune_below(self, point: int) -> None:
        """Discard all coverage below ``point``."""
        index = bisect.bisect_right(self._ends, point)
        del self._starts[:index]
        del self._ends[:index]
        if self._starts and self._starts[0] < point:
            self._starts[0] = point

    def clear(self) -> None:
        self._starts.clear()
        self._ends.clear()

    def first_blocks(self, limit: int = 3) -> List[Tuple[int, int]]:
        """The first ``limit`` ranges (for SACK option generation)."""
        return list(zip(self._starts[:limit], self._ends[:limit]))
