"""TCP Cubic (RFC 8312) and its predecessor BIC.

Cubic is the Linux/Windows default and one of the paper's main
aggressors: it grows its window as a cubic function of the time since
the last loss, which lets it outcompete NewReno — up to 80% of a shared
bottleneck per the paper's citation of [44].  BIC, its predecessor
(used in Figure 11/Table 2's ``Bic`` rows), performs a binary search
toward the window size at the last loss.

Both implementations follow the structure of the Linux kernel modules,
with window arithmetic in segments internally (as the RFC specifies)
and bytes at the interface.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.invariants import unwrap
from .cca import (AckContext, CongestionControl,
                  congestion_avoidance_increase, slow_start_increase)


class Cubic(CongestionControl):
    """RFC 8312 CUBIC with fast convergence and TCP-friendly region."""

    name = "cubic"
    C = 0.4           # Scaling constant (segments / sec^3).
    beta = 0.7        # Multiplicative decrease factor.
    fast_convergence = True

    def __init__(self, mss_bytes: Optional[int] = None) -> None:
        if mss_bytes is None:
            super().__init__()
        else:
            super().__init__(mss_bytes)
        self._w_max_seg = 0.0        # Window (segments) at last reduction.
        self._k_sec = 0.0            # Time to regrow to w_max.
        #: Start of the current growth epoch (None between epochs).
        self._epoch_start_ns: Optional[int] = None
        self._w_est_seg = 0.0        # TCP-friendly window estimate.
        self._acked_since_epoch = 0.0

    # -- helpers ----------------------------------------------------------
    @property
    def _cwnd_seg(self) -> float:
        return self.cwnd_bytes / self.mss

    def _begin_epoch(self, now_ns: int) -> None:
        self._epoch_start_ns = now_ns
        cwnd_seg = self._cwnd_seg
        if cwnd_seg < self._w_max_seg:
            self._k_sec = ((self._w_max_seg - cwnd_seg) / self.C) ** (1 / 3)
        else:
            self._k_sec = 0.0
            self._w_max_seg = cwnd_seg
        self._w_est_seg = cwnd_seg
        self._acked_since_epoch = 0.0

    def _cubic_target_seg(self, now_ns: int) -> float:
        epoch_ns = unwrap(self._epoch_start_ns, "no growth epoch open")
        t_sec = (now_ns - epoch_ns) / 1e9
        return (self.C * (t_sec - self._k_sec) ** 3 + self._w_max_seg)

    # -- CCA hooks ---------------------------------------------------------
    def on_ack(self, ctx: AckContext) -> None:
        if ctx.in_recovery:
            return
        if self.in_slow_start:
            slow_start_increase(self, ctx.acked_bytes)
            return
        if self._epoch_start_ns is None:
            self._begin_epoch(ctx.now_ns)
        target_seg = self._cubic_target_seg(ctx.now_ns)
        cwnd_seg = self._cwnd_seg
        if target_seg > cwnd_seg:
            # Kernel-style growth: (target - cwnd)/cwnd segments per ACK.
            self.cwnd_bytes += self.mss * (target_seg - cwnd_seg) / cwnd_seg
        else:
            # Minimal probing while in the plateau region.
            self.cwnd_bytes += self.mss * 0.01 / cwnd_seg
        # TCP-friendly region (RFC 8312 section 4.2): grow W_est like
        # AIMD(alpha_aimd, beta) Reno and never fall below it.
        rtt_sec = (ctx.rtt_ns or 0) / 1e9
        if rtt_sec > 0:
            alpha_aimd = 3.0 * (1 - self.beta) / (1 + self.beta)
            self._acked_since_epoch += ctx.acked_bytes / self.mss
            self._w_est_seg = (self._w_est_seg
                               + alpha_aimd * ctx.acked_bytes
                               / (self.mss * self._cwnd_seg))
            if self._w_est_seg > self._cwnd_seg:
                self.cwnd_bytes = self._w_est_seg * self.mss
        self.clamp()

    def on_enter_recovery(self, in_flight_bytes: int, now_ns: int) -> None:
        cwnd_seg = self._cwnd_seg
        if self.fast_convergence and cwnd_seg < self._w_max_seg:
            self._w_max_seg = cwnd_seg * (2 - self.beta) / 2
        else:
            self._w_max_seg = cwnd_seg
        self.ssthresh_bytes = max(self.cwnd_bytes * self.beta, 2 * self.mss)
        self.cwnd_bytes = self.ssthresh_bytes
        self._epoch_start_ns = None
        self.clamp()

    def on_retransmit_timeout(self, in_flight_bytes: int,
                              now_ns: int) -> None:
        super().on_retransmit_timeout(in_flight_bytes, now_ns)
        self._epoch_start_ns = None


class Bic(CongestionControl):
    """Binary Increase Congestion control (Xu et al., INFOCOM 2004)."""

    name = "bic"
    beta = 0.8           # Linux bictcp: 819/1024.
    smax_seg = 16.0      # Maximum increment per RTT (segments).
    smin_seg = 0.01      # Minimum increment per RTT.
    low_window_seg = 14  # Below this, behave like Reno.

    def __init__(self, mss_bytes: Optional[int] = None) -> None:
        if mss_bytes is None:
            super().__init__()
        else:
            super().__init__(mss_bytes)
        self._w_max_seg = 0.0

    @property
    def _cwnd_seg(self) -> float:
        return self.cwnd_bytes / self.mss

    def _increment_seg(self) -> float:
        """Per-RTT window increment from the binary search rule."""
        cwnd = self._cwnd_seg
        if self._w_max_seg <= 0:
            return 1.0
        if cwnd < self._w_max_seg:
            distance = (self._w_max_seg - cwnd) / 2.0
            return min(max(distance, self.smin_seg), self.smax_seg)
        # Max probing: slow start away from w_max, capped at Smax.
        overshoot = cwnd - self._w_max_seg
        return min(max(overshoot, 1.0), self.smax_seg)

    def on_ack(self, ctx: AckContext) -> None:
        if ctx.in_recovery:
            return
        if self.in_slow_start:
            slow_start_increase(self, ctx.acked_bytes)
            return
        if self._cwnd_seg < self.low_window_seg:
            congestion_avoidance_increase(self, ctx.acked_bytes)
            return
        # Spread the per-RTT increment over the window's worth of ACKs.
        self.cwnd_bytes += (self.mss * self._increment_seg()
                            / self._cwnd_seg)
        self.clamp()

    def on_enter_recovery(self, in_flight_bytes: int, now_ns: int) -> None:
        cwnd_seg = self._cwnd_seg
        if cwnd_seg < self._w_max_seg:
            # Fast convergence.
            self._w_max_seg = cwnd_seg * (2 - self.beta) / 2
        else:
            self._w_max_seg = cwnd_seg
        if cwnd_seg < self.low_window_seg:
            self.ssthresh_bytes = max(self.cwnd_bytes * 0.5, 2 * self.mss)
        else:
            self.ssthresh_bytes = max(self.cwnd_bytes * self.beta,
                                      2 * self.mss)
        self.cwnd_bytes = self.ssthresh_bytes
        self.clamp()
