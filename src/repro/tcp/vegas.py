"""TCP Vegas (Brakmo & Peterson, 1994).

Vegas is the paper's delay-based representative.  It estimates the
number of its own packets queued in the network,

    diff = cwnd * (rtt - base_rtt) / rtt            [segments]

and tries to keep it between ``alpha`` and ``beta`` by adjusting the
window once per RTT.  Because Vegas backs off as soon as queueing delay
appears, it is systematically starved by loss-based algorithms that
fill the buffer — the effect Figures 7/8b quantify and Cebinae repairs.
"""

from __future__ import annotations

from typing import Optional

from .cca import AckContext, CongestionControl, slow_start_increase


class Vegas(CongestionControl):
    """Delay-based congestion avoidance, once-per-RTT adjustments."""

    name = "vegas"
    alpha_seg = 2.0  # Lower bound on queued segments.
    beta_seg = 4.0   # Upper bound on queued segments.
    gamma_seg = 1.0  # Slow-start exit threshold.

    def __init__(self, mss_bytes: Optional[int] = None) -> None:
        if mss_bytes is None:
            super().__init__()
        else:
            super().__init__(mss_bytes)
        #: Minimum RTT ever observed (None before the first sample).
        self._base_rtt_ns: Optional[int] = None
        #: Minimum RTT this epoch (cleared at every epoch boundary).
        self._epoch_min_rtt_ns: Optional[int] = None
        self._epoch_end_seq = 0       # Ack seq that ends the epoch.
        self._rtt_count = 0
        self._slow_start_toggle = False

    def _observe_rtt(self, rtt_ns: int) -> None:
        if self._base_rtt_ns is None or rtt_ns < self._base_rtt_ns:
            self._base_rtt_ns = rtt_ns
        if (self._epoch_min_rtt_ns is None
                or rtt_ns < self._epoch_min_rtt_ns):
            self._epoch_min_rtt_ns = rtt_ns

    def _diff_segments(self) -> float:
        """Estimated own packets queued at the bottleneck."""
        rtt = self._epoch_min_rtt_ns
        base = self._base_rtt_ns
        if rtt is None or base is None or rtt <= 0:
            return 0.0
        cwnd_seg = self.cwnd_bytes / self.mss
        return cwnd_seg * (rtt - base) / rtt

    def on_ack(self, ctx: AckContext) -> None:
        if ctx.rtt_ns is not None:
            self._observe_rtt(ctx.rtt_ns)
        if ctx.in_recovery:
            return
        if ctx.ack_seq < self._epoch_end_seq:
            return  # Still inside the current RTT epoch.
        # One RTT elapsed: make the Vegas decision.
        diff = self._diff_segments()
        if self.in_slow_start:
            # Vegas slow start: double every *other* RTT, exit when the
            # queue estimate crosses gamma.
            if diff > self.gamma_seg:
                # Leave slow start: trim the window by one segment and
                # pull ssthresh down to it so in_slow_start is False.
                self.cwnd_bytes = max(self.cwnd_bytes - self.mss,
                                      2 * self.mss)
                self.ssthresh_bytes = min(self.ssthresh_bytes,
                                          self.cwnd_bytes)
            else:
                self._slow_start_toggle = not self._slow_start_toggle
                if self._slow_start_toggle:
                    self.cwnd_bytes += self.cwnd_bytes  # Double.
        else:
            if diff < self.alpha_seg:
                self.cwnd_bytes += self.mss
            elif diff > self.beta_seg:
                self.cwnd_bytes -= self.mss
            # else: in the sweet spot, hold.
        self.clamp()
        self._epoch_end_seq = ctx.snd_nxt
        self._epoch_min_rtt_ns = None
        self._rtt_count += 1

    def on_enter_recovery(self, in_flight_bytes: int, now_ns: int) -> None:
        # Vegas falls back to Reno-style halving on packet loss.
        self.ssthresh_bytes = max(in_flight_bytes * 0.5, 2 * self.mss)
        self.cwnd_bytes = self.ssthresh_bytes
        self.clamp()

    @property
    def base_rtt_ns(self) -> Optional[int]:
        """The minimum RTT observed so far (None before first sample)."""
        return self._base_rtt_ns
