"""FPR/FNR evaluation of ⊤-flow detection (Figure 13).

For each round interval, the ground truth is the set of flows whose
*true* byte count is within ``δf`` of the true maximum; the detection
is the same rule applied to the cache's (possibly lossy) counters.  A
false positive is a detected flow that is not truly ⊤; a false negative
is a truly-⊤ flow the cache missed.  The paper reports both averaged
over 100 trials per data point.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Tuple, Union

from .hashpipe import CebinaeFlowCache, select_bottlenecked
from .traces import SyntheticTrace


@dataclass
class DetectionResult:
    """Aggregated detection accuracy over all intervals of all trials."""

    stages: int
    slots_per_stage: int
    round_interval_ms: float
    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    intervals: int = 0
    candidate_flows: int = 0

    @property
    def false_positive_rate(self) -> float:
        """FP / (all flows that could have been falsely flagged)."""
        negatives = self.candidate_flows - self.true_positives \
            - self.false_negatives
        if negatives <= 0:
            return 0.0
        return self.false_positives / negatives

    @property
    def false_negative_rate(self) -> float:
        positives = self.true_positives + self.false_negatives
        if positives <= 0:
            return 0.0
        return self.false_negatives / positives


def evaluate_detection(stages: int, slots_per_stage: int,
                       round_interval_ms: float, trials: int = 10,
                       delta_flow: float = 0.01,
                       trace_duration_s: float = 0.5,
                       flows_per_minute: int = 400_000,
                       zipf_alpha: float = 0.75,
                       seed: int = 1) -> DetectionResult:
    """Run the Figure 13 experiment for one configuration.

    Each trial replays an independent synthetic trace through a fresh
    cache, polling/resetting it at every round-interval boundary and
    comparing the detected ⊤ set against ground truth.

    ``zipf_alpha`` defaults to 0.75 here (flatter than the general
    trace default): at high skew the maximal flow claims its cache slot
    within microseconds of every reset and detection is trivially
    perfect; CAIDA's top-of-distribution is flatter, which is what
    makes Figure 13's error rates non-degenerate.
    """
    interval_ns = int(round_interval_ms * 1e6)
    result = DetectionResult(stages=stages,
                             slots_per_stage=slots_per_stage,
                             round_interval_ms=round_interval_ms)
    for trial in range(trials):
        trace = SyntheticTrace(duration_s=trace_duration_s,
                               flows_per_minute=flows_per_minute,
                               zipf_alpha=zipf_alpha,
                               seed=seed + trial)
        cache = CebinaeFlowCache(stages=stages,
                                 slots_per_stage=slots_per_stage,
                                 seed=seed + trial)
        truth: Dict[int, int] = {}
        boundary_ns = interval_ns

        def close_interval() -> None:
            observed = cache.poll_and_reset()
            detected, _ = select_bottlenecked(observed, delta_flow)
            actual, _ = select_bottlenecked(truth, delta_flow)
            result.intervals += 1
            result.candidate_flows += len(truth)
            result.true_positives += len(detected & actual)
            result.false_positives += len(detected - actual)
            result.false_negatives += len(actual - detected)

        for packet in trace.packets():
            while packet.time_ns >= boundary_ns:
                close_interval()
                truth.clear()
                boundary_ns += interval_ns
            cache.update(packet.flow, packet.size_bytes)
            truth[packet.flow] = truth.get(packet.flow, 0) + \
                packet.size_bytes
        if truth:
            close_interval()
    return result


def _detection_tasks(configs: List[Tuple[int, int, float]],
                     kwargs: Dict[str, Any]) -> List[Any]:
    """Pool tasks for a batch of ``evaluate_detection`` calls."""
    import dataclasses
    import inspect

    # Imported lazily: the experiments package imports this module's
    # siblings, so a top-level import would be circular.
    from ..experiments.parallel import Task, fingerprint

    tasks: List[Any] = []
    for stages, slots, interval in configs:
        bound = inspect.signature(evaluate_detection).bind(
            stages, slots, interval, **kwargs)
        bound.apply_defaults()
        tasks.append(Task(
            fn=evaluate_detection,
            kwargs={"stages": stages, "slots_per_stage": slots,
                    "round_interval_ms": interval, **kwargs},
            label=f"figure13/s{stages}x{slots}@{interval:.0f}ms",
            fingerprint=fingerprint("DetectionResult",
                                    dict(bound.arguments)),
            kind="DetectionResult",
            encode=dataclasses.asdict,
            decode=lambda payload: DetectionResult(**payload)))
    return tasks


def _run_sweep(configs: List[Tuple[int, int, float]], workers: int,
               cache_dir: Union[str, Path, None],
               use_cache: bool,
               kwargs: Dict[str, Any]) -> List[DetectionResult]:
    from ..experiments.parallel import require, run_tasks
    return [require(result) for result
            in run_tasks(_detection_tasks(configs, kwargs),
                         workers=workers, cache_dir=cache_dir,
                         use_cache=use_cache)]


def sweep_round_interval(intervals_ms: Iterable[float],
                         stages_options: Iterable[int] = (1, 2, 4),
                         slots_per_stage: int = 2048,
                         workers: int = 1,
                         cache_dir: Union[str, Path, None] = None,
                         use_cache: bool = True,
                         **kwargs: Any) -> List[DetectionResult]:
    """Figure 13a: FPR/FNR vs round interval for 1/2/4 cache stages."""
    configs = [(stages, slots_per_stage, interval)
               for stages in stages_options
               for interval in intervals_ms]
    return _run_sweep(configs, workers, cache_dir, use_cache, kwargs)


def sweep_slot_count(slot_options: Iterable[int],
                     stages_options: Iterable[int] = (1, 2, 4),
                     round_interval_ms: float = 100.0,
                     workers: int = 1,
                     cache_dir: Union[str, Path, None] = None,
                     use_cache: bool = True,
                     **kwargs: Any) -> List[DetectionResult]:
    """Figure 13b: FPR/FNR vs slot count at a 100 ms round interval."""
    configs = [(stages, slots, round_interval_ms)
               for stages in stages_options
               for slots in slot_options]
    return _run_sweep(configs, workers, cache_dir, use_cache, kwargs)
