"""Synthetic backbone traces for the Figure 13 detection experiments.

The paper replays CAIDA anonymised traces from a 10 Gbps ISP backbone
link (>400,000 flows/minute).  CAIDA traces cannot be redistributed, so
we generate the statistical equivalent: flow rates drawn from a Zipf
(discrete power-law) distribution — the canonical model for Internet
flow sizes — with exponentially distributed per-flow packet
inter-arrivals, merged into a single packet stream.  The parameters
(flows per minute, mean packet size, link rate) are chosen to match the
paper's setting; what the detection experiment needs from the trace is
heavy-tailed skew at realistic flow counts, which this preserves.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple

import numpy as np

if TYPE_CHECKING:
    from ..core.units import BitsPerSec, Bytes, Seconds, TimeNs

#: Paper setting: a 10 Gbps backbone link.
BACKBONE_RATE_BPS = 10e9
#: Paper setting: >400k flows per minute.
DEFAULT_FLOWS_PER_MINUTE = 400_000


@dataclass(frozen=True)
class TracePacket:
    """One packet of a synthetic trace."""

    time_ns: int
    flow: int
    size_bytes: int


class SyntheticTrace:
    """A Zipf-rate, Poisson-arrival packet trace.

    Args:
        duration_s: trace length in seconds.
        flows_per_minute: active flow arrival intensity; the number of
            flows present in the trace scales with duration.
        zipf_alpha: skew of the flow-rate distribution (1.0-1.3 is the
            usual Internet fit; higher = more skewed).
        link_rate_bps: total offered load is capped near this rate.
        mean_packet_bytes: average packet size.
        seed: RNG seed (every trace is deterministic given its seed).
    """

    def __init__(self, duration_s: Seconds = 1.0,
                 flows_per_minute: int = DEFAULT_FLOWS_PER_MINUTE,
                 zipf_alpha: float = 1.1,
                 link_rate_bps: BitsPerSec = BACKBONE_RATE_BPS,
                 mean_packet_bytes: Bytes = 700,
                 seed: int = 1) -> None:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        self.duration_s = duration_s
        self.flows_per_minute = flows_per_minute
        self.zipf_alpha = zipf_alpha
        self.link_rate_bps = link_rate_bps
        self.mean_packet_bytes = mean_packet_bytes
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        # The flow *population* is what pressures the cache: flows/min
        # counts flows active within any minute, and they exist (mostly
        # idle, Poisson-thinned) throughout shorter traces too.  Scaling
        # the population down with short trace durations would leave the
        # cache uncontended and make every detection experiment
        # trivially perfect.
        self.num_flows = max(1, int(flows_per_minute
                                    * max(duration_s, 60.0) / 60.0))
        self._flow_rates_bps = self._draw_flow_rates()

    def _draw_flow_rates(self) -> np.ndarray:
        """Per-flow average rates, Zipf-shaped, summing to ~80% of link."""
        ranks = np.arange(1, self.num_flows + 1, dtype=np.float64)
        weights = ranks ** (-self.zipf_alpha)
        self._rng.shuffle(weights)
        weights /= weights.sum()
        return weights * (0.8 * self.link_rate_bps)

    @property
    def flow_rates_bps(self) -> np.ndarray:
        """The ground-truth average rate of each flow id."""
        return self._flow_rates_bps

    def packets(self) -> Iterator[TracePacket]:
        """Generate the merged packet stream in time order.

        Flows whose expected packet count over the trace is below one
        still get a chance to emit proportional to their rate, so the
        long tail of tiny flows is present (they are what fills the
        cache slots in the Figure 13 experiment).
        """
        rng = np.random.default_rng(self.seed + 1)
        heap: List[Tuple[int, int]] = []  # (next_time_ns, flow)
        packet_interval_ns = np.empty(self.num_flows)
        for flow in range(self.num_flows):
            rate = self._flow_rates_bps[flow]
            pkt_per_sec = max(rate / (8.0 * self.mean_packet_bytes), 1e-9)
            packet_interval_ns[flow] = 1e9 / pkt_per_sec
            first = rng.exponential(packet_interval_ns[flow])
            if first < self.duration_s * 1e9:
                heap.append((int(first), flow))
        heapq.heapify(heap)
        horizon_ns = int(self.duration_s * 1e9)
        while heap:
            time_ns, flow = heapq.heappop(heap)
            size = int(rng.gamma(4.0, self.mean_packet_bytes / 4.0))
            size = min(max(size, 64), 1500)
            yield TracePacket(time_ns=time_ns, flow=flow, size_bytes=size)
            nxt = time_ns + int(rng.exponential(packet_interval_ns[flow]))
            if nxt < horizon_ns:
                heapq.heappush(heap, (nxt, flow))

    def true_bytes_by_interval(self, interval_ns: TimeNs
                               ) -> List[Dict[int, Bytes]]:
        """Ground-truth per-flow byte counts for each round interval."""
        buckets: List[Dict[int, int]] = []
        for packet in self.packets():
            index = packet.time_ns // interval_ns
            while len(buckets) <= index:
                buckets.append({})
            bucket = buckets[index]
            bucket[packet.flow] = bucket.get(packet.flow, 0) + \
                packet.size_bytes
        return buckets
