"""Heavy-hitter detection substrate: the passive cache, synthetic
backbone traces, and the Figure 13 FPR/FNR evaluation harness."""

from .evaluation import (DetectionResult, evaluate_detection,
                         sweep_round_interval, sweep_slot_count)
from .hashpipe import (CebinaeFlowCache, ExactFlowCache,
                       select_bottlenecked, stage_hash)
from .sketch import CountMinSketch
from .traces import (BACKBONE_RATE_BPS, DEFAULT_FLOWS_PER_MINUTE,
                     SyntheticTrace, TracePacket)

__all__ = [
    "CebinaeFlowCache", "ExactFlowCache", "select_bottlenecked",
    "stage_hash", "CountMinSketch",
    "SyntheticTrace", "TracePacket", "BACKBONE_RATE_BPS",
    "DEFAULT_FLOWS_PER_MINUTE",
    "DetectionResult", "evaluate_detection", "sweep_round_interval",
    "sweep_slot_count",
]
