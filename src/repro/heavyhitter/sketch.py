"""Count-min sketch for approximate per-flow byte counting.

AFQ (Sharma et al., NSDI '18) — the calendar-queue fair-queuing
approximation Cebinae is compared against — tracks every active flow's
bytes in a count-min sketch.  The sketch *over*-estimates under hash
collisions, which is exactly the failure mode the paper's "never make
unfairness worse" principle forbids for Cebinae (an over-estimated flow
gets unfairly delayed); keeping both data structures in the repository
makes that design contrast testable.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from ..analysis.invariants import unwrap
from .hashpipe import stage_hash


class CountMinSketch:
    """A standard count-min sketch over byte counts."""

    def __init__(self, rows: int = 2, columns: int = 2048,
                 seed: int = 1) -> None:
        if rows < 1 or columns < 1:
            raise ValueError("sketch dimensions must be positive")
        self.rows = rows
        self.columns = columns
        self._salts = [seed * 0x9E3779B1 + row * 0xC2B2AE35
                       for row in range(rows)]
        self._counts: List[List[int]] = [[0] * columns
                                         for _ in range(rows)]
        self.updates = 0

    def _indexes(self, key: Hashable) -> List[int]:
        return [stage_hash(key, salt) % self.columns
                for salt in self._salts]

    def update(self, key: Hashable, amount: int) -> int:
        """Add ``amount`` for ``key``; returns the new estimate."""
        self.updates += 1
        estimate: Optional[int] = None
        for row, index in enumerate(self._indexes(key)):
            self._counts[row][index] += amount
            value = self._counts[row][index]
            estimate = value if estimate is None else min(estimate,
                                                          value)
        return unwrap(estimate, "sketch has no rows")

    def estimate(self, key: Hashable) -> int:
        """The (never under-) estimated byte count for ``key``."""
        return min(self._counts[row][index]
                   for row, index in enumerate(self._indexes(key)))

    def reset(self) -> None:
        for row in self._counts:
            for index in range(self.columns):
                row[index] = 0

    @property
    def total_added(self) -> int:
        """Total bytes added (row 0 carries every update once)."""
        return sum(self._counts[0])
