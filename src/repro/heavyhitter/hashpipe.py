"""Cebinae's passive multi-stage heavy-hitter cache (paper section 4.2).

The cache identifies the bottlenecked (⊤) flows on a saturated port: the
flow(s) whose egress byte count is within ``δf`` of the maximum.  It
adapts HashPipe (Sivaraman et al., SOSR '17) but manages memory
*passively*: a packet hashes into each stage in turn and claims the
first entry that is free or already its own; if every stage's entry
belongs to another flow the packet simply is not counted.  There is no
eviction or recirculation — instead, the control plane polls and resets
the whole structure every interval, letting active heavy hitters
re-claim entries because they send the most packets.

Hashing is CRC32 with a per-stage salt so runs are deterministic
regardless of Python's string-hash randomisation.
"""

from __future__ import annotations

import zlib
from typing import (TYPE_CHECKING, Callable, Dict, Generic,
                    Hashable, List, Optional,
                    Set, Tuple, TypeVar)

if TYPE_CHECKING:
    from ..core.units import Bytes, Ratio

#: The flow-key type a cache is instantiated over (FlowId in the
#: simulator; tests use ints and strings).
K = TypeVar("K", bound=Hashable)

#: Observability hook signature: ``trace(action, key, stage, nbytes)``
#: with ``action`` one of ``insert``/``hit``/``uncounted`` and ``stage``
#: the claiming stage (-1 when no stage counted the packet).  The cache
#: holds no clock, so the installer (CebinaeQueueDisc) closes over the
#: simulation time and port name.
CacheTrace = Callable[[str, K, int, int], None]


def stage_hash(key: Hashable, salt: int) -> int:
    """A deterministic per-stage hash of an arbitrary flow key."""
    data = repr(key).encode("utf-8")
    return zlib.crc32(data, salt & 0xFFFFFFFF)


class CebinaeFlowCache(Generic[K]):
    """Multi-stage, passively managed byte-count cache."""

    def __init__(self, stages: int = 2, slots_per_stage: int = 2048,
                 seed: int = 1) -> None:
        if stages < 1:
            raise ValueError("need at least one stage")
        if slots_per_stage < 1:
            raise ValueError("need at least one slot per stage")
        self.stages = stages
        self.slots_per_stage = slots_per_stage
        self._salts = [seed * 0x9E3779B1 + s * 0x85EBCA77
                       for s in range(stages)]
        self._keys: List[List[Optional[K]]] = [
            [None] * slots_per_stage for _ in range(stages)]
        self._counts: List[List[int]] = [
            [0] * slots_per_stage for _ in range(stages)]
        self.uncounted_packets = 0
        self.uncounted_bytes = 0
        #: Observability hook (installed by the queue disc; None = off).
        self.trace: Optional[CacheTrace[K]] = None

    def update(self, key: K, nbytes: int) -> bool:
        """Account ``nbytes`` for ``key``.  False if no slot was free."""
        trace = self.trace
        for stage in range(self.stages):
            index = stage_hash(key, self._salts[stage]) % \
                self.slots_per_stage
            occupant = self._keys[stage][index]
            if occupant is None:
                self._keys[stage][index] = key
                self._counts[stage][index] = nbytes
                if trace is not None:
                    trace("insert", key, stage, nbytes)
                return True
            if occupant == key:
                self._counts[stage][index] += nbytes
                if trace is not None:
                    trace("hit", key, stage, nbytes)
                return True
        self.uncounted_packets += 1
        self.uncounted_bytes += nbytes
        if trace is not None:
            trace("uncounted", key, -1, nbytes)
        return False

    def lookup(self, key: K) -> int:
        """The bytes currently recorded for ``key`` (0 if untracked)."""
        for stage in range(self.stages):
            index = stage_hash(key, self._salts[stage]) % \
                self.slots_per_stage
            if self._keys[stage][index] == key:
                return self._counts[stage][index]
        return 0

    def snapshot(self) -> Dict[K, int]:
        """All (flow, bytes) entries currently held."""
        result: Dict[K, int] = {}
        for stage in range(self.stages):
            for key, count in zip(self._keys[stage], self._counts[stage]):
                if key is not None:
                    result[key] = result.get(key, 0) + count
        return result

    def poll_and_reset(self) -> Dict[K, int]:
        """Control-plane poll: return all entries and clear the cache.

        Mirrors the serializable poll+reset of the paper (every entry is
        evicted to the control plane, giving every active flow another
        chance to claim a slot next interval).
        """
        result = self.snapshot()
        for stage in range(self.stages):
            for index in range(self.slots_per_stage):
                self._keys[stage][index] = None
                self._counts[stage][index] = 0
        self.uncounted_packets = 0
        self.uncounted_bytes = 0
        return result

    @property
    def occupancy(self) -> int:
        """Number of occupied slots across all stages."""
        return sum(1 for stage in self._keys
                   for key in stage if key is not None)


class ExactFlowCache(Generic[K]):
    """A collision-free reference cache (dict-backed).

    Used by unit tests and available to the Cebinae queue disc when an
    experiment wants to isolate the mechanism from detection error.
    """

    def __init__(self) -> None:
        self._counts: Dict[K, int] = {}
        self.uncounted_packets = 0
        self.uncounted_bytes = 0
        #: Observability hook (same contract as CebinaeFlowCache.trace).
        self.trace: Optional[CacheTrace[K]] = None

    def update(self, key: K, nbytes: int) -> bool:
        trace = self.trace
        if trace is None:
            self._counts[key] = self._counts.get(key, 0) + nbytes
            return True
        present = key in self._counts
        self._counts[key] = self._counts.get(key, 0) + nbytes
        trace("hit" if present else "insert", key, 0, nbytes)
        return True

    def lookup(self, key: K) -> int:
        return self._counts.get(key, 0)

    def snapshot(self) -> Dict[K, int]:
        return dict(self._counts)

    def poll_and_reset(self) -> Dict[K, int]:
        result = self._counts
        self._counts = {}
        return result

    @property
    def occupancy(self) -> int:
        return len(self._counts)


def select_bottlenecked(flow_bytes: Dict[K, Bytes],
                        delta_flow: Ratio) -> Tuple[Set[K], Bytes]:
    """The paper's ⊤ selection rule (Figure 4, lines 17-25).

    Returns the set of flows whose byte count is within ``delta_flow``
    of the maximum, plus the aggregate bytes of that set (pre-tax).
    """
    if not flow_bytes:
        return set(), 0
    c_max = max(flow_bytes.values())
    if c_max <= 0:
        return set(), 0
    threshold = c_max * (1.0 - delta_flow)
    top = {flow for flow, count in flow_bytes.items()
           if count >= threshold}
    return top, sum(flow_bytes[flow] for flow in top)
