"""Max-min fair allocations via water-filling (paper section 3.1).

The water-filling algorithm computes the unique max-min fair rate
allocation for a set of flows over a capacitated network: all
unconstrained flows grow at an equal rate until some link saturates;
flows crossing a saturated link become constrained; repeat until every
flow is constrained (or satiated by its demand).

The result is both the ideal against which Figure 11 normalises its
JFI and the ground truth for this reproduction's property tests of
Definition 2 (every flow has a saturated bottleneck link on which it is
maximal).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

#: Relative tolerance for saturation/comparison checks.
EPSILON = 1e-9


@dataclass(frozen=True)
class FlowSpec:
    """A flow for the allocator: an id, a path of link ids, a demand."""

    flow_id: Hashable
    path: Tuple[Hashable, ...]
    demand: float = math.inf

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("a flow must traverse at least one link")
        if self.demand <= 0:
            raise ValueError("demand must be positive")


def water_filling(link_capacities: Dict[Hashable, float],
                  flows: Sequence[FlowSpec]) -> Dict[Hashable, float]:
    """Compute the max-min fair allocation.

    Args:
        link_capacities: capacity per link id (any consistent unit).
        flows: the competing flows; demands may be infinite.

    Returns:
        The allocated rate per flow id.
    """
    for flow in flows:
        for link in flow.path:
            if link not in link_capacities:
                raise KeyError(f"flow {flow.flow_id} uses unknown link "
                               f"{link}")
    remaining = dict(link_capacities)
    active: Dict[Hashable, FlowSpec] = {f.flow_id: f for f in flows}
    if len(active) != len(flows):
        raise ValueError("duplicate flow ids")
    allocation: Dict[Hashable, float] = {f.flow_id: 0.0 for f in flows}

    while active:
        # The per-flow increment each link can still afford.
        flows_on_link: Dict[Hashable, int] = {}
        for flow in active.values():
            for link in flow.path:
                flows_on_link[link] = flows_on_link.get(link, 0) + 1
        increment = math.inf
        for link, count in flows_on_link.items():
            increment = min(increment, remaining[link] / count)
        # Demand-limited flows may satiate before any link saturates.
        for flow in active.values():
            increment = min(increment,
                            flow.demand - allocation[flow.flow_id])
        if increment == math.inf:
            raise ValueError("unbounded allocation: no finite link "
                             "capacity or demand constrains some flow")
        for flow in active.values():
            allocation[flow.flow_id] += increment
            for link in flow.path:
                remaining[link] -= increment
        # Retire satiated flows and flows on saturated links.
        finished = set()
        for flow in active.values():
            if allocation[flow.flow_id] >= flow.demand - EPSILON:
                finished.add(flow.flow_id)
                continue
            for link in flow.path:
                capacity = link_capacities[link]
                if remaining[link] <= EPSILON * max(capacity, 1.0):
                    finished.add(flow.flow_id)
                    break
        if not finished and increment <= 0:
            raise RuntimeError("water-filling failed to progress")
        # Sorted (by repr: ids are only Hashable) so the iteration
        # order of ``active`` — and with it the float accumulation
        # order of ``remaining[link] -= increment``, which is not
        # associative — is identical in every process.
        for flow_id in sorted(finished, key=repr):
            del active[flow_id]
    return allocation


@dataclass
class BottleneckCheck:
    """The Definition 2 verdict for one flow."""

    flow_id: Hashable
    bottleneck_link: Optional[Hashable]

    @property
    def has_bottleneck(self) -> bool:
        return self.bottleneck_link is not None


def verify_maxmin(link_capacities: Dict[Hashable, float],
                  flows: Sequence[FlowSpec],
                  allocation: Dict[Hashable, float],
                  tolerance: float = 1e-6) -> List[BottleneckCheck]:
    """Check Definition 2: each non-satiated flow needs a bottleneck.

    A bottleneck for flow *i* is a link that is (a) saturated and
    (b) on which *i*'s rate is maximal.  Returns one verdict per flow;
    satiated (demand-limited) flows trivially pass and are reported with
    ``bottleneck_link=None`` but ``has_bottleneck`` is not required for
    them.
    """
    load: Dict[Hashable, float] = {link: 0.0 for link in link_capacities}
    users: Dict[Hashable, List[Hashable]] = {
        link: [] for link in link_capacities}
    for flow in flows:
        rate = allocation[flow.flow_id]
        for link in flow.path:
            load[link] += rate
            users[link].append(flow.flow_id)
    checks = []
    for flow in flows:
        rate = allocation[flow.flow_id]
        if rate >= flow.demand - tolerance:
            checks.append(BottleneckCheck(flow.flow_id, None))
            continue
        bottleneck = None
        for link in flow.path:
            capacity = link_capacities[link]
            saturated = load[link] >= capacity * (1.0 - tolerance)
            maximal = all(allocation[other] <= rate + tolerance *
                          max(capacity, 1.0)
                          for other in users[link])
            if saturated and maximal:
                bottleneck = link
                break
        checks.append(BottleneckCheck(flow.flow_id, bottleneck))
    return checks


def is_maxmin_fair(link_capacities: Dict[Hashable, float],
                   flows: Sequence[FlowSpec],
                   allocation: Dict[Hashable, float],
                   tolerance: float = 1e-6) -> bool:
    """True if every unsatiated flow has a Definition 2 bottleneck."""
    for check, flow in zip(
            verify_maxmin(link_capacities, flows, allocation, tolerance),
            flows):
        satiated = allocation[flow.flow_id] >= flow.demand - tolerance
        if not satiated and not check.has_bottleneck:
            return False
    return True
