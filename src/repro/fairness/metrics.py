"""Fairness and efficiency metrics used throughout the evaluation.

Two flavours of Jain's Fairness Index appear in the paper:

* the plain JFI over per-flow goodputs (Table 2, Figures 10/12);
* the *normalised* JFI of Figure 11, where each flow's goodput is first
  divided by its ideal max-min allocation, so the index measures
  distance from the max-min optimum rather than from equality
  (important under multiple bottlenecks, where the fair allocation is
  not uniform).
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Dict, Hashable, Iterable,
                    List, Sequence)

if TYPE_CHECKING:
    from ..core.units import BitsPerSec, Ratio


def jain_fairness_index(rates: Sequence[BitsPerSec]) -> Ratio:
    """Jain's index: ``(Σx)² / (n·Σx²)``; 1/n (worst) to 1 (equal)."""
    values = [max(float(rate), 0.0) for rate in rates]
    if not values:
        raise ValueError("JFI of an empty allocation is undefined")
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares == 0.0:
        # All-zero allocations are conventionally perfectly fair.
        return 1.0
    return total * total / (len(values) * squares)


def normalized_jfi(rates: Dict[Hashable, float],
                   ideal: Dict[Hashable, float]) -> float:
    """Figure 11's metric: JFI over ``x_i = r_i / r̂_i``."""
    if set(rates) != set(ideal):
        raise ValueError("rates and ideal must cover the same flows")
    ratios: List[float] = []
    for flow, rate in rates.items():
        reference = ideal[flow]
        if reference <= 0:
            raise ValueError(f"ideal allocation for {flow} must be "
                             "positive")
        ratios.append(rate / reference)
    return jain_fairness_index(ratios)


def jfi_time_series(per_flow_series: Dict[Hashable, Sequence[float]],
                    active_from_bin: Dict[Hashable, int] = None
                    ) -> List[float]:
    """Per-bin JFI over flows (Figure 10).

    ``active_from_bin`` optionally gives the first bin in which each
    flow counts (flows joining later are excluded from earlier bins, as
    in the figure, where the index is over the flows present).
    """
    if not per_flow_series:
        return []
    length = max(len(series) for series in per_flow_series.values())
    result = []
    for index in range(length):
        values = []
        for flow, series in per_flow_series.items():
            if active_from_bin is not None and \
                    index < active_from_bin.get(flow, 0):
                continue
            values.append(series[index] if index < len(series) else 0.0)
        result.append(jain_fairness_index(values) if values else 1.0)
    return result


def average_bps(values: Iterable[BitsPerSec]) -> BitsPerSec:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
