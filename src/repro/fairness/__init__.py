"""Fairness analytics: water-filling max-min allocations and Jain's
fairness index (plain and max-min-normalised)."""

from .convergence import (ConvergenceTrace, geometric_convergence_steps,
                          taxation_trajectory)
from .maxmin import (EPSILON, BottleneckCheck, FlowSpec, is_maxmin_fair,
                     verify_maxmin, water_filling)
from .metrics import (average_bps, jain_fairness_index, jfi_time_series,
                      normalized_jfi)

__all__ = [
    "FlowSpec", "water_filling", "verify_maxmin", "is_maxmin_fair",
    "BottleneckCheck", "EPSILON",
    "jain_fairness_index", "normalized_jfi", "jfi_time_series",
    "average_bps",
    "ConvergenceTrace", "taxation_trajectory",
    "geometric_convergence_steps",
]
