"""A fluid model of Cebinae's convergence (paper sections 3.2 and 7).

The paper models convergence informally: an aggressive flow holding
``excess``× its fair share is taxed by τ once per recomputation window,
so it reaches the fair share in ``ln(1/excess)/ln(1-τ)`` windows
(example 2 instantiates this as ``ln(2/3)/ln(1-τ)``).  Formalising the
convergence behaviour is explicitly left to future work; this module
provides the difference-equation model used by this repository's
analyses and the tax-ablation benchmark:

* per window, every flow within ``δf`` of the maximum is taxed by τ;
* un-taxed flows grow toward the released capacity at a configurable
  aggressiveness (modelling their CCA's ramp rate);
* rates renormalise to the link capacity when over-subscribed.

The model is deliberately simple — it captures who is taxed and how the
gap closes geometrically, which is what the benchmark checks against
packet-level simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from .metrics import jain_fairness_index

if TYPE_CHECKING:
    from ..core.units import BitsPerSec, Ratio


@dataclass
class ConvergenceTrace:
    """The modelled evolution of per-flow rates."""

    rates_per_step: List[List[BitsPerSec]]

    @property
    def steps(self) -> int:
        return len(self.rates_per_step) - 1

    def jfi_series(self) -> List[Ratio]:
        return [jain_fairness_index(rates)
                for rates in self.rates_per_step]

    def convergence_step(self, tolerance: float = 0.05) -> int:
        """First step where JFI is within ``tolerance`` of 1.0.

        Returns ``steps + 1`` if the trace never converges.
        """
        for step, value in enumerate(self.jfi_series()):
            if value >= 1.0 - tolerance:
                return step
        return self.steps + 1


def taxation_trajectory(initial_rates: Sequence[float],
                        capacity: float, tau: float = 0.01,
                        delta_flow: float = 0.01,
                        growth_fraction: float = 1.0,
                        steps: int = 200,
                        reclaim_weights: Optional[Sequence[float]] = None
                        ) -> ConvergenceTrace:
    """Iterate the Cebinae taxation difference equation.

    Args:
        initial_rates: starting allocation (need not be feasible).
        capacity: the shared link capacity.
        tau: tax applied to flows within ``delta_flow`` of the maximum.
        growth_fraction: how much of the released headroom un-taxed
            flows reclaim per window (1.0 = instantly, the paper's
            "flows that can quickly reclaim available bandwidth").
        steps: windows to simulate.
        reclaim_weights: how the released headroom splits across the
            claiming flows.  None (the default) splits equally —
            water-filling's local step.  The hybrid fluid backend
            passes the measured per-flow rates, modelling CCAs that
            reclaim in proportion to their current share (the RTT
            bias packet simulation exhibits), so the modelled
            convergence keeps the packet engine's fairness floor
            instead of idealising past it.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    if not initial_rates:
        raise ValueError("need at least one flow")
    if (reclaim_weights is not None
            and len(reclaim_weights) != len(initial_rates)):
        raise ValueError("reclaim_weights must match initial_rates")
    rates = [max(float(rate), 0.0) for rate in initial_rates]
    trace = [list(rates)]
    for _ in range(steps):
        maximum = max(rates)
        if maximum <= 0:
            trace.append(list(rates))
            continue
        threshold = maximum * (1.0 - delta_flow)
        taxed = [rate >= threshold for rate in rates]
        # Tax the bottlenecked set.
        new_rates = [rate * (1.0 - tau) if is_taxed else rate
                     for rate, is_taxed in zip(rates, taxed)]
        # Untaxed flows split the headroom equally (water-filling's
        # local step), scaled by their aggressiveness.  When *every*
        # flow is taxed — the converged state of example (1) — the
        # ensuing utilisation dip desaturates the port, limits are
        # released, and all flows reclaim: model that as everyone
        # splitting the headroom, so the system oscillates around full
        # capacity instead of decaying.
        headroom = capacity - sum(new_rates)
        claimants = [index for index, is_taxed in enumerate(taxed)
                     if not is_taxed]
        if not claimants:
            claimants = list(range(len(rates)))
        if claimants and headroom > 0:
            weight_total = 0.0
            if reclaim_weights is not None:
                weight_total = sum(reclaim_weights[index]
                                   for index in claimants)
            if weight_total > 0 and reclaim_weights is not None:
                reclaimed = growth_fraction * headroom
                for index in claimants:
                    new_rates[index] += (reclaimed
                                         * reclaim_weights[index]
                                         / weight_total)
            else:
                share = growth_fraction * headroom / len(claimants)
                for index in claimants:
                    new_rates[index] += share
        # Renormalise if infeasible (e.g. infeasible initial state).
        total = sum(new_rates)
        if total > capacity:
            new_rates = [rate * capacity / total for rate in new_rates]
        rates = new_rates
        trace.append(list(rates))
    return ConvergenceTrace(rates_per_step=trace)


def geometric_convergence_steps(excess_ratio: float,
                                tau: Ratio) -> float:
    """The paper's closed form: windows to shrink by ``excess``×."""
    import math
    if excess_ratio <= 1.0:
        return 0.0
    if tau <= 0.0:
        return math.inf
    if tau >= 1.0:
        return 1.0
    return math.log(1.0 / excess_ratio) / math.log(1.0 - tau)
