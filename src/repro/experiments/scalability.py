"""The scalability comparison of sections 2 and 5.5: Cebinae vs AFQ.

AFQ approximates fair queuing with ``nQ`` calendar queues of ``BpR``
bytes per round; Equation (1) requires ``buffer_req <= BpR x nQ`` *per
flow*.  As RTTs (hence per-flow buffer requirements) grow or queues
shrink, AFQ must either drop at the calendar horizon or run with BpR so
coarse that fairness degrades.  Cebinae's two queues are insensitive to
both.  This module runs the head-to-head on a dumbbell and reports
fairness, goodput and horizon drops.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.control_plane import cebinae_factory
from ..core.params import CebinaeParams
from ..fairness.metrics import jain_fairness_index
from ..netsim.afq import afq_factory
from ..netsim.engine import SECOND, Simulator, seconds
from ..netsim.packet import MTU_BYTES
from ..netsim.tracing import FlowMonitor
from ..netsim.topology import build_dumbbell
from ..tcp.flows import connect_flow


@dataclass
class ScalabilityPoint:
    """One (mechanism, configuration) measurement."""

    mechanism: str
    num_flows: int
    rtt_ms: float
    jfi: float
    goodput_bps: float
    horizon_drops: int


def _afq(rate_bps: float, buffer_mtus: int, num_queues: int,
         bytes_per_round: int):
    return afq_factory(num_queues=num_queues,
                       bytes_per_round=bytes_per_round,
                       limit_bytes=buffer_mtus * MTU_BYTES)


def _cebinae(rate_bps: float, buffer_mtus: int, max_rtt_s: float):
    params = CebinaeParams.for_link(
        rate_bps, buffer_mtus * MTU_BYTES,
        max_rtt_ns=seconds(max_rtt_s), tau=0.04, delta_port=0.08,
        delta_flow=0.04, min_bottom_rate_fraction=0.02)
    return cebinae_factory(params=params, buffer_mtus=buffer_mtus)


def run_point(mechanism: str, num_flows: int, rtt_ms: float,
              rate_bps: float = 20e6, buffer_mtus: int = 80,
              num_queues: int = 32, bytes_per_round: int = 2 * MTU_BYTES,
              duration_s: float = 20.0,
              cca: str = "newreno") -> ScalabilityPoint:
    """Run one mechanism at one (flows, RTT) configuration."""
    if mechanism == "afq":
        factory = _afq(rate_bps, buffer_mtus, num_queues,
                       bytes_per_round)
    elif mechanism == "cebinae":
        factory = _cebinae(rate_bps, buffer_mtus, rtt_ms / 1e3)
    else:
        raise ValueError(f"unknown mechanism {mechanism!r}")
    sim = Simulator()
    dumbbell = build_dumbbell([seconds(rtt_ms / 1e3)] * num_flows,
                              rate_bps, factory, sim=sim)
    monitor = FlowMonitor(sim)
    flows = [connect_flow(dumbbell.senders[i], dumbbell.receivers[i],
                          cca, monitor=monitor, src_port=10_000 + i)
             for i in range(num_flows)]
    sim.run(until_ns=seconds(duration_s))
    goodputs = [monitor.goodputs_bps(seconds(duration_s))[f.flow_id]
                for f in flows]
    queue = dumbbell.bottleneck.queue
    return ScalabilityPoint(
        mechanism=mechanism, num_flows=num_flows, rtt_ms=rtt_ms,
        jfi=jain_fairness_index(goodputs),
        goodput_bps=sum(goodputs),
        horizon_drops=getattr(queue, "horizon_drops", 0))


def _point_task(mechanism: str, num_flows: int, rtt_ms: float,
                **kwargs):
    """Build one pool task for :func:`run_point`.

    The cache fingerprint covers *all* of ``run_point``'s arguments
    with defaults resolved, so changing any default invalidates old
    entries for callers that relied on it.
    """
    import inspect

    from .parallel import Task, fingerprint
    bound = inspect.signature(run_point).bind(mechanism, num_flows,
                                              rtt_ms, **kwargs)
    bound.apply_defaults()
    params = dict(bound.arguments)
    return Task(fn=run_point,
                kwargs={"mechanism": mechanism, "num_flows": num_flows,
                        "rtt_ms": rtt_ms, **kwargs},
                label=f"scalability/{mechanism}"
                      f"@{num_flows}x{rtt_ms:.0f}ms",
                fingerprint=fingerprint("ScalabilityPoint", params),
                kind="ScalabilityPoint",
                encode=dataclasses.asdict,
                decode=lambda payload: ScalabilityPoint(**payload))


def rtt_sweep(rtts_ms: Sequence[float] = (20, 80, 320),
              num_flows: int = 4,
              workers: int = 1,
              cache_dir=None,
              use_cache: bool = True,
              **kwargs) -> List[ScalabilityPoint]:
    """Grow the RTT (per-flow buffer requirement) at fixed queues.

    AFQ's Equation (1) head-room shrinks relative to the BDP; Cebinae
    is RTT-insensitive by design.  Every (RTT, mechanism) cell is an
    independent simulation, executed through the shared pool/cache.
    """
    from .parallel import require, run_tasks
    tasks = [_point_task(mechanism, num_flows, rtt, **kwargs)
             for rtt in rtts_ms
             for mechanism in ("afq", "cebinae")]
    return [require(point) for point
            in run_tasks(tasks, workers=workers, cache_dir=cache_dir,
                         use_cache=use_cache)]


def format_points(points: Sequence[ScalabilityPoint]) -> str:
    lines = [f"{'mech':>8} {'flows':>5} {'rtt':>6} {'JFI':>6} "
             f"{'goodput':>9} {'horizon drops':>13}"]
    for point in points:
        lines.append(
            f"{point.mechanism:>8} {point.num_flows:>5} "
            f"{point.rtt_ms:>4.0f}ms {point.jfi:>6.3f} "
            f"{point.goodput_bps / 1e6:>7.2f} M "
            f"{point.horizon_drops:>13}")
    return "\n".join(lines)
