"""Parallel scenario execution with deterministic replay and caching.

Every point of the paper's evaluation — a Table 2 row under one
discipline, one RTT of Figure 9's sweep, one threshold of Figure 12 —
is an independent simulation, so the sweeps are embarrassingly
parallel.  This module fans them out over a ``multiprocessing`` pool
and memoises finished runs in an on-disk JSON cache so a re-run of a
figure script only simulates the points whose parameters changed.

Three properties make this safe:

* **Determinism** — a run is a pure function of its parameters: the
  engine orders events by ``(time_ns, seq)``, every RNG is seeded from
  the scenario, and no module-level mutable state leaks between runs
  (``tests/test_determinism.py`` pins this down).  A parallel sweep is
  therefore bit-for-bit identical to the serial one.
* **Round-trippable results** — :class:`ScenarioResult` serialises to
  JSON and back without loss, so a cache hit is indistinguishable from
  a fresh simulation.  Fresh results are passed through the same
  encode/decode pair before being returned, guaranteeing parity.
* **Stable keys** — cache entries are keyed by a SHA-256 fingerprint
  of the *complete* run configuration (scenario spec, Cebinae
  parameters, discipline, seed, collection flags) plus a cache-schema
  version, so stale entries can never be confused for current ones.

Typical use::

    specs = [RunSpec(scaled, d) for d in Discipline]
    results = run_many(specs, workers=4, cache_dir=".cebinae-cache")
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import random
import signal
import sys
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, Iterator, List, Mapping,
                    Optional, Sequence, Union)

from ..faults.spec import FaultSpec
from ..faults.watchdog import RunAborted
from .runner import Discipline, ScenarioResult, run_scenario
from .scenarios import ScaledScenario

#: Bump when simulation semantics change in a result-relevant way;
#: invalidates every existing cache entry.
CACHE_VERSION = 1


# --------------------------------------------------------------------------
# Fingerprinting: stable hashes of run parameters.
# --------------------------------------------------------------------------

def _canonical(value: Any) -> Any:
    """Reduce a parameter structure to canonical JSON-able primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {name: _canonical(getattr(value, name))
                for name in sorted(f.name for f in
                                   dataclasses.fields(value))}
    if isinstance(value, Discipline):
        return value.value
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__} "
                    f"for fingerprinting: {value!r}")


def fingerprint(kind: str, params: Mapping[str, Any]) -> str:
    """A stable hex digest of one run's complete configuration."""
    blob = json.dumps({"cache_version": CACHE_VERSION, "kind": kind,
                       "params": _canonical(dict(params))},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


# --------------------------------------------------------------------------
# Run specifications and failure sentinels.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class RunSpec:
    """One (scenario, discipline) point of a sweep."""

    scaled: ScaledScenario
    discipline: Discipline
    collect_series: bool = False
    record_history: bool = False
    seed: int = 0
    #: Deterministic fault injection for this point (None = fault-free).
    faults: Optional[FaultSpec] = None
    #: Simulation backend ("packet" or "hybrid"); see run_scenario.
    backend: str = "packet"
    #: Per-run guards (see run_scenario); they bound execution without
    #: changing what a completed run produces, so they are not part of
    #: the cache fingerprint.
    wall_limit_s: Optional[float] = None
    max_events: Optional[int] = None

    @property
    def label(self) -> str:
        base = f"{self.scaled.spec.name}/{self.discipline.value}"
        if self.seed != 0:
            base = f"{base}@seed{self.seed}"
        if self.faults is not None and self.faults.enabled:
            blob = json.dumps(self.faults.to_dict(), sort_keys=True)
            digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
            base = f"{base}+faults:{digest[:6]}"
        if self.backend != "packet":
            base = f"{base}~{self.backend}"
        return base

    def params(self) -> Dict[str, Any]:
        params: Dict[str, Any] = {
            "scaled": self.scaled, "discipline": self.discipline,
            "collect_series": self.collect_series,
            "record_history": self.record_history,
            "seed": self.seed}
        if self.faults is not None:
            # Included only when set: fault-free fingerprints must stay
            # identical to those minted before fault injection existed,
            # or every populated cache would silently go cold.
            params["faults"] = self.faults
        if self.backend != "packet":
            # Same cache-compat rule: packet-backend fingerprints must
            # match those minted before the hybrid backend existed.
            params["backend"] = self.backend
        return params

    def fingerprint(self) -> str:
        return fingerprint("ScenarioResult", self.params())

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready payload that rebuilds this spec losslessly.

        This is what the sweep-fabric manifest persists per task: a
        worker process reconstructs the exact :class:`RunSpec` (and
        hence the exact cache fingerprint) from the manifest alone,
        with no Python state shared with the process that wrote it.
        """
        return {
            "scaled": self.scaled.to_dict(),
            "discipline": self.discipline.value,
            "collect_series": self.collect_series,
            "record_history": self.record_history,
            "seed": self.seed,
            "faults": None if self.faults is None
            else self.faults.to_dict(),
            "backend": self.backend,
            "wall_limit_s": self.wall_limit_s,
            "max_events": self.max_events,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        from .scenarios import ScaledScenario
        faults = data.get("faults")
        wall_limit = data.get("wall_limit_s")
        max_events = data.get("max_events")
        return cls(
            scaled=ScaledScenario.from_dict(data["scaled"]),
            discipline=Discipline(data["discipline"]),
            collect_series=bool(data.get("collect_series", False)),
            record_history=bool(data.get("record_history", False)),
            seed=int(data.get("seed", 0)),
            faults=None if faults is None else FaultSpec.from_dict(faults),
            backend=str(data.get("backend", "packet")),
            wall_limit_s=None if wall_limit is None else float(wall_limit),
            max_events=None if max_events is None else int(max_events))


@dataclass
class FailedRun:
    """Sentinel recorded when a run kept failing after its retry.

    Sweeps degrade gracefully: one crashing point is logged and
    recorded as a :class:`FailedRun` instead of killing the pool.
    ``timed_out`` marks watchdog/pool-timeout casualties (deterministic
    failures, never retried), ``backoff_s`` records the delay *actually
    slept* before each retry attempt (under an early interrupt the last
    entry is the measured partial sleep, not the planned schedule),
    ``interrupted`` marks a run cut short by SIGINT/SIGTERM rather than
    its own failure, and ``partial`` carries whatever progress snapshot
    an aborted run managed to produce.
    """

    label: str
    error: str
    attempts: int
    timed_out: bool = False
    backoff_s: List[float] = field(default_factory=list)
    partial: Optional[Dict[str, Any]] = None
    interrupted: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready payload (reports persist failures with data)."""
        return {"label": self.label, "error": self.error,
                "attempts": self.attempts, "timed_out": self.timed_out,
                "backoff_s": list(self.backoff_s),
                "partial": self.partial,
                "interrupted": self.interrupted}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FailedRun":
        return cls(label=data["label"], error=data["error"],
                   attempts=data["attempts"],
                   timed_out=data.get("timed_out", False),
                   backoff_s=list(data.get("backoff_s", [])),
                   partial=data.get("partial"),
                   interrupted=data.get("interrupted", False))


def require(result: Union[Any, FailedRun]) -> Any:
    """Unwrap a run result, raising if the run failed."""
    if isinstance(result, FailedRun):
        raise RuntimeError(
            f"run {result.label!r} failed after {result.attempts} "
            f"attempts: {result.error}")
    return result


# --------------------------------------------------------------------------
# The on-disk result cache.
# --------------------------------------------------------------------------

class ResultCache:
    """A directory of ``<fingerprint>.json`` result payloads."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, fp: str) -> Path:
        return self.directory / f"{fp}.json"

    def load(self, fp: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``fp``, or None (counts hit/miss).

        A corrupted, truncated, or foreign-schema entry is a miss, not
        an error: the run is simply re-simulated and the entry
        overwritten.  ``ValueError`` covers ``json.JSONDecodeError``;
        the rest covers entries that parse but have the wrong shape.
        """
        path = self._path(fp)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry.get("cache_version") != CACHE_VERSION:
                self.misses += 1
                return None
            payload = entry["payload"]
        except (OSError, ValueError, KeyError, TypeError,
                AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, fp: str, kind: str, label: str,
              payload: Dict[str, Any]) -> None:
        """Atomically persist one result payload.

        Write-to-temp + fsync + ``os.replace`` so a reader (possibly in
        another process) only ever sees either no entry or a complete
        one — never a torn write, even across a crash.
        """
        entry = {"cache_version": CACHE_VERSION, "kind": kind,
                 "label": label, "payload": payload}
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.directory, suffix=".tmp", delete=False,
            encoding="utf-8")
        try:
            with handle:
                json.dump(entry, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, self._path(fp))
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def prune(self) -> Dict[str, Any]:
        """Remove entries :meth:`load` could never return, reclaiming disk.

        A corrupted, truncated, or foreign-schema entry is silently a
        *miss* on the read path — correct, but it lingers on disk
        forever and inflates the cache.  Pruning deletes those entries
        (plus ``*.tmp`` droppings from stores that crashed before their
        atomic rename) and reports what was reclaimed.  Safe alongside
        live writers: stores are atomic (a reader sees either no entry
        or a complete one), so only entries that were *already* broken
        on disk can ever fail validation and be deleted.
        """
        removed: List[str] = []
        reclaimed = 0
        kept = 0
        for path in sorted(self.directory.glob("*.json")):
            valid = False
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    entry = json.load(handle)
                valid = (isinstance(entry, dict)
                         and entry.get("cache_version") == CACHE_VERSION
                         and isinstance(entry.get("payload"), dict))
            except (OSError, ValueError):
                valid = False
            if valid:
                kept += 1
                continue
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue  # Vanished underneath us; nothing to reclaim.
            removed.append(path.name)
            reclaimed += size
        for path in sorted(self.directory.glob("*.tmp")):
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            removed.append(path.name)
            reclaimed += size
        return {"kept": kept, "removed": removed,
                "reclaimed_bytes": reclaimed}


# --------------------------------------------------------------------------
# The generic task executor.
# --------------------------------------------------------------------------

@dataclass
class Task:
    """One unit of pool work.

    ``fn(**kwargs)`` must be picklable (a module-level function with
    picklable arguments) and deterministic in its arguments.  ``encode``
    maps its return value to a JSON payload and ``decode`` maps the
    payload back; both run in the parent, and *every* result — cached
    or fresh — passes through them so the two sources are identical.
    """

    fn: Callable[..., Any]
    kwargs: Dict[str, Any]
    label: str
    fingerprint: str = ""          # "" disables caching for this task.
    kind: str = "result"
    encode: Callable[[Any], Dict[str, Any]] = dataclasses.asdict
    decode: Callable[[Dict[str, Any]], Any] = lambda payload: payload


def _call_task(fn: Callable[..., Any],
               kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side wrapper: run one task and time it."""
    started = time.perf_counter()  # simlint: allow[D103] worker timing
    value = fn(**kwargs)
    elapsed = time.perf_counter() - started  # simlint: allow[D103] worker timing
    return {"elapsed_s": elapsed, "value": value}


def _emit(progress: Optional[Callable[[str], None]],
          message: str) -> None:
    if progress is not None:
        progress(message)


def _print_progress(message: str) -> None:
    print(message, file=sys.stderr, flush=True)


#: Indirection so tests can observe retry pacing without sleeping.
_sleep = time.sleep


class TerminateSweep(KeyboardInterrupt):
    """SIGTERM, converted to an exception so the flush path runs.

    Subclasses :class:`KeyboardInterrupt` deliberately: every caller
    that already handles Ctrl-C on a sweep (flush completed results,
    release resources, re-raise) handles cluster-style kills — CI
    cancellation, batch timeouts, the OOM reaper's polite first pass —
    identically, with no new except-clauses.
    """


@contextmanager
def _sigterm_as_interrupt() -> Iterator[None]:
    """Convert SIGTERM to :class:`TerminateSweep` for a with-block.

    Installed only in the main thread of the main interpreter (the
    only place Python accepts signal handlers); elsewhere this is a
    no-op and SIGTERM keeps its default kill semantics.  The previous
    handler is restored on exit, even on error.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum: int, frame: Any) -> None:
        raise TerminateSweep()

    try:
        previous = signal.signal(signal.SIGTERM, _raise)
    except ValueError:      # Non-main interpreter or exotic host.
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _backoff_delays(key: str, retries: int, base_s: float) -> List[float]:
    """Exponential backoff delays with deterministic seeded jitter.

    Delays grow as ``base_s * 2**attempt``, each stretched by up to
    +50% jitter from an RNG seeded by SHA-256 of the task's fingerprint
    (or label).  Jitter de-synchronises retries that would otherwise
    stampede a shared resource, and seeding it makes a re-run of the
    same sweep schedule byte-identical retry timing.
    """
    seed = int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")
    rng = random.Random(seed)
    return [base_s * (2 ** attempt) * (1.0 + 0.5 * rng.random())
            for attempt in range(retries)]


def _no_retry(exc: BaseException) -> bool:
    """Failures that are deterministic verdicts, not transient crashes.

    A watchdog abort or pool timeout will recur on every attempt (the
    same spec wedges the same way), so retrying only burns wall clock.
    """
    return isinstance(exc, (RunAborted, multiprocessing.TimeoutError))


def _describe(result: Any, elapsed_s: float) -> str:
    extra = ""
    events = getattr(result, "events", None)
    duration = getattr(result, "duration_s", None)
    if events is not None and elapsed_s > 0:
        extra += f"  {events / elapsed_s / 1e3:.0f}k ev/s"
    if duration is not None and elapsed_s > 0:
        extra += f"  sim-rate {duration / elapsed_s:.2f}x"
    return f"wall {elapsed_s:.2f}s{extra}"


def run_tasks(tasks: Sequence[Task], workers: Optional[int] = None,
              cache_dir: Union[str, Path, None] = None,
              use_cache: bool = True, retries: int = 1,
              progress: Optional[Callable[[str], None]] = _print_progress,
              timeout_s: Optional[float] = None,
              backoff_base_s: float = 0.05
              ) -> List[Union[Any, FailedRun]]:
    """Execute ``tasks``, in order, over a process pool with caching.

    Returns one entry per task, in task order: the decoded result, or a
    :class:`FailedRun` sentinel if the task raised on every attempt.
    ``workers=None`` uses ``os.cpu_count()``; ``workers<=1`` runs
    serially in-process (no pool), which is also the fallback for
    retries so a crashing worker cannot take the sweep down with it.

    ``timeout_s`` bounds each pooled task's wall clock from the parent
    side (a backstop for the in-run watchdog; a timed-out task becomes
    a :class:`FailedRun` with ``timed_out`` set and is never retried).
    Transient crashes back off exponentially before each retry (see
    :func:`_backoff_delays`); a ``KeyboardInterrupt`` — or a SIGTERM,
    which is converted to :class:`TerminateSweep` for the duration of
    the call so cluster-style kills behave like Ctrl-C — flushes every
    already-completed result to the cache before re-raising, so an
    interrupted sweep loses only the in-flight points.  An interrupt
    that lands mid-backoff records the *measured* partial sleep (not
    the planned schedule) in a :class:`FailedRun` attached to the
    exception as ``failed_run``, so post-mortems of killed sweeps are
    truthful about what actually happened.
    """
    cache = None
    if cache_dir is not None:
        cache = cache_dir if isinstance(cache_dir, ResultCache) \
            else ResultCache(cache_dir)
    results: List[Union[Any, FailedRun]] = [None] * len(tasks)
    pending: List[int] = []
    for index, task in enumerate(tasks):
        payload = None
        if cache is not None and use_cache and task.fingerprint:
            payload = cache.load(task.fingerprint)
        if payload is not None:
            results[index] = task.decode(payload)
            _emit(progress, f"[parallel] cached {task.label}")
        else:
            pending.append(index)

    if not pending:
        return results

    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(1, min(int(workers), len(pending)))

    envelopes: Dict[int, Union[Dict[str, Any], BaseException]] = {}

    def flush_completed() -> None:
        """Persist every finished envelope (interrupt salvage path)."""
        if cache is None:
            return
        flushed = 0
        for done_index, envelope in envelopes.items():
            if isinstance(envelope, BaseException):
                continue
            done = tasks[done_index]
            if done.fingerprint:
                cache.store(done.fingerprint, done.kind, done.label,
                            done.encode(envelope["value"]))
                flushed += 1
        _emit(progress,
              f"[parallel] interrupted; flushed {flushed} completed "
              f"result(s) to cache")

    with _sigterm_as_interrupt():
        try:
            if workers == 1:
                for index in pending:
                    task = tasks[index]
                    _emit(progress, f"[parallel] start  {task.label}")
                    try:
                        envelopes[index] = _call_task(task.fn,
                                                      task.kwargs)
                    except Exception as exc:  # noqa: BLE001 - recorded below.
                        envelopes[index] = exc
            else:
                context = multiprocessing.get_context()
                with context.Pool(processes=workers) as pool:
                    handles = {}
                    for index in pending:
                        task = tasks[index]
                        _emit(progress,
                              f"[parallel] start  {task.label}")
                        handles[index] = pool.apply_async(
                            _call_task, (task.fn, task.kwargs))
                    for index in pending:
                        try:
                            envelopes[index] = handles[index].get(
                                timeout=timeout_s)
                        except Exception as exc:  # noqa: BLE001
                            envelopes[index] = exc
        except KeyboardInterrupt:
            # Pool.__exit__ has already terminated the workers; keep
            # what finished, then let the interrupt propagate.
            flush_completed()
            raise

        try:
            for index in pending:
                task = tasks[index]
                envelope = envelopes[index]
                attempts = 1
                delays = _backoff_delays(task.fingerprint or task.label,
                                         retries, backoff_base_s)
                slept: List[float] = []
                while (isinstance(envelope, BaseException)
                       and attempts <= retries
                       and not _no_retry(envelope)):
                    delay = delays[attempts - 1]
                    _emit(progress,
                          f"[parallel] retry  {task.label} after "
                          f"{type(envelope).__name__}: {envelope} "
                          f"(backoff {delay * 1e3:.0f}ms)")
                    # Host-side retry pacing, not simulation time.
                    started = time.monotonic()  # simlint: allow[D103] retry pacing
                    try:
                        _sleep(delay)
                    except BaseException as interrupt:
                        # Record the sleep actually slept, not the
                        # planned schedule: a post-mortem of a killed
                        # sweep must not claim time that never passed.
                        slept.append(min(
                            delay,
                            time.monotonic() - started))  # simlint: allow[D103] retry pacing
                        failed = FailedRun(
                            label=task.label,
                            error=f"interrupted during retry backoff "
                                  f"after {type(envelope).__name__}: "
                                  f"{envelope}",
                            attempts=attempts, backoff_s=slept,
                            interrupted=True)
                        results[index] = failed
                        setattr(interrupt, "failed_run", failed)
                        raise
                    slept.append(delay)
                    attempts += 1
                    try:
                        envelope = _call_task(task.fn, task.kwargs)
                    except Exception as exc:  # noqa: BLE001
                        envelope = exc
                if isinstance(envelope, BaseException):
                    _emit(progress,
                          f"[parallel] FAILED {task.label}: {envelope}")
                    timed_out = isinstance(envelope,
                                           multiprocessing.TimeoutError)
                    partial = None
                    if isinstance(envelope, RunAborted):
                        timed_out = True
                        partial = envelope.partial
                    results[index] = FailedRun(
                        label=task.label,
                        error=str(envelope) or type(envelope).__name__,
                        attempts=attempts, timed_out=timed_out,
                        backoff_s=slept, partial=partial)
                    continue
                payload = task.encode(envelope["value"])
                if cache is not None and task.fingerprint:
                    cache.store(task.fingerprint, task.kind, task.label,
                                payload)
                results[index] = task.decode(payload)
                _emit(progress, f"[parallel] done   {task.label}  "
                      + _describe(results[index], envelope["elapsed_s"]))
        except KeyboardInterrupt:
            # Interrupted while retrying/recording: salvage everything
            # the pool phase completed before propagating.
            flush_completed()
            raise
    return results


# --------------------------------------------------------------------------
# The scenario-level API.
# --------------------------------------------------------------------------

def _scenario_task(spec: RunSpec) -> Task:
    kwargs: Dict[str, Any] = {
        "scaled": spec.scaled,
        "discipline": spec.discipline,
        "collect_series": spec.collect_series,
        "record_history": spec.record_history,
        "seed": spec.seed}
    if spec.faults is not None:
        kwargs["faults"] = spec.faults
    if spec.backend != "packet":
        kwargs["backend"] = spec.backend
    if spec.wall_limit_s is not None:
        kwargs["wall_limit_s"] = spec.wall_limit_s
    if spec.max_events is not None:
        kwargs["max_events"] = spec.max_events
    return Task(fn=run_scenario,
                kwargs=kwargs,
                label=spec.label,
                fingerprint=spec.fingerprint(),
                kind="ScenarioResult",
                encode=ScenarioResult.to_dict,
                decode=ScenarioResult.from_dict)


def scenario_task(spec: RunSpec) -> Task:
    """The pool :class:`Task` for one scenario point.

    Public so other layers (the declarative suite runner) can mix
    scenario points with their own task kinds in a single
    :func:`run_tasks` call while sharing the same cache fingerprints.
    """
    return _scenario_task(spec)


def run_many(specs: Sequence[RunSpec], workers: Optional[int] = None,
             cache_dir: Union[str, Path, None] = None,
             use_cache: bool = True, retries: int = 1,
             progress: Optional[Callable[[str], None]] = _print_progress,
             timeout_s: Optional[float] = None
             ) -> List[Union[ScenarioResult, FailedRun]]:
    """Run independent scenario points over a process pool.

    Results come back in spec order, each either a
    :class:`ScenarioResult` (identical, field for field, to what the
    serial :func:`~repro.experiments.runner.run_scenario` produces) or
    a :class:`FailedRun` sentinel.  With ``cache_dir`` set, previously
    simulated fingerprints are loaded from disk instead of re-run.
    """
    tasks = [_scenario_task(spec) for spec in specs]
    return run_tasks(tasks, workers=workers, cache_dir=cache_dir,
                     use_cache=use_cache, retries=retries,
                     progress=progress, timeout_s=timeout_s)
