"""Scenario execution: build the topology, run, collect metrics.

The runner executes a :class:`~repro.experiments.scenarios.ScaledScenario`
under one of the three disciplines the paper compares — FIFO drop-tail,
FQ (FQ-CoDel with per-flow queues), and Cebinae — and returns the
metrics the paper reports: per-flow goodput, bottleneck throughput, and
Jain's fairness index, with optional per-second series.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.control_plane import CebinaeControlPlane, cebinae_factory
from ..fairness.metrics import jain_fairness_index, jfi_time_series
from ..faults.schedule import ControlPlaneFaults, FaultSchedule
from ..faults.spec import FaultSpec
from ..faults.watchdog import RunAborted, WallClockWatchdog
from ..netsim.engine import (SECOND, SimulationError, Simulator,
                             seconds)
from ..netsim.fq_codel import fq_codel_factory
from ..netsim.packet import FlowId, MTU_BYTES
from ..netsim.queues import DropTailQueue
from ..netsim.topology import Dumbbell, build_dumbbell
from ..netsim.tracing import FlowMonitor
from ..obs import bus as obs_bus
from ..obs import metrics as obs_metrics
from ..tcp.flows import TcpFlow, connect_flow
from .scenarios import ScaledScenario


class Discipline(enum.Enum):
    """The three queueing disciplines of the paper's comparison."""

    FIFO = "fifo"
    FQ = "fq"
    CEBINAE = "cebinae"


@dataclass
class ScenarioResult:
    """Everything measured from one scenario run."""

    name: str
    discipline: Discipline
    duration_s: float
    sim_rate_bps: float
    rate_scale: float
    flow_scale: float
    cca_names: List[str]
    goodputs_bps: List[float]
    throughput_bps: float
    events: int
    lbf_drops: int = 0
    lbf_delays: int = 0
    buffer_drops: int = 0
    goodput_series_bps: Optional[List[List[float]]] = None
    start_times_s: Optional[List[float]] = None
    cp_history: Optional[list] = None
    #: Fault-injection account (see FaultSchedule.summary); None when
    #: the run had no faults, and then absent from the JSON payload so
    #: fault-free results stay byte-identical to pre-fault-subsystem
    #: outputs.
    fault_summary: Optional[Dict[str, Any]] = None

    @property
    def jfi(self) -> float:
        return jain_fairness_index(self.goodputs_bps)

    @property
    def total_goodput_bps(self) -> float:
        return sum(self.goodputs_bps)

    def jfi_series(self) -> List[float]:
        """Per-second JFI over the flows active in each second."""
        if self.goodput_series_bps is None:
            raise ValueError("run with collect_series=True for series")
        per_flow = {i: series
                    for i, series in enumerate(self.goodput_series_bps)}
        active = None
        if self.start_times_s is not None:
            active = {i: int(t) for i, t in enumerate(self.start_times_s)}
        return jfi_time_series(per_flow, active)

    def to_dict(self) -> dict:
        """A JSON-ready payload that round-trips without loss.

        The parallel executor and its on-disk result cache depend on
        ``from_dict(to_dict(r)) == r`` holding field for field.
        """
        data: Dict[str, Any] = {
            "name": self.name,
            "discipline": self.discipline.value,
            "duration_s": self.duration_s,
            "sim_rate_bps": self.sim_rate_bps,
            "rate_scale": self.rate_scale,
            "flow_scale": self.flow_scale,
            "cca_names": list(self.cca_names),
            "goodputs_bps": list(self.goodputs_bps),
            "throughput_bps": self.throughput_bps,
            "events": self.events,
            "lbf_drops": self.lbf_drops,
            "lbf_delays": self.lbf_delays,
            "buffer_drops": self.buffer_drops,
            "goodput_series_bps":
                [list(series) for series in self.goodput_series_bps]
                if self.goodput_series_bps is not None else None,
            "start_times_s": list(self.start_times_s)
                if self.start_times_s is not None else None,
            "cp_history":
                [sample.to_dict() for sample in self.cp_history]
                if self.cp_history is not None else None,
        }
        if self.fault_summary is not None:
            data["fault_summary"] = self.fault_summary
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict`'s payload."""
        from ..core.control_plane import ControlPlaneSample
        return cls(
            name=data["name"],
            discipline=Discipline(data["discipline"]),
            duration_s=data["duration_s"],
            sim_rate_bps=data["sim_rate_bps"],
            rate_scale=data["rate_scale"],
            flow_scale=data["flow_scale"],
            cca_names=list(data["cca_names"]),
            goodputs_bps=list(data["goodputs_bps"]),
            throughput_bps=data["throughput_bps"],
            events=data["events"],
            lbf_drops=data["lbf_drops"],
            lbf_delays=data["lbf_delays"],
            buffer_drops=data["buffer_drops"],
            goodput_series_bps=[list(series) for series
                                in data["goodput_series_bps"]]
            if data["goodput_series_bps"] is not None else None,
            start_times_s=list(data["start_times_s"])
            if data["start_times_s"] is not None else None,
            cp_history=[ControlPlaneSample.from_dict(sample)
                        for sample in data["cp_history"]]
            if data["cp_history"] is not None else None,
            fault_summary=data.get("fault_summary"),
        )


def queue_factory_for(discipline: Discipline, scaled: ScaledScenario,
                      agents: Optional[list] = None,
                      record_history: bool = False,
                      cp_faults: Optional[ControlPlaneFaults] = None):
    """The bottleneck queue factory for a discipline."""
    buffer_mtus = scaled.spec.buffer_mtus
    if discipline is Discipline.FIFO:
        return lambda spec: DropTailQueue.from_mtu_count(buffer_mtus)
    if discipline is Discipline.FQ:
        # The paper raises FQ-CoDel's queue count to 2^32-1 (exact
        # per-flow queues) and we follow; the packet limit mirrors the
        # scenario's buffer.
        return fq_codel_factory(limit_packets=max(buffer_mtus, 64))
    if discipline is Discipline.CEBINAE:
        return cebinae_factory(params=scaled.cebinae,
                               buffer_mtus=buffer_mtus,
                               agents=agents,
                               record_history=record_history,
                               cp_faults=cp_faults)
    raise ValueError(f"unknown discipline {discipline}")


def run_scenario(scaled: ScaledScenario, discipline: Discipline,
                 collect_series: bool = False,
                 record_history: bool = False,
                 seed: int = 0,
                 faults: Optional[FaultSpec] = None,
                 wall_limit_s: Optional[float] = None,
                 max_events: Optional[int] = None) -> ScenarioResult:
    """Execute one scenario under one discipline.

    ``seed`` varies the hosts' timing-noise RNG so replications of the
    same scenario are statistically independent yet reproducible.
    ``faults`` injects a deterministic fault schedule (the no-fault path
    is untouched: no extra events, RNG draws, or JSON keys).
    ``wall_limit_s``/``max_events`` bound the run; a breach raises
    :class:`~repro.faults.watchdog.RunAborted` carrying a partial-result
    snapshot.
    """
    spec = scaled.spec
    plans = spec.flow_plans()
    agents: List[CebinaeControlPlane] = []
    schedule: Optional[FaultSchedule] = None
    cp_faults: Optional[ControlPlaneFaults] = None
    sim = Simulator()
    trace_bus = obs_bus.current()
    if trace_bus is not None:
        # Clockless producers (queue discs) stamp records through the
        # bus; bind before the topology is built so emitters resolve.
        trace_bus.set_clock(sim)
    if faults is not None and faults.enabled:
        schedule = FaultSchedule(faults, sim)
        cp_faults = schedule.control_plane_faults()
    factory = queue_factory_for(discipline, scaled, agents=agents,
                                record_history=record_history,
                                cp_faults=cp_faults)
    dumbbell = build_dumbbell(
        rtts_ns=[seconds(plan.rtt_s) for plan in plans],
        bottleneck_rate_bps=spec.rate_bps,
        bottleneck_queue=factory,
        sim=sim,
        jitter_seed=seed)
    monitor = FlowMonitor(sim)
    flows: List[TcpFlow] = []
    for plan in plans:
        flows.append(connect_flow(
            dumbbell.senders[plan.index], dumbbell.receivers[plan.index],
            plan.cca, monitor=monitor, src_port=10_000 + plan.index,
            start_time_ns=seconds(plan.start_time_s)))
    duration_ns = seconds(spec.duration_s)
    if schedule is not None:
        schedule.install(dumbbell.network.links,
                         list(dumbbell.network.nodes.values()),
                         duration_ns)

    def partial_snapshot() -> Dict[str, Any]:
        """What the run had achieved when a guard stopped it."""
        return {
            "events": sim.processed_events,
            "sim_time_ns": sim.now_ns,
            "duration_ns": duration_ns,
            "delivered_bytes": [
                monitor.records[flow.flow_id].delivered_bytes
                if flow.flow_id in monitor.records else 0
                for flow in flows],
        }

    watchdog = None
    if wall_limit_s is not None:
        watchdog = WallClockWatchdog(wall_limit_s,
                                     partial=partial_snapshot)
    try:
        sim.run(until_ns=duration_ns, max_events=max_events,
                watchdog=watchdog)
    except SimulationError as exc:
        # The event-budget guard; rewrap with the partial payload so
        # the executor records progress alongside the failure.
        raise RunAborted(str(exc), partial=partial_snapshot()) from exc

    goodputs = [monitor.goodputs_bps(duration_ns)[flow.flow_id]
                for flow in flows]
    series = None
    if collect_series:
        series = [monitor.goodput_series_bps(flow.flow_id, duration_ns)
                  for flow in flows]
    queue = dumbbell.bottleneck.queue
    result = ScenarioResult(
        name=spec.name,
        discipline=discipline,
        duration_s=spec.duration_s,
        sim_rate_bps=spec.rate_bps,
        rate_scale=scaled.rate_scale,
        flow_scale=scaled.flow_scale,
        cca_names=[plan.cca for plan in plans],
        goodputs_bps=goodputs,
        throughput_bps=dumbbell.bottleneck.tx_bytes * 8 * SECOND
        / duration_ns,
        events=sim.processed_events,
        lbf_drops=getattr(queue, "lbf_drops", 0),
        lbf_delays=getattr(queue, "lbf_delays", 0),
        buffer_drops=getattr(queue, "buffer_drops",
                             queue.dropped_packets),
        goodput_series_bps=series,
        start_times_s=[plan.start_time_s for plan in plans]
        if spec.start_times_s is not None else None,
        cp_history=agents[0].history if agents and record_history
        else None,
    )
    if schedule is not None:
        summary = schedule.summary()
        if agents:
            # Fold the agents' degradation counters into the account
            # (the oracle counts draws; the agents count consequences).
            cp: Dict[str, Any] = dict(summary.get("control_plane", {}))
            cp["rounds"] = sum(agent.round_counter for agent in agents)
            cp["deadline_misses"] = sum(agent.deadline_misses
                                        for agent in agents)
            cp["dropped_reconfigs"] = sum(agent.dropped_reconfigs
                                          for agent in agents)
            cp["failopen_rounds"] = sum(agent.failopen_rounds
                                        for agent in agents)
            cp["failopen_enqueues"] = getattr(
                dumbbell.bottleneck.queue, "failopen_enqueues", 0)
            summary["control_plane"] = cp
        result.fault_summary = summary
    registry = obs_metrics.current()
    if registry is not None:
        obs_metrics.record_scenario(registry, result)
    return result


def run_comparison(scaled: ScaledScenario,
                   disciplines: Sequence[Discipline] = (
                       Discipline.FIFO, Discipline.FQ,
                       Discipline.CEBINAE),
                   collect_series: bool = False,
                   record_history: bool = False,
                   workers: int = 1,
                   cache_dir=None,
                   use_cache: bool = True
                   ) -> Dict[Discipline, ScenarioResult]:
    """Run a scenario under each requested discipline.

    With ``workers > 1`` or a ``cache_dir``, the disciplines run
    through :mod:`repro.experiments.parallel` (one pool slot each);
    results are identical to the serial path either way.
    """
    if workers <= 1 and cache_dir is None:
        return {discipline: run_scenario(scaled, discipline,
                                         collect_series=collect_series,
                                         record_history=record_history)
                for discipline in disciplines}
    from .parallel import RunSpec, require, run_many
    specs = [RunSpec(scaled=scaled, discipline=discipline,
                     collect_series=collect_series,
                     record_history=record_history)
             for discipline in disciplines]
    results = run_many(specs, workers=workers, cache_dir=cache_dir,
                       use_cache=use_cache)
    return {discipline: require(result)
            for discipline, result in zip(disciplines, results)}
