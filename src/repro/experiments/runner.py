"""Scenario execution: build the topology, run, collect metrics.

The runner executes a :class:`~repro.experiments.scenarios.ScaledScenario`
under one of the three disciplines the paper compares — FIFO drop-tail,
FQ (FQ-CoDel with per-flow queues), and Cebinae — and returns the
metrics the paper reports: per-flow goodput, bottleneck throughput, and
Jain's fairness index, with optional per-second series.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.control_plane import CebinaeControlPlane, cebinae_factory
from ..fairness.metrics import jain_fairness_index, jfi_time_series
from ..faults.schedule import ControlPlaneFaults, FaultSchedule
from ..faults.spec import FaultSpec
from ..faults.watchdog import RunAborted, WallClockWatchdog
from ..netsim.engine import (SECOND, SimulationError, Simulator,
                             seconds)
from ..netsim.fluid import (REASON_FAULTS, REASON_SHORT_RUN,
                            REASON_UNSTABLE, FluidPhaseReport,
                            HybridPolicy, advance_fluid,
                            equilibrium_schedule, measured_rates_bps,
                            pool_rates, rate_divergence, rate_pool_key,
                            wire_overhead_ratio)
from ..netsim.fq_codel import fq_codel_factory
from ..netsim.packet import FlowId, MTU_BYTES
from ..netsim.queues import DropTailQueue
from ..netsim.topology import Dumbbell, build_dumbbell
from ..netsim.tracing import FlowMonitor
from ..obs import bus as obs_bus
from ..obs import metrics as obs_metrics
from ..obs import spans as obs_spans
from ..tcp.flows import TcpFlow, connect_flow
from .scenarios import ScaledScenario


class Discipline(enum.Enum):
    """The three queueing disciplines of the paper's comparison."""

    FIFO = "fifo"
    FQ = "fq"
    CEBINAE = "cebinae"


@dataclass
class ScenarioResult:
    """Everything measured from one scenario run."""

    name: str
    discipline: Discipline
    duration_s: float
    sim_rate_bps: float
    rate_scale: float
    flow_scale: float
    cca_names: List[str]
    goodputs_bps: List[float]
    throughput_bps: float
    events: int
    lbf_drops: int = 0
    lbf_delays: int = 0
    buffer_drops: int = 0
    goodput_series_bps: Optional[List[List[float]]] = None
    start_times_s: Optional[List[float]] = None
    cp_history: Optional[list] = None
    #: Fault-injection account (see FaultSchedule.summary); None when
    #: the run had no faults, and then absent from the JSON payload so
    #: fault-free results stay byte-identical to pre-fault-subsystem
    #: outputs.
    fault_summary: Optional[Dict[str, Any]] = None
    #: Hybrid-backend account (see FluidPhaseReport.to_dict); None for
    #: packet-backend runs, and then absent from the JSON payload so
    #: packet results stay byte-identical to pre-hybrid outputs.
    hybrid_summary: Optional[Dict[str, Any]] = None

    @property
    def jfi(self) -> float:
        return jain_fairness_index(self.goodputs_bps)

    @property
    def total_goodput_bps(self) -> float:
        return sum(self.goodputs_bps)

    def jfi_series(self) -> List[float]:
        """Per-second JFI over the flows active in each second."""
        if self.goodput_series_bps is None:
            raise ValueError("run with collect_series=True for series")
        per_flow = {i: series
                    for i, series in enumerate(self.goodput_series_bps)}
        active = None
        if self.start_times_s is not None:
            active = {i: int(t) for i, t in enumerate(self.start_times_s)}
        return jfi_time_series(per_flow, active)

    def to_dict(self) -> dict:
        """A JSON-ready payload that round-trips without loss.

        The parallel executor and its on-disk result cache depend on
        ``from_dict(to_dict(r)) == r`` holding field for field.
        """
        data: Dict[str, Any] = {
            "name": self.name,
            "discipline": self.discipline.value,
            "duration_s": self.duration_s,
            "sim_rate_bps": self.sim_rate_bps,
            "rate_scale": self.rate_scale,
            "flow_scale": self.flow_scale,
            "cca_names": list(self.cca_names),
            "goodputs_bps": list(self.goodputs_bps),
            "throughput_bps": self.throughput_bps,
            "events": self.events,
            "lbf_drops": self.lbf_drops,
            "lbf_delays": self.lbf_delays,
            "buffer_drops": self.buffer_drops,
            "goodput_series_bps":
                [list(series) for series in self.goodput_series_bps]
                if self.goodput_series_bps is not None else None,
            "start_times_s": list(self.start_times_s)
                if self.start_times_s is not None else None,
            "cp_history":
                [sample.to_dict() for sample in self.cp_history]
                if self.cp_history is not None else None,
        }
        if self.fault_summary is not None:
            data["fault_summary"] = self.fault_summary
        if self.hybrid_summary is not None:
            data["hybrid_summary"] = self.hybrid_summary
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict`'s payload."""
        from ..core.control_plane import ControlPlaneSample
        return cls(
            name=data["name"],
            discipline=Discipline(data["discipline"]),
            duration_s=data["duration_s"],
            sim_rate_bps=data["sim_rate_bps"],
            rate_scale=data["rate_scale"],
            flow_scale=data["flow_scale"],
            cca_names=list(data["cca_names"]),
            goodputs_bps=list(data["goodputs_bps"]),
            throughput_bps=data["throughput_bps"],
            events=data["events"],
            lbf_drops=data["lbf_drops"],
            lbf_delays=data["lbf_delays"],
            buffer_drops=data["buffer_drops"],
            goodput_series_bps=[list(series) for series
                                in data["goodput_series_bps"]]
            if data["goodput_series_bps"] is not None else None,
            start_times_s=list(data["start_times_s"])
            if data["start_times_s"] is not None else None,
            cp_history=[ControlPlaneSample.from_dict(sample)
                        for sample in data["cp_history"]]
            if data["cp_history"] is not None else None,
            fault_summary=data.get("fault_summary"),
            hybrid_summary=data.get("hybrid_summary"),
        )


def queue_factory_for(discipline: Discipline, scaled: ScaledScenario,
                      agents: Optional[list] = None,
                      record_history: bool = False,
                      cp_faults: Optional[ControlPlaneFaults] = None):
    """The bottleneck queue factory for a discipline."""
    buffer_mtus = scaled.spec.buffer_mtus
    if discipline is Discipline.FIFO:
        return lambda spec: DropTailQueue.from_mtu_count(buffer_mtus)
    if discipline is Discipline.FQ:
        # The paper raises FQ-CoDel's queue count to 2^32-1 (exact
        # per-flow queues) and we follow; the packet limit mirrors the
        # scenario's buffer.
        return fq_codel_factory(limit_packets=max(buffer_mtus, 64))
    if discipline is Discipline.CEBINAE:
        return cebinae_factory(params=scaled.cebinae,
                               buffer_mtus=buffer_mtus,
                               agents=agents,
                               record_history=record_history,
                               cp_faults=cp_faults)
    raise ValueError(f"unknown discipline {discipline}")


#: Recognised simulation backends (see DESIGN.md section 14).
BACKENDS = ("packet", "hybrid")


@dataclass
class _Harness:
    """One built-and-wired scenario, ready to run.

    Groups everything :func:`run_scenario` constructs before the event
    loop starts, so the packet and hybrid paths share one build and
    one result-collection routine.
    """

    sim: Simulator
    dumbbell: Dumbbell
    monitor: FlowMonitor
    flows: List[TcpFlow]
    agents: List[CebinaeControlPlane]
    schedule: Optional[FaultSchedule]
    duration_ns: int
    watchdog: Optional[WallClockWatchdog]
    max_events: Optional[int]

    def partial_snapshot(self) -> Dict[str, Any]:
        """What the run had achieved when a guard stopped it."""
        return {
            "events": self.sim.processed_events,
            "sim_time_ns": self.sim.now_ns,
            "duration_ns": self.duration_ns,
            "delivered_bytes": self.delivered_bytes(),
        }

    def delivered_bytes(self) -> List[int]:
        records = self.monitor.records
        return [records[flow.flow_id].delivered_bytes
                if flow.flow_id in records else 0
                for flow in self.flows]

    def run_until(self, until_ns: int) -> None:
        """Advance the packet engine, honouring the run's guards.

        ``max_events`` is a whole-run budget: segmented (hybrid) runs
        draw each segment from what the previous segments left over.
        """
        budget = self.max_events
        if budget is not None:
            budget -= self.sim.processed_events
            if budget <= 0:
                raise RunAborted(
                    f"exceeded max_events={self.max_events}",
                    partial=self.partial_snapshot())
        try:
            self.sim.run(until_ns=until_ns, max_events=budget,
                         watchdog=self.watchdog)
        except SimulationError as exc:
            # The event-budget guard; rewrap with the partial payload
            # so the executor records progress alongside the failure.
            raise RunAborted(str(exc),
                             partial=self.partial_snapshot()) from exc


def _build_harness(scaled: ScaledScenario, discipline: Discipline,
                   record_history: bool, seed: int,
                   faults: Optional[FaultSpec],
                   wall_limit_s: Optional[float],
                   max_events: Optional[int]) -> _Harness:
    """Build the topology, flows, faults, and guards for one run."""
    spec = scaled.spec
    plans = spec.flow_plans()
    agents: List[CebinaeControlPlane] = []
    schedule: Optional[FaultSchedule] = None
    cp_faults: Optional[ControlPlaneFaults] = None
    sim = Simulator()
    trace_bus = obs_bus.current()
    if trace_bus is not None:
        # Clockless producers (queue discs) stamp records through the
        # bus; bind before the topology is built so emitters resolve.
        trace_bus.set_clock(sim)
    if faults is not None and faults.enabled:
        schedule = FaultSchedule(faults, sim)
        cp_faults = schedule.control_plane_faults()
    factory = queue_factory_for(discipline, scaled, agents=agents,
                                record_history=record_history,
                                cp_faults=cp_faults)
    dumbbell = build_dumbbell(
        rtts_ns=[seconds(plan.rtt_s) for plan in plans],
        bottleneck_rate_bps=spec.rate_bps,
        bottleneck_queue=factory,
        sim=sim,
        jitter_seed=seed)
    monitor = FlowMonitor(sim)
    flows: List[TcpFlow] = []
    for plan in plans:
        flows.append(connect_flow(
            dumbbell.senders[plan.index], dumbbell.receivers[plan.index],
            plan.cca, monitor=monitor, src_port=10_000 + plan.index,
            start_time_ns=seconds(plan.start_time_s)))
    duration_ns = seconds(spec.duration_s)
    if schedule is not None:
        schedule.install(dumbbell.network.links,
                         list(dumbbell.network.nodes.values()),
                         duration_ns)
    harness = _Harness(sim=sim, dumbbell=dumbbell, monitor=monitor,
                       flows=flows, agents=agents, schedule=schedule,
                       duration_ns=duration_ns, watchdog=None,
                       max_events=max_events)
    if wall_limit_s is not None:
        harness.watchdog = WallClockWatchdog(
            wall_limit_s, partial=harness.partial_snapshot)
    return harness


def _collect_result(harness: _Harness, scaled: ScaledScenario,
                    discipline: Discipline, collect_series: bool,
                    record_history: bool,
                    extra_wire_bytes: int = 0) -> ScenarioResult:
    """Read the metrics the paper reports out of a finished harness.

    ``extra_wire_bytes`` accounts for bottleneck wire volume the fluid
    phase synthesised without moving packets; the packet path passes 0
    and the arithmetic stays bit-for-bit what it always was.
    """
    spec = scaled.spec
    plans = spec.flow_plans()
    sim, monitor, flows = harness.sim, harness.monitor, harness.flows
    dumbbell, duration_ns = harness.dumbbell, harness.duration_ns
    agents, schedule = harness.agents, harness.schedule
    goodputs = [monitor.goodputs_bps(duration_ns)[flow.flow_id]
                for flow in flows]
    series = None
    if collect_series:
        series = [monitor.goodput_series_bps(flow.flow_id, duration_ns)
                  for flow in flows]
    queue = dumbbell.bottleneck.queue
    result = ScenarioResult(
        name=spec.name,
        discipline=discipline,
        duration_s=spec.duration_s,
        sim_rate_bps=spec.rate_bps,
        rate_scale=scaled.rate_scale,
        flow_scale=scaled.flow_scale,
        cca_names=[plan.cca for plan in plans],
        goodputs_bps=goodputs,
        throughput_bps=(dumbbell.bottleneck.tx_bytes + extra_wire_bytes)
        * 8 * SECOND / duration_ns,
        events=sim.processed_events,
        lbf_drops=getattr(queue, "lbf_drops", 0),
        lbf_delays=getattr(queue, "lbf_delays", 0),
        buffer_drops=getattr(queue, "buffer_drops",
                             queue.dropped_packets),
        goodput_series_bps=series,
        start_times_s=[plan.start_time_s for plan in plans]
        if spec.start_times_s is not None else None,
        cp_history=agents[0].history if agents and record_history
        else None,
    )
    if schedule is not None:
        summary = schedule.summary()
        if agents:
            # Fold the agents' degradation counters into the account
            # (the oracle counts draws; the agents count consequences).
            cp: Dict[str, Any] = dict(summary.get("control_plane", {}))
            cp["rounds"] = sum(agent.round_counter for agent in agents)
            cp["deadline_misses"] = sum(agent.deadline_misses
                                        for agent in agents)
            cp["dropped_reconfigs"] = sum(agent.dropped_reconfigs
                                          for agent in agents)
            cp["failopen_rounds"] = sum(agent.failopen_rounds
                                        for agent in agents)
            cp["failopen_enqueues"] = getattr(
                dumbbell.bottleneck.queue, "failopen_enqueues", 0)
            summary["control_plane"] = cp
        result.fault_summary = summary
    registry = obs_metrics.current()
    if registry is not None:
        obs_metrics.record_scenario(registry, result)
    return result


def run_scenario(scaled: ScaledScenario, discipline: Discipline,
                 collect_series: bool = False,
                 record_history: bool = False,
                 seed: int = 0,
                 faults: Optional[FaultSpec] = None,
                 wall_limit_s: Optional[float] = None,
                 max_events: Optional[int] = None,
                 backend: str = "packet",
                 hybrid_policy: Optional[HybridPolicy] = None
                 ) -> ScenarioResult:
    """Execute one scenario under one discipline.

    ``seed`` varies the hosts' timing-noise RNG so replications of the
    same scenario are statistically independent yet reproducible.
    ``faults`` injects a deterministic fault schedule (the no-fault path
    is untouched: no extra events, RNG draws, or JSON keys).
    ``wall_limit_s``/``max_events`` bound the run; a breach raises
    :class:`~repro.faults.watchdog.RunAborted` carrying a partial-result
    snapshot.

    ``backend`` selects the simulation backend: ``"packet"`` (the
    default; full packet granularity end to end, byte-identical to
    every release since the engine landed) or ``"hybrid"`` (packet
    warmup, then fluid-rate advancement once the run is measurably
    steady — see :mod:`repro.netsim.fluid` and DESIGN.md section 14).
    ``hybrid_policy`` tunes the handoff rules; None uses the
    conservative defaults.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from "
                         f"{BACKENDS}")
    harness = _build_harness(scaled, discipline, record_history, seed,
                             faults, wall_limit_s, max_events)
    # The run span opens after harness construction (the bus clock is
    # bound to the simulator there) and closes around the whole
    # execution, whichever backend runs it.  Zero-cost off: open_span
    # returns None when no bus carries the span topic.
    run_span = obs_spans.open_span("run", scaled.spec.name)
    try:
        if backend == "hybrid":
            result = _run_hybrid(harness, scaled, discipline,
                                 collect_series, record_history, faults,
                                 hybrid_policy or HybridPolicy())
        else:
            with obs_spans.span("phase", "drain") as phase:
                harness.run_until(harness.duration_ns)
                if phase is not None:
                    phase.count = harness.sim.processed_events
            result = _collect_result(harness, scaled, discipline,
                                     collect_series, record_history)
    except BaseException:
        if run_span is not None:
            obs_spans.close_span(run_span, status="error")
        raise
    if run_span is not None:
        run_span.count = harness.sim.processed_events
        obs_spans.close_span(run_span)
    return result


def _run_hybrid(harness: _Harness, scaled: ScaledScenario,
                discipline: Discipline, collect_series: bool,
                record_history: bool, faults: Optional[FaultSpec],
                policy: HybridPolicy) -> ScenarioResult:
    """The hybrid orchestration: warmup, stability probe, fluid phase.

    Epoch boundaries the fluid phase honours by construction: flow
    arrivals (the handoff waits for the last staggered start plus a
    settling window), link fault windows (fault runs never demote),
    and LBF rotations / CCA transients (the Cebinae schedule advances
    one recomputation window per epoch; CCA dynamics are only modelled
    while demonstrably quiescent — that is what the stability probe
    checks).
    """
    spec = scaled.spec
    duration_ns = harness.duration_ns
    last_start_s = (max(spec.start_times_s)
                    if spec.start_times_s is not None else 0.0)

    def finish_packet(reason: str, extensions: int = 0,
                      divergence: Optional[float] = None
                      ) -> ScenarioResult:
        with obs_spans.span("phase", "drain") as phase:
            harness.run_until(duration_ns)
            if phase is not None:
                phase.count = harness.sim.processed_events
        report = FluidPhaseReport(
            mode="packet", reason=reason, extensions=extensions,
            divergence=divergence,
            packet_events=harness.sim.processed_events)
        return _finalise(report)

    def _finalise(report: FluidPhaseReport,
                  extra_wire_bytes: int = 0) -> ScenarioResult:
        result = _collect_result(harness, scaled, discipline,
                                 collect_series, record_history,
                                 extra_wire_bytes=extra_wire_bytes)
        result.hybrid_summary = report.to_dict()
        registry = obs_metrics.current()
        if registry is not None:
            obs_metrics.record_hybrid(registry, report,
                                      scenario=spec.name,
                                      discipline=discipline.value)
        return result

    if faults is not None and faults.enabled:
        # Fault windows are epoch boundaries the fluid model does not
        # cross: degraded topologies re-converge at packet granularity.
        return finish_packet(REASON_FAULTS)
    if not policy.fluid_viable(spec.duration_s, spec.max_rtt_s,
                               last_start_s):
        # Short, transient-dominated runs (every tier-1 figure-class
        # scenario) stay pure packet: same events, same bytes.
        return finish_packet(REASON_SHORT_RUN)

    half_ns = seconds(policy.measure_s) // 2
    handoff_ns = seconds(policy.handoff_s(spec.max_rtt_s, last_start_s))
    extensions = 0
    with obs_spans.span("phase", "warmup") as warm:
        harness.run_until(handoff_ns - 2 * half_ns)
        if warm is not None:
            warm.count = harness.sim.processed_events
    first_bytes = harness.delivered_bytes()
    wire_start = harness.dumbbell.bottleneck.tx_bytes
    while True:
        # Each probe iteration is its own phase span; the break/return
        # decisions stay outside it so a drain phase never nests under
        # a probe.
        with obs_spans.span("phase", "stability-probe") as probe:
            harness.run_until(harness.sim.now_ns + half_ns)
            mid_bytes = harness.delivered_bytes()
            harness.run_until(harness.sim.now_ns + half_ns)
            tail_bytes = harness.delivered_bytes()
            early = measured_rates_bps(first_bytes, mid_bytes, half_ns)
            late = measured_rates_bps(mid_bytes, tail_bytes, half_ns)
            divergence = rate_divergence(early, late,
                                         distributional=True)
            if probe is not None:
                probe.count = harness.sim.processed_events
        if divergence <= policy.stability_tol:
            break
        still_viable = (duration_ns - (harness.sim.now_ns + 2 * half_ns)
                        >= policy.min_fluid_fraction * duration_ns)
        if extensions >= policy.max_extensions or not still_viable:
            # Promotion: the run never went steady inside its warmup
            # budget, so it keeps full packet fidelity end to end.
            return finish_packet(REASON_UNSTABLE, extensions=extensions,
                                 divergence=divergence)
        extensions += 1
        first_bytes = tail_bytes
        wire_start = harness.dumbbell.bottleneck.tx_bytes

    # Handoff.  Anchor the fluid rates at the last half-window's
    # measured goodputs and synthesise the rest of the run.
    handoff_at_ns = harness.sim.now_ns
    fluid_ns = duration_ns - handoff_at_ns
    # Anchor on the full measurement window (twice the averaging of a
    # half-window).  Under FIFO the anchors are additionally pooled
    # within (CCA, RTT, operating-point) classes: drop-tail mixes
    # exchangeable flows' sawtooth phases, so their long-run averages
    # coincide and a per-flow snapshot would freeze pure phase
    # dispersion — but only flows at a comparable operating point are
    # exchangeable, so the pool key includes a coarse rate bucket
    # (see rate_pool_key) and a starved flow never averages with its
    # healthy peers.  Cebinae anchors stay per-flow — the LBF
    # differentiates flows by their current rate, so within-class
    # dispersion is the very signal the modelled taxation acts on.
    # (FQ's schedule only uses the aggregate, which pooling conserves.)
    anchor = measured_rates_bps(first_bytes, tail_bytes, 2 * half_ns)
    if discipline is not Discipline.CEBINAE:
        plans = spec.flow_plans()
        anchor = pool_rates(
            anchor,
            [(plan.cca, plan.rtt_s, rate_pool_key(rate))
             for plan, rate in zip(plans, anchor)])
    with obs_spans.span("phase", "fluid-epoch") as fluid:
        epochs = equilibrium_schedule(
            discipline.value, anchor, fluid_ns,
            cebinae=scaled.cebinae if discipline is Discipline.CEBINAE
            else None)
        payload_bytes = advance_fluid(
            harness.monitor, [flow.flow_id for flow in harness.flows],
            epochs, handoff_at_ns)
        overhead = wire_overhead_ratio(
            harness.dumbbell.bottleneck.tx_bytes - wire_start,
            sum(tail_bytes) - sum(first_bytes))
        if fluid is not None:
            fluid.count = len(epochs)
    report = FluidPhaseReport(
        mode="fluid",
        handoff_s=handoff_at_ns / SECOND,
        fluid_s=fluid_ns / SECOND,
        epochs=len(epochs),
        extensions=extensions,
        divergence=divergence,
        packet_events=harness.sim.processed_events)
    return _finalise(report,
                     extra_wire_bytes=int(round(payload_bytes
                                                * overhead)))


def run_comparison(scaled: ScaledScenario,
                   disciplines: Sequence[Discipline] = (
                       Discipline.FIFO, Discipline.FQ,
                       Discipline.CEBINAE),
                   collect_series: bool = False,
                   record_history: bool = False,
                   workers: int = 1,
                   cache_dir=None,
                   use_cache: bool = True
                   ) -> Dict[Discipline, ScenarioResult]:
    """Run a scenario under each requested discipline.

    With ``workers > 1`` or a ``cache_dir``, the disciplines run
    through :mod:`repro.experiments.parallel` (one pool slot each);
    results are identical to the serial path either way.
    """
    if workers <= 1 and cache_dir is None:
        return {discipline: run_scenario(scaled, discipline,
                                         collect_series=collect_series,
                                         record_history=record_history)
                for discipline in disciplines}
    from .parallel import RunSpec, require, run_many
    specs = [RunSpec(scaled=scaled, discipline=discipline,
                     collect_series=collect_series,
                     record_history=record_history)
             for discipline in disciplines]
    results = run_many(specs, workers=workers, cache_dir=cache_dir,
                       use_cache=use_cache)
    return {discipline: require(result)
            for discipline, result in zip(disciplines, results)}
