"""Experiment harness: scenario specs, the scaling policy, runners for
every table and figure of the paper's evaluation, and report
formatting."""

from .parallel import (FailedRun, ResultCache, RunSpec, Task, require,
                       run_many, run_tasks)
from .runner import (Discipline, ScenarioResult, run_comparison,
                     run_scenario)
from .scenarios import (DEFAULT_POLICY, FlowPlan, ScaledScenario,
                        ScalePolicy, ScenarioSpec)
from .table2 import (TABLE2_ROWS, PaperNumbers, Table2Comparison,
                     Table2Row, run_table2, run_table2_row)

__all__ = [
    "Discipline", "ScenarioResult", "run_scenario", "run_comparison",
    "ScenarioSpec", "ScaledScenario", "ScalePolicy", "DEFAULT_POLICY",
    "FlowPlan",
    "RunSpec", "FailedRun", "ResultCache", "Task", "require",
    "run_many", "run_tasks",
    "TABLE2_ROWS", "Table2Row", "Table2Comparison", "PaperNumbers",
    "run_table2", "run_table2_row",
]
