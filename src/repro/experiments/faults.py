"""Fault-recovery experiment: fairness augmentation under injected
faults.

The paper's evaluation assumes a healthy network; this experiment asks
the robustness question the deployment story depends on: *when the
control plane misses its deadline ``L`` and the bottleneck link
misbehaves, how quickly does Jain's index re-converge once the faults
clear?*

The demo scenario is a mixed NewReno/Vegas dumbbell (the CCA mix where
Cebinae's augmentation matters most).  Mid-run the fault schedule opens
a control-plane outage — every reconfiguration in the window misses
``L``, so the switch fails open to pass-through FIFO — and adds
stochastic loss on the bottleneck wire.  :func:`fault_recovery_sweep`
scales this schedule by an intensity factor (0 is a true no-fault
baseline) and reports, per intensity, the degradation counters and the
time for the per-second JFI series to return to its pre-fault level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from ..faults.spec import FaultSpec
from ..netsim.engine import seconds
from .parallel import FailedRun, RunSpec, run_many
from .runner import Discipline, ScenarioResult
from .scenarios import DEFAULT_POLICY, ScaledScenario, ScenarioSpec

#: The fault window, as fractions of the run: faults start at 30% of
#: the run and clear at 60%, leaving 40% of the run for re-convergence.
FAULT_START_FRACTION = 0.3
FAULT_END_FRACTION = 0.6


def demo_scenario(duration_s: float = 40.0) -> ScaledScenario:
    """The demo dumbbell: 2 NewReno vs 2 Vegas, 30 ms RTT."""
    spec = ScenarioSpec(
        name="fault_demo",
        rate_bps=100e6,
        rtts_ms=(30.0,),
        buffer_mtus=100,
        cca_mix=(("newreno", 2), ("vegas", 2)),
        duration_s=duration_s,
    )
    return DEFAULT_POLICY.apply(spec)


def demo_fault_spec(duration_s: float = 40.0, seed: int = 1) -> FaultSpec:
    """The demo schedule: a CP outage plus bottleneck loss mid-run."""
    start_ns = seconds(duration_s * FAULT_START_FRACTION)
    end_ns = seconds(duration_s * FAULT_END_FRACTION)
    return FaultSpec(
        seed=seed,
        cp_outage_windows=((start_ns, end_ns),),
        loss_rate=0.002,
        link_pattern="L->R",
        start_ns=start_ns,
        end_ns=end_ns,
    )


def jfi_recovery_time_s(jfi_series: Sequence[float],
                        fault_end_s: float,
                        baseline_jfi: float,
                        tolerance: float = 0.05,
                        sustain_s: int = 3) -> Optional[float]:
    """Seconds after the faults clear until JFI is back, or None.

    "Back" means within ``tolerance`` of ``baseline_jfi`` for
    ``sustain_s`` consecutive one-second bins — a single lucky second
    during loss recovery must not count as convergence.  Returns the
    delay from ``fault_end_s`` to the start of the first sustained
    window, 0.0 if fairness never left the band, or None if the run
    ended before a sustained return.
    """
    target = baseline_jfi - tolerance
    first_bin = int(fault_end_s)
    run = 0
    for index in range(first_bin, len(jfi_series)):
        if jfi_series[index] >= target:
            run += 1
            if run >= sustain_s:
                start_s = float(index - sustain_s + 1)
                return max(0.0, start_s - fault_end_s)
        else:
            run = 0
    return None


@dataclass
class FaultSweepPoint:
    """One intensity of the sweep, with its recovery diagnostics."""

    intensity: float
    spec: FaultSpec
    result: Union[ScenarioResult, FailedRun]
    fault_start_s: float
    fault_end_s: float
    recovery_s: Optional[float] = None

    @property
    def failed(self) -> bool:
        return isinstance(self.result, FailedRun)


def _analyse(point: FaultSweepPoint) -> None:
    """Fill ``recovery_s`` from the run's per-second JFI series."""
    if isinstance(point.result, FailedRun):
        return
    series = point.result.jfi_series()
    pre_fault = series[:int(point.fault_start_s)]
    if not pre_fault:
        return
    baseline = sum(pre_fault) / len(pre_fault)
    point.recovery_s = jfi_recovery_time_s(series, point.fault_end_s,
                                           baseline)


def fault_recovery_sweep(intensities: Sequence[float] = (0.0, 0.5, 1.0,
                                                         2.0),
                         duration_s: float = 40.0,
                         base: Optional[FaultSpec] = None,
                         scaled: Optional[ScaledScenario] = None,
                         workers: int = 1,
                         cache_dir: Optional[str] = None,
                         use_cache: bool = True,
                         wall_limit_s: Optional[float] = None
                         ) -> List[FaultSweepPoint]:
    """Sweep fault intensity against Jain-index recovery time.

    Every point runs the same scenario under Cebinae with the demo
    fault schedule (or ``base``) scaled by its intensity; intensity 0
    is the fault-free control.  Points fan out over the parallel
    executor, so they cache and replay like any other sweep.
    """
    if scaled is None:
        scaled = demo_scenario(duration_s)
    if base is None:
        base = demo_fault_spec(duration_s)
    spec_for = {intensity: base.scaled(intensity)
                for intensity in intensities}
    run_specs = [RunSpec(scaled=scaled, discipline=Discipline.CEBINAE,
                         collect_series=True, record_history=True,
                         faults=spec_for[intensity],
                         wall_limit_s=wall_limit_s)
                 for intensity in intensities]
    results = run_many(run_specs, workers=workers, cache_dir=cache_dir,
                       use_cache=use_cache, timeout_s=wall_limit_s)
    points: List[FaultSweepPoint] = []
    for intensity, result in zip(intensities, results):
        point = FaultSweepPoint(
            intensity=intensity,
            spec=spec_for[intensity],
            result=result,
            fault_start_s=duration_s * FAULT_START_FRACTION,
            fault_end_s=duration_s * FAULT_END_FRACTION)
        _analyse(point)
        points.append(point)
    return points
