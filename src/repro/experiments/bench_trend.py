"""Benchmark trend folding: many ``BENCH_*.json`` files, one table.

This module is the canonical home of the normalised-ratio logic that
``tools/check_bench_regression.py`` gates CI with (that script now
imports from here), plus the trend layer above it: fold several
benchmark artifacts — the hotpath and hybrid pytest-benchmark runs,
the obs-overhead smoke document — into one per-metric table with
regression flagging, rendered as JSON (``BENCH_trend.json``) and
markdown (``BENCH_trend.md``) for the CI artifact upload.

Two artifact shapes are understood:

* pytest-benchmark output (a ``benchmarks`` list) — each entry's
  ``stats.median`` becomes a timing row, and numeric ``extra_info``
  entries become auxiliary metrics named ``<bench>.<key>``;
* baseline documents written by ``write_baseline`` (a ``medians``
  mapping under :data:`BASELINE_SCHEMA_VERSION`).

Benchmarks without ``stats`` (the obs-overhead smoke emits
``extra_info`` only) contribute metrics but no timing row, and never
fail the load.

Normalisation (unchanged from the CI gate): medians are divided by the
geometric mean over the benchmarks common to current and baseline, so
a machine-speed factor cancels and only *relative* movement — one code
path slowing against its peers — registers as a regression.

Everything here is fully typed: the regression gate runs under
``mypy --strict`` and calls straight into this module.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Baseline document version; bump on layout changes.
BASELINE_SCHEMA_VERSION = 1

#: Trend document version; bump on layout changes.
TREND_SCHEMA_VERSION = 1


def load_medians(path: str) -> Dict[str, float]:
    """Per-benchmark median seconds from either file format.

    Accepts a raw pytest-benchmark JSON document (``benchmarks`` list)
    or a baseline written by ``--update`` (``medians`` mapping).
    """
    document = load_bench_document(path)
    if not document["medians"]:
        raise ValueError(f"{path}: no benchmarks found")
    return dict(document["medians"])


def load_bench_document(path: str) -> Dict[str, Dict[str, float]]:
    """``{"medians": ..., "metrics": ...}`` from one benchmark file.

    The tolerant reader behind :func:`load_medians` and the trend
    table: stats-less benchmarks yield no median (instead of raising),
    and numeric non-bool ``extra_info`` values surface as metrics
    named ``<bench>.<key>``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    medians: Dict[str, float] = {}
    metrics: Dict[str, float] = {}
    if "medians" in data:
        version = data.get("schema_version")
        if version != BASELINE_SCHEMA_VERSION:
            raise ValueError(
                f"{path}: baseline schema_version {version!r} is not "
                f"{BASELINE_SCHEMA_VERSION}")
        for name, value in data["medians"].items():
            medians[str(name)] = float(value)
        return {"medians": medians, "metrics": metrics}
    for bench in data.get("benchmarks", ()):
        name = str(bench.get("name", "?"))
        stats = bench.get("stats")
        if isinstance(stats, dict) and "median" in stats:
            medians[name] = float(stats["median"])
        extra = bench.get("extra_info")
        if isinstance(extra, dict):
            for key in sorted(extra):
                value = extra[key]
                if isinstance(value, bool) or \
                        not isinstance(value, (int, float)):
                    continue
                metrics[f"{name}.{key}"] = float(value)
    return {"medians": medians, "metrics": metrics}


def write_baseline(path: str, medians: Dict[str, float]) -> None:
    document = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "note": "normalised-ratio baseline for "
                "tools/check_bench_regression.py; regenerate with "
                "--update after intentional perf changes",
        "medians": {name: medians[name] for name in sorted(medians)},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def normalised(medians: Dict[str, float],
               names: List[str]) -> Dict[str, float]:
    """Each median divided by the geomean over ``names``."""
    logs = [math.log(medians[name]) for name in names
            if medians[name] > 0]
    if not logs:
        raise ValueError("no positive medians to normalise against")
    geomean = math.exp(sum(logs) / len(logs))
    return {name: medians[name] / geomean for name in names}


def compare(current: Dict[str, float], baseline: Dict[str, float],
            threshold: float) -> List[str]:
    """Human-readable failures (empty = gate passes)."""
    common = sorted(set(current) & set(baseline))
    if not common:
        return ["no benchmarks in common between current run and "
                "baseline"]
    current_norm = normalised(current, common)
    baseline_norm = normalised(baseline, common)
    failures: List[str] = []
    for name in common:
        ratio = current_norm[name] / baseline_norm[name]
        marker = "REGRESSION" if ratio > 1.0 + threshold else "ok"
        print(f"  {name:<50} x{ratio:5.2f}  {marker}")
        if ratio > 1.0 + threshold:
            failures.append(
                f"{name}: normalised cost x{ratio:.2f} exceeds "
                f"+{threshold:.0%} threshold")
    only_baseline = sorted(set(baseline) - set(current))
    if only_baseline:
        print(f"  (baseline-only, skipped: {', '.join(only_baseline)})")
    only_current = sorted(set(current) - set(baseline))
    if only_current:
        print(f"  (new, unbaselined: {', '.join(only_current)})")
    return failures


# -- the trend table ----------------------------------------------------

def _ratios(medians: Dict[str, float],
            baseline: Optional[Dict[str, float]],
            threshold: float) -> Dict[str, Tuple[Optional[float], str]]:
    """name → (normalised ratio vs baseline, flag) for timing rows."""
    out: Dict[str, Tuple[Optional[float], str]] = {
        name: (None, "unbaselined") for name in medians}
    if baseline is None:
        return out
    common = sorted(set(medians) & set(baseline))
    if not common:
        return out
    current_norm = normalised(medians, common)
    baseline_norm = normalised(baseline, common)
    for name in common:
        ratio = current_norm[name] / baseline_norm[name]
        flag = "REGRESSION" if ratio > 1.0 + threshold else "ok"
        out[name] = (ratio, flag)
    return out


def build_trend(paths: Sequence[str],
                baseline_path: Optional[str] = None,
                threshold: float = 0.10) -> Dict[str, Any]:
    """Fold benchmark artifacts into the one trend document.

    Timing rows from every artifact are pooled (names are unique per
    suite by construction) and flagged against ``baseline_path`` with
    the same normalised-ratio rule as the CI gate; auxiliary metrics
    ride along unflagged.  Missing artifact files are recorded under
    ``missing`` rather than raising — a partial CI run still gets a
    report, with the gap named instead of silently absent.
    """
    medians: Dict[str, float] = {}
    source_of: Dict[str, str] = {}
    metrics: List[Dict[str, Any]] = []
    sources: List[str] = []
    missing: List[str] = []
    for path in paths:
        base = os.path.basename(path)
        try:
            document = load_bench_document(path)
        except (OSError, ValueError):
            missing.append(base)
            continue
        sources.append(base)
        for name, value in document["medians"].items():
            medians[name] = value
            source_of[name] = base
        for name in sorted(document["metrics"]):
            metrics.append({"name": name,
                            "value": document["metrics"][name],
                            "source": base})
    baseline: Optional[Dict[str, float]] = None
    if baseline_path is not None:
        try:
            baseline = load_medians(baseline_path)
        except (OSError, ValueError):
            missing.append(os.path.basename(baseline_path))
    flags = _ratios(medians, baseline, threshold)
    rows: List[Dict[str, Any]] = []
    for name in sorted(medians):
        ratio, flag = flags[name]
        rows.append({
            "name": name,
            "median_s": medians[name],
            "source": source_of[name],
            "normalised_ratio":
                None if ratio is None else round(ratio, 4),
            "flag": flag,
        })
    return {
        "trend_version": TREND_SCHEMA_VERSION,
        "threshold": threshold,
        "sources": sources,
        "missing": missing,
        "rows": rows,
        "metrics": metrics,
        "regressions": [row["name"] for row in rows
                        if row["flag"] == "REGRESSION"],
    }


def format_trend(document: Dict[str, Any]) -> str:
    """The markdown rendering of one trend document."""
    lines = ["# Benchmark trend", ""]
    lines.append("| benchmark | median (s) | vs baseline | flag |")
    lines.append("|---|---:|---:|---|")
    for row in document["rows"]:
        ratio = row["normalised_ratio"]
        rendered = "-" if ratio is None else f"x{ratio:.2f}"
        lines.append(f"| {row['name']} | {row['median_s']:.6f} "
                     f"| {rendered} | {row['flag']} |")
    if document["metrics"]:
        lines.extend(["", "| metric | value | source |", "|---|---:|---|"])
        for metric in document["metrics"]:
            lines.append(f"| {metric['name']} | {metric['value']:g} "
                         f"| {metric['source']} |")
    if document["missing"]:
        lines.extend(["", "Missing artifacts: "
                      + ", ".join(document["missing"])])
    if document["regressions"]:
        lines.extend(["", "**"
                      + f"{len(document['regressions'])} regression(s): "
                      + ", ".join(document["regressions"]) + "**"])
    return "\n".join(lines) + "\n"


def report_main(argv: Optional[List[str]] = None) -> int:
    """``cebinae-repro bench report`` / ``tools/bench_trend.py``."""
    parser = argparse.ArgumentParser(
        prog="cebinae-repro bench report",
        description="Fold BENCH_*.json artifacts into one per-metric "
                    "trend table with normalised-ratio regression "
                    "flagging.")
    parser.add_argument("artifacts", nargs="+",
                        help="benchmark JSON files (pytest-benchmark "
                             "output or baseline documents)")
    parser.add_argument("--baseline",
                        help="baseline to flag regressions against")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed normalised-cost growth "
                             "(default 0.10 = +10%%)")
    parser.add_argument("--out", help="write the JSON document here")
    parser.add_argument("--markdown",
                        help="write the markdown table here")
    parser.add_argument("--gate", action="store_true",
                        help="exit 1 on any flagged regression "
                             "(default: informational, exit 0)")
    args = parser.parse_args(argv)
    document = build_trend(args.artifacts, baseline_path=args.baseline,
                           threshold=args.threshold)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(format_trend(document))
    if not args.out and not args.markdown:
        print(format_trend(document), end="")
    else:
        print(f"bench trend: {len(document['rows'])} timing row(s), "
              f"{len(document['metrics'])} metric(s), "
              f"{len(document['regressions'])} regression(s)"
              + (f", missing: {', '.join(document['missing'])}"
                 if document["missing"] else ""))
    if args.gate and document["regressions"]:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Dispatcher for ``cebinae-repro bench <action>``."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if not arguments or arguments[0] != "report":
        print("usage: cebinae-repro bench report ARTIFACT [ARTIFACT...]"
              " [--baseline B] [--out J] [--markdown M] [--gate]",
              file=sys.stderr)
        return 2
    return report_main(arguments[1:])


__all__ = [
    "BASELINE_SCHEMA_VERSION", "TREND_SCHEMA_VERSION", "build_trend",
    "compare", "format_trend", "load_bench_document", "load_medians",
    "main", "normalised", "report_main", "write_baseline",
]
