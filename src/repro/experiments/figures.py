"""Per-figure experiment definitions (Figures 1, 7, 8, 9, 10, 11, 12).

Each ``figureN`` function builds the paper's scenario, runs it under
the relevant disciplines, and returns a small result object holding the
series/values the figure plots, plus the paper's headline numbers where
the text states them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.control_plane import cebinae_factory
from ..fairness.maxmin import FlowSpec, water_filling
from ..fairness.metrics import jain_fairness_index, normalized_jfi
from ..netsim.engine import SECOND, Simulator, seconds
from ..netsim.packet import MTU_BYTES
from ..netsim.queues import DropTailQueue
from ..netsim.topology import build_parking_lot
from ..netsim.tracing import FlowMonitor
from ..tcp.flows import connect_flow
from .parallel import RunSpec, require, run_many
from .runner import Discipline, ScenarioResult, run_comparison, \
    run_scenario
from .scenarios import DEFAULT_POLICY, ScalePolicy, ScenarioSpec


# --------------------------------------------------------------------------
# Figure 1: two NewReno flows with different RTTs, FIFO vs Cebinae.
# --------------------------------------------------------------------------

@dataclass
class Figure1Result:
    """Goodput time series per flow under FIFO and Cebinae."""

    fifo: ScenarioResult
    cebinae: ScenarioResult

    def series(self, discipline: Discipline) -> List[List[float]]:
        result = self.fifo if discipline is Discipline.FIFO \
            else self.cebinae
        return result.goodput_series_bps


def figure1(policy: ScalePolicy = DEFAULT_POLICY,
            duration_s: float = 50.0, workers: int = 1,
            cache_dir=None, use_cache: bool = True) -> Figure1Result:
    spec = ScenarioSpec(name="figure1", rate_bps=100e6,
                        rtts_ms=(20.4, 40.0), buffer_mtus=350,
                        cca_mix=(("newreno", 1), ("newreno", 1)),
                        duration_s=duration_s)
    scaled = policy.apply(spec)
    results = run_comparison(scaled,
                             disciplines=(Discipline.FIFO,
                                          Discipline.CEBINAE),
                             collect_series=True, record_history=True,
                             workers=workers, cache_dir=cache_dir,
                             use_cache=use_cache)
    return Figure1Result(fifo=results[Discipline.FIFO],
                         cebinae=results[Discipline.CEBINAE])


# --------------------------------------------------------------------------
# Figure 7: 16 Vegas vs 1 NewReno per-flow goodputs.
# Paper: FIFO JFI 0.093 (NewReno takes ~80%); Cebinae JFI 0.985.
# --------------------------------------------------------------------------

@dataclass
class BarFigureResult:
    """Per-flow goodputs under two disciplines (bar/CDF figures)."""

    fifo: ScenarioResult
    cebinae: ScenarioResult
    paper_jfi_fifo: float = 0.0
    paper_jfi_cebinae: float = 0.0

    def cdf_points(self, discipline: Discipline
                   ) -> List[Tuple[float, float]]:
        result = self.fifo if discipline is Discipline.FIFO \
            else self.cebinae
        ordered = sorted(result.goodputs_bps)
        count = len(ordered)
        return [(value, (index + 1) / count)
                for index, value in enumerate(ordered)]


def _two_way(spec: ScenarioSpec, policy: ScalePolicy,
             paper_fifo: float, paper_ceb: float, workers: int = 1,
             cache_dir=None, use_cache: bool = True) -> BarFigureResult:
    scaled = policy.apply(spec)
    results = run_comparison(scaled,
                             disciplines=(Discipline.FIFO,
                                          Discipline.CEBINAE),
                             workers=workers, cache_dir=cache_dir,
                             use_cache=use_cache)
    return BarFigureResult(fifo=results[Discipline.FIFO],
                           cebinae=results[Discipline.CEBINAE],
                           paper_jfi_fifo=paper_fifo,
                           paper_jfi_cebinae=paper_ceb)


def figure7(policy: ScalePolicy = DEFAULT_POLICY,
            duration_s: float = 60.0, workers: int = 1,
            cache_dir=None, use_cache: bool = True) -> BarFigureResult:
    spec = ScenarioSpec(name="figure7", rate_bps=100e6, rtts_ms=(100,),
                        buffer_mtus=850,
                        cca_mix=(("vegas", 16), ("newreno", 1)),
                        duration_s=duration_s)
    return _two_way(spec, policy, paper_fifo=0.093, paper_ceb=0.985,
                    workers=workers, cache_dir=cache_dir,
                    use_cache=use_cache)


def figure8a(policy: ScalePolicy = DEFAULT_POLICY,
             duration_s: float = 60.0, workers: int = 1,
             cache_dir=None, use_cache: bool = True) -> BarFigureResult:
    """128 NewReno vs 2 BBR over 1 Gbps (paper JFI 0.774 -> 0.936)."""
    spec = ScenarioSpec(name="figure8a", rate_bps=1000e6,
                        rtts_ms=(100,), buffer_mtus=8350,
                        cca_mix=(("newreno", 128), ("bbr", 2)),
                        duration_s=duration_s)
    return _two_way(spec, policy, paper_fifo=0.774, paper_ceb=0.936,
                    workers=workers, cache_dir=cache_dir,
                    use_cache=use_cache)


def figure8b(policy: ScalePolicy = DEFAULT_POLICY,
             duration_s: float = 60.0, workers: int = 1,
             cache_dir=None, use_cache: bool = True) -> BarFigureResult:
    """128 NewReno vs 4 Vegas (starvation; paper JFI 0.956 -> 0.964)."""
    spec = ScenarioSpec(name="figure8b", rate_bps=1000e6,
                        rtts_ms=(64, 100), buffer_mtus=8500,
                        cca_mix=(("newreno", 128), ("vegas", 4)),
                        duration_s=duration_s)
    return _two_way(spec, policy, paper_fifo=0.956, paper_ceb=0.964,
                    workers=workers, cache_dir=cache_dir,
                    use_cache=use_cache)


# --------------------------------------------------------------------------
# Figure 9: RTT asymmetry sweep for Cubic over a 400 Mbps link.
# --------------------------------------------------------------------------

@dataclass
class Figure9Point:
    rtt_ms: float
    results: Dict[Discipline, ScenarioResult]

    def jfi(self, discipline: Discipline) -> float:
        return self.results[discipline].jfi

    def goodput_bps(self, discipline: Discipline) -> float:
        return self.results[discipline].total_goodput_bps


def figure9(rtts_ms: Sequence[float] = (16, 32, 64, 128, 256),
            policy: ScalePolicy = DEFAULT_POLICY,
            duration_s: float = 60.0, workers: int = 1,
            cache_dir=None, use_cache: bool = True
            ) -> List[Figure9Point]:
    """4 Cubic at 256 ms vs 4 Cubic at each swept RTT, 3 MB buffer.

    The full (RTT x discipline) grid fans out over one pool so the
    sweep's wall clock is bounded by the slowest single point.
    """
    disciplines = (Discipline.FIFO, Discipline.FQ, Discipline.CEBINAE)
    specs = []
    for rtt in rtts_ms:
        spec = ScenarioSpec(name=f"figure9_rtt{int(rtt)}",
                            rate_bps=400e6, rtts_ms=(256.0, float(rtt)),
                            buffer_mtus=2000,
                            cca_mix=(("cubic", 4), ("cubic", 4)),
                            duration_s=duration_s)
        scaled = policy.apply(spec)
        specs.extend(RunSpec(scaled=scaled, discipline=discipline)
                     for discipline in disciplines)
    results = run_many(specs, workers=workers, cache_dir=cache_dir,
                       use_cache=use_cache)
    points = []
    for index, rtt in enumerate(rtts_ms):
        chunk = results[index * len(disciplines):
                        (index + 1) * len(disciplines)]
        points.append(Figure9Point(
            rtt_ms=float(rtt),
            results={discipline: require(result)
                     for discipline, result in zip(disciplines, chunk)}))
    return points


# --------------------------------------------------------------------------
# Figure 10: JFI time series under flow churn.
# --------------------------------------------------------------------------

@dataclass
class Figure10Result:
    results: Dict[Discipline, ScenarioResult]

    def jfi_series(self, discipline: Discipline) -> List[float]:
        return self.results[discipline].jfi_series()


def figure10(policy: ScalePolicy = DEFAULT_POLICY,
             duration_s: float = 50.0,
             num_vegas: int = 32, workers: int = 1,
             cache_dir=None, use_cache: bool = True) -> Figure10Result:
    """Vegas flows reach steady state; NewReno joins at ~5 s and Cubic
    at ~25 s, degrading fairness that Cebinae restores."""
    starts = tuple([0.0] * num_vegas + [5.0, 25.0])
    spec = ScenarioSpec(name="figure10", rate_bps=100e6, rtts_ms=(50,),
                        buffer_mtus=420,
                        cca_mix=(("vegas", num_vegas), ("newreno", 1),
                                 ("cubic", 1)),
                        duration_s=duration_s, start_times_s=starts)
    scaled = policy.apply(spec)
    return Figure10Result(results=run_comparison(
        scaled, collect_series=True, workers=workers,
        cache_dir=cache_dir, use_cache=use_cache))


# --------------------------------------------------------------------------
# Figure 11: the multi-bottleneck 'Parking Lot'.
# --------------------------------------------------------------------------

@dataclass
class Figure11Result:
    """Per-flow goodputs vs the ideal max-min allocation."""

    discipline: Discipline
    flow_labels: List[str]
    goodputs_bps: List[float]
    ideal_bps: List[float]
    duration_s: float

    @property
    def normalized_jfi(self) -> float:
        rates = {label: rate for label, rate
                 in zip(self.flow_labels, self.goodputs_bps)}
        ideal = {label: rate for label, rate
                 in zip(self.flow_labels, self.ideal_bps)}
        return normalized_jfi(rates, ideal)


#: Paper numbers for Figure 11: JFI 0.852 (FIFO) -> 0.978 (Cebinae).
FIGURE11_PAPER_JFI = {Discipline.FIFO: 0.852,
                      Discipline.CEBINAE: 0.978}


def figure11(discipline: Discipline = Discipline.CEBINAE,
             rate_bps: float = 25e6, buffer_mtus: int = 40,
             duration_s: float = 60.0,
             num_long: int = 8,
             cross_counts: Tuple[int, ...] = (2, 8, 4),
             cross_ccas: Tuple[str, ...] = ("bic", "vegas", "cubic"),
             tau: float = 0.06,
             access_delay_ms: float = 8.0,
             bottleneck_delay_ms: float = 4.0) -> Figure11Result:
    """8 NewReno long flows vs Bic/Vegas/Cubic cross traffic on three
    100 Mbps bottlenecks (scaled 4x).

    Delays and buffer keep dT comparable to the long flows' RTT: at a
    naive scale dT dwarfs the base RTT, the three LBF hops inflate the
    long flows' RTT ~10x, and their AIMD growth — hence the whole
    convergence toward max-min — stalls (DESIGN.md, scaling law 4)."""
    sim = Simulator()
    if discipline is Discipline.CEBINAE:
        from dataclasses import replace as dc_replace
        params = DEFAULT_POLICY.cebinae_params(
            rate_bps, buffer_mtus * MTU_BYTES, max_rtt_s=0.08,
            rate_scale=100e6 / rate_bps)
        params = dc_replace(params, tau=tau,
                            delta_port=min(2 * tau, 0.16))
        factory = cebinae_factory(params=params, buffer_mtus=buffer_mtus)
    elif discipline is Discipline.FIFO:
        factory = lambda spec: DropTailQueue.from_mtu_count(buffer_mtus)
    else:
        from ..netsim.fq_codel import fq_codel_factory
        factory = fq_codel_factory(limit_packets=max(buffer_mtus, 64))

    lot = build_parking_lot(
        num_long_flows=num_long,
        cross_flow_counts=list(cross_counts),
        bottleneck_rate_bps=rate_bps,
        bottleneck_queue=factory,
        access_delay_ns=int(access_delay_ms * 1e6),
        bottleneck_delay_ns=int(bottleneck_delay_ms * 1e6),
        sim=sim)
    monitor = FlowMonitor(sim)
    flows, labels, specs = [], [], []
    for j in range(num_long):
        flow = connect_flow(lot.long_senders[j], lot.long_receivers[j],
                            "newreno", monitor=monitor,
                            src_port=10_000 + j)
        flows.append(flow)
        labels.append(f"long{j}")
        specs.append(FlowSpec(flow_id=f"long{j}",
                              path=tuple(range(len(cross_counts)))))
    port = 20_000
    for i, (count, cca) in enumerate(zip(cross_counts, cross_ccas)):
        for j in range(count):
            flow = connect_flow(lot.cross_senders[i][j],
                                lot.cross_receivers[i][j], cca,
                                monitor=monitor, src_port=port)
            port += 1
            flows.append(flow)
            labels.append(f"{cca}{j}")
            specs.append(FlowSpec(flow_id=f"{cca}{j}", path=(i,)))
    sim.run(until_ns=seconds(duration_s))
    duration_ns = seconds(duration_s)
    goodputs = [monitor.goodputs_bps(duration_ns)[flow.flow_id]
                for flow in flows]
    capacities = {i: rate_bps for i in range(len(cross_counts))}
    ideal = water_filling(capacities, specs)
    return Figure11Result(
        discipline=discipline, flow_labels=labels,
        goodputs_bps=goodputs,
        ideal_bps=[ideal[spec.flow_id] for spec in specs],
        duration_s=duration_s)


# --------------------------------------------------------------------------
# Figure 12: sensitivity to the thresholds δp, δf, τ.
# --------------------------------------------------------------------------

@dataclass
class Figure12Point:
    threshold: float
    jfi: float
    goodput_bps: float


@dataclass
class Figure12Result:
    cebinae_points: List[Figure12Point]
    fifo_jfi: float
    fifo_goodput_bps: float
    fq_jfi: float
    fq_goodput_bps: float


def figure12(thresholds: Sequence[float] = (0.01, 0.02, 0.05, 0.1,
                                            0.2, 0.5, 1.0),
             policy: ScalePolicy = DEFAULT_POLICY,
             duration_s: float = 40.0, workers: int = 1,
             cache_dir=None, use_cache: bool = True) -> Figure12Result:
    """JFI and goodput as δp = δf = τ sweep from 1% to 100%.

    The sweep sets the thresholds directly (it *is* the paper's x-axis)
    rather than applying the scaling rule to them.  The two baselines
    and every threshold point share one pool.
    """
    from dataclasses import replace

    spec = ScenarioSpec(name="figure12", rate_bps=100e6, rtts_ms=(50,),
                        buffer_mtus=420,
                        cca_mix=(("newreno", 16), ("cubic", 1)),
                        duration_s=duration_s)
    scaled = policy.apply(spec)
    specs = [RunSpec(scaled=scaled, discipline=Discipline.FIFO),
             RunSpec(scaled=scaled, discipline=Discipline.FQ)]
    for threshold in thresholds:
        params = replace(scaled.cebinae, tau=threshold,
                         delta_port=threshold, delta_flow=threshold,
                         min_bottom_rate_fraction=0.0)
        specs.append(RunSpec(scaled=replace(scaled, cebinae=params),
                             discipline=Discipline.CEBINAE))
    results = [require(result) for result
               in run_many(specs, workers=workers, cache_dir=cache_dir,
                           use_cache=use_cache)]
    points = []
    for threshold, result in zip(thresholds, results[2:]):
        points.append(Figure12Point(threshold=threshold, jfi=result.jfi,
                                    goodput_bps=result.
                                    total_goodput_bps))
    fifo = results[0]
    fq = results[1]
    return Figure12Result(cebinae_points=points,
                          fifo_jfi=fifo.jfi,
                          fifo_goodput_bps=fifo.total_goodput_bps,
                          fq_jfi=fq.jfi,
                          fq_goodput_bps=fq.total_goodput_bps)
