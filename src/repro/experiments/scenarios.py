"""Scenario descriptions and the bandwidth/flow scaling policy.

Every evaluation artifact in the paper is a *scenario*: a topology, a
mix of CCAs with per-group RTTs, a bottleneck rate and buffer, and a
duration.  Scenarios are described with the paper's original numbers;
the :class:`ScalePolicy` maps them onto configurations a pure-Python
packet simulator can execute, following the scaling laws derived in
DESIGN.md:

* **Rate scaling** — 100 Mbps-class scenarios run at 25 Mbps by
  default, 1 Gbps at 25 Mbps, 10 Gbps at 50 Mbps.  Buffers scale with
  rate so drain times (and hence Cebinae's dT bound) are preserved.
* **Tax scaling** — Cebinae's control authority is ``τ·C`` per window
  while loss-based TCP regrab is ``MSS/RTT²`` *independent of C*, so a
  faithful reproduction of the tax-vs-AIMD balance requires
  ``τ_sim = τ_paper · (C_paper / C_sim)``, clamped to [1%, 10%].
  ``δp``/``δf`` scale the same way (clamped to 5%) because per-window
  byte counts shrink with the rate.
* **Flow scaling** — scenarios with hundreds of flows cannot run at a
  rate where every flow clears TCP's minimum operating point
  (~2 MSS/RTT); group counts are divided down (never below 1) while
  preserving the mix ratio.

Each scaled scenario records its scale factors so reports can state
them next to the paper's numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..netsim.engine import MILLISECOND, seconds
from ..netsim.packet import MSS_BYTES, MTU_BYTES
from ..core.params import CebinaeParams


def known_cca_names() -> Tuple[str, ...]:
    """The CCA names a scenario may reference (sorted registry keys)."""
    from ..tcp.flows import CCA_REGISTRY
    return tuple(sorted(CCA_REGISTRY))


def _require_cca(owner: str, cca: str) -> None:
    from ..tcp.flows import CCA_REGISTRY
    if not isinstance(cca, str) or cca.lower() not in CCA_REGISTRY:
        known = ", ".join(known_cca_names())
        raise ValueError(
            f"{owner}: unknown CCA {cca!r}; known: {known}")


@dataclass(frozen=True)
class FlowPlan:
    """One flow of a scenario, after mix expansion.

    Fields are validated at construction so a malformed plan fails
    here, with the offending value named, rather than deep inside the
    runner's topology build.
    """

    index: int
    cca: str
    rtt_s: float
    start_time_s: float = 0.0

    def __post_init__(self) -> None:
        owner = f"flow plan #{self.index}"
        if self.index < 0:
            raise ValueError(f"{owner}: index must be >= 0")
        _require_cca(owner, self.cca)
        if not self.rtt_s > 0:
            raise ValueError(
                f"{owner}: rtt_s must be > 0, got {self.rtt_s!r}")
        if self.start_time_s < 0:
            raise ValueError(
                f"{owner}: start_time_s must be >= 0, got "
                f"{self.start_time_s!r}")


def _number(value: object) -> float:
    """Validate a JSON number, preserving its int/float identity."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"expected a number, got {value!r}")
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """A dumbbell scenario in the paper's own units.

    ``rtts_ms`` aligns with ``cca_mix``: one RTT per mix group (the
    common case in Table 2), one per flow, or a single value for all.

    Construction validates every field (positive rate/duration/RTTs, a
    non-empty mix of known CCAs, start times matching the flow count)
    so degenerate scenarios are rejected with a clear message instead
    of failing mid-simulation.
    """

    name: str
    rate_bps: float
    rtts_ms: Tuple[float, ...]
    buffer_mtus: int
    cca_mix: Tuple[Tuple[str, int], ...]
    duration_s: float = 60.0
    start_times_s: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        owner = f"scenario {self.name!r}"
        if not self.name:
            raise ValueError("scenario name must not be empty")
        if not self.rate_bps > 0:
            raise ValueError(
                f"{owner}: rate_bps must be > 0, got {self.rate_bps!r}")
        if not self.rtts_ms:
            raise ValueError(f"{owner}: rtts_ms must not be empty")
        for rtt in self.rtts_ms:
            if not rtt > 0:
                raise ValueError(
                    f"{owner}: every RTT must be > 0 ms, got {rtt!r}")
        if self.buffer_mtus <= 0:
            raise ValueError(
                f"{owner}: buffer_mtus must be >= 1, got "
                f"{self.buffer_mtus!r}")
        if not self.cca_mix:
            raise ValueError(
                f"{owner}: cca_mix must not be empty (zero flows)")
        for cca, count in self.cca_mix:
            _require_cca(owner, cca)
            if count < 1:
                raise ValueError(
                    f"{owner}: mix group {cca!r} needs count >= 1, "
                    f"got {count!r}")
        if not self.duration_s > 0:
            raise ValueError(
                f"{owner}: duration_s must be > 0, got "
                f"{self.duration_s!r}")
        self._per_group_rtts()  # RTT list must map onto the groups.
        if self.start_times_s is not None:
            if len(self.start_times_s) != self.total_flows:
                raise ValueError(
                    f"{owner}: {len(self.start_times_s)} start times "
                    f"cannot map onto {self.total_flows} flows")
            for start in self.start_times_s:
                if start < 0:
                    raise ValueError(
                        f"{owner}: start times must be >= 0, got "
                        f"{start!r}")

    @property
    def total_flows(self) -> int:
        return sum(count for _, count in self.cca_mix)

    def flow_plans(self) -> List[FlowPlan]:
        """Expand the mix into per-flow plans with RTTs and starts."""
        rtts = self._per_group_rtts()
        plans: List[FlowPlan] = []
        index = 0
        for group, (cca, count) in enumerate(self.cca_mix):
            for _ in range(count):
                start = 0.0
                if self.start_times_s is not None:
                    start = self.start_times_s[index]
                plans.append(FlowPlan(index=index, cca=cca,
                                      rtt_s=rtts[group] / 1e3,
                                      start_time_s=start))
                index += 1
        return plans

    def _per_group_rtts(self) -> List[float]:
        groups = len(self.cca_mix)
        if len(self.rtts_ms) == 1:
            return [self.rtts_ms[0]] * groups
        if len(self.rtts_ms) == groups:
            return list(self.rtts_ms)
        raise ValueError(
            f"{self.name}: {len(self.rtts_ms)} RTTs cannot map onto "
            f"{groups} CCA groups")

    @property
    def max_rtt_s(self) -> float:
        return max(self.rtts_ms) / 1e3

    @property
    def min_rtt_s(self) -> float:
        return min(self.rtts_ms) / 1e3

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready payload (tuples become lists)."""
        return {
            "name": self.name,
            "rate_bps": self.rate_bps,
            "rtts_ms": list(self.rtts_ms),
            "buffer_mtus": self.buffer_mtus,
            "cca_mix": [list(pair) for pair in self.cca_mix],
            "duration_s": self.duration_s,
            "start_times_s": None if self.start_times_s is None
            else list(self.start_times_s),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (validated).

        Numeric fields keep their int/float identity rather than being
        coerced: cache fingerprints canonicalise through JSON, where
        ``20`` and ``20.0`` hash differently, so a round-tripped spec
        must reproduce the exact values ``to_dict`` wrote.
        """
        starts = data.get("start_times_s")
        return cls(
            name=str(data["name"]),
            rate_bps=_number(data["rate_bps"]),
            rtts_ms=tuple(_number(v) for v in data["rtts_ms"]),  # type: ignore[union-attr]
            buffer_mtus=int(data["buffer_mtus"]),      # type: ignore[arg-type]
            cca_mix=tuple((str(cca), int(count))
                          for cca, count in data["cca_mix"]),  # type: ignore[union-attr]
            duration_s=_number(data["duration_s"]),
            start_times_s=None if starts is None
            else tuple(_number(v) for v in starts))    # type: ignore[union-attr]


@dataclass(frozen=True)
class ScaledScenario:
    """A scenario after the scaling policy has been applied."""

    spec: ScenarioSpec            # With *scaled* rate/buffer/mix.
    paper_spec: ScenarioSpec      # The original.
    rate_scale: float             # paper rate / sim rate.
    flow_scale: float             # paper flows / sim flows.
    cebinae: CebinaeParams

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready payload mirroring the dataclass shape.

        Round-tripping a scaled scenario (rather than re-applying the
        policy on load) keeps the sweep-fabric manifest a pure record
        of *what will run*: a manifest written under one policy version
        replays the identical configuration even if scaling laws later
        change.
        """
        return {
            "spec": self.spec.to_dict(),
            "paper_spec": self.paper_spec.to_dict(),
            "rate_scale": self.rate_scale,
            "flow_scale": self.flow_scale,
            "cebinae": self.cebinae.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScaledScenario":
        return cls(
            spec=ScenarioSpec.from_dict(data["spec"]),        # type: ignore[arg-type]
            paper_spec=ScenarioSpec.from_dict(data["paper_spec"]),  # type: ignore[arg-type]
            rate_scale=float(data["rate_scale"]),             # type: ignore[arg-type]
            flow_scale=float(data["flow_scale"]),             # type: ignore[arg-type]
            cebinae=CebinaeParams.from_dict(data["cebinae"]))  # type: ignore[arg-type]


#: TCP needs roughly this many segments per RTT to avoid RTO collapse.
MIN_SEGMENTS_PER_RTT = 3.0


@dataclass(frozen=True)
class ScalePolicy:
    """Maps paper-scale scenarios onto simulator-scale ones."""

    target_rate_bps: float = 25e6
    max_rate_bps: float = 60e6
    max_flows: int = 40
    tau_paper: float = 0.01
    delta_paper: float = 0.01
    tau_cap: float = 0.08
    delta_cap: float = 0.05
    min_bottom_rate_fraction: float = 0.02
    dt_headroom: float = 1.2
    min_dt_s: float = 0.04

    # -- individual scaling rules ---------------------------------------------
    def scale_mix(self, mix: Sequence[Tuple[str, int]]
                  ) -> Tuple[Tuple[Tuple[str, int], ...], float]:
        """Shrink group counts preserving ratios; never below 1."""
        total = sum(count for _, count in mix)
        if total <= self.max_flows:
            return tuple(mix), 1.0
        factor = total / self.max_flows
        scaled = tuple((cca, max(1, round(count / factor)))
                       for cca, count in mix)
        new_total = sum(count for _, count in scaled)
        return scaled, total / new_total

    def sim_rate(self, spec: ScenarioSpec, n_flows: int) -> float:
        """Rate giving every flow a viable fair share, within caps."""
        floor = (n_flows * MIN_SEGMENTS_PER_RTT * MSS_BYTES * 8
                 / spec.min_rtt_s)
        rate = max(self.target_rate_bps, floor)
        rate = min(rate, self.max_rate_bps, spec.rate_bps)
        return rate

    def scaled_threshold(self, paper_value: float, rate_scale: float,
                         cap: float) -> float:
        return min(max(paper_value * rate_scale, paper_value), cap)

    def cebinae_params(self, rate_bps: float, buffer_bytes: int,
                       max_rtt_s: float,
                       rate_scale: float) -> CebinaeParams:
        drain_s = buffer_bytes * 8 / rate_bps
        dt_s = max(self.dt_headroom * drain_s, self.min_dt_s)
        dt_ns = int(math.ceil(dt_s * 1e3)) * MILLISECOND
        recompute = max(1, math.ceil(seconds(max_rtt_s) / dt_ns))
        tau = self.scaled_threshold(self.tau_paper, rate_scale,
                                    self.tau_cap)
        # The saturation threshold must exceed the tax: a taxed link
        # admits ~ (1 - tau) of capacity, and with delta_port <= tau the
        # very act of taxing reads as desaturation, releasing all limits
        # every other window (see DESIGN.md).
        return CebinaeParams(
            delta_port=min(2.0 * tau, 0.16),
            delta_flow=self.scaled_threshold(self.delta_paper,
                                             rate_scale, self.delta_cap),
            tau=tau,
            dt_ns=dt_ns,
            vdt_ns=MILLISECOND,
            l_ns=MILLISECOND,
            recompute_rounds=recompute,
            min_bottom_rate_fraction=self.min_bottom_rate_fraction,
        )

    # -- the composite -----------------------------------------------------------
    def apply(self, spec: ScenarioSpec,
              duration_s: Optional[float] = None) -> ScaledScenario:
        mix, flow_scale = self.scale_mix(spec.cca_mix)
        n_flows = sum(count for _, count in mix)
        rate = self.sim_rate(spec, n_flows)
        rate_scale = spec.rate_bps / rate
        buffer_mtus = max(10, round(spec.buffer_mtus / rate_scale))
        start_times = spec.start_times_s
        if start_times is not None and flow_scale != 1.0:
            raise ValueError("cannot flow-scale staggered-start scenarios")
        scaled_spec = replace(
            spec, rate_bps=rate, buffer_mtus=buffer_mtus, cca_mix=mix,
            duration_s=duration_s if duration_s is not None
            else spec.duration_s)
        params = self.cebinae_params(rate, buffer_mtus * MTU_BYTES,
                                     spec.max_rtt_s, rate_scale)
        return ScaledScenario(spec=scaled_spec, paper_spec=spec,
                              rate_scale=rate_scale,
                              flow_scale=flow_scale, cebinae=params)


#: The default policy used by the benchmark harness.
DEFAULT_POLICY = ScalePolicy()
