"""Plain-text report formatting for experiment results.

The harness prints the same rows/series the paper's tables and figures
report, side by side with the published numbers, in a form that drops
straight into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..heavyhitter.evaluation import DetectionResult
from ..obs.events import ControlRound
from .figures import (Figure1Result, Figure9Point, Figure10Result,
                      Figure11Result, Figure12Result, BarFigureResult)
from .runner import Discipline
from .table2 import Table2Comparison


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()
    out = [line(headers), line(["-" * width for width in widths])]
    out.extend(line(row) for row in materialised)
    return "\n".join(out)


def mbps(value_bps: float) -> str:
    return f"{value_bps / 1e6:.2f}"


def table2_report(comparisons: Sequence[Table2Comparison]) -> str:
    headers = ["row", "config", "scale",
               "JFI fifo (paper)", "JFI fq (paper)", "JFI ceb (paper)",
               "goodput ceb/fifo"]
    rows: List[List[str]] = []
    for comparison in comparisons:
        spec = comparison.row.spec
        mix = ",".join(f"{cca}:{count}" for cca, count in spec.cca_mix)
        fifo = comparison.results[Discipline.FIFO]
        row = [spec.name.replace("table2_", ""),
               f"{spec.rate_bps / 1e6:.0f}M {mix}",
               f"{fifo.rate_scale:.0f}x/{fifo.flow_scale:.0f}x"]
        for discipline in (Discipline.FIFO, Discipline.FQ,
                           Discipline.CEBINAE):
            measured = comparison.results.get(discipline)
            paper = comparison.row.paper(discipline)
            row.append(f"{measured.jfi:.3f} ({paper.jfi:.3f})"
                       if measured else "-")
        ceb = comparison.results.get(Discipline.CEBINAE)
        if ceb is not None and fifo.total_goodput_bps > 0:
            row.append(f"{ceb.total_goodput_bps / fifo.total_goodput_bps:.3f}")
        else:
            row.append("-")
        rows.append(row)
    return format_table(headers, rows)


def figure1_report(result: Figure1Result) -> str:
    lines = ["Figure 1: goodput [Mbps] per second "
             "(flow0 RTT 20.4 ms, flow1 RTT 40 ms)"]
    for label, run in (("FIFO", result.fifo),
                       ("Cebinae", result.cebinae)):
        series = run.goodput_series_bps
        lines.append(f"  {label}: JFI={run.jfi:.3f}")
        for flow_index, flow_series in enumerate(series):
            samples = " ".join(f"{value / 1e6:5.1f}"
                               for value in flow_series[::5])
            lines.append(f"    flow{flow_index} (every 5 s): {samples}")
    return "\n".join(lines)


def bar_figure_report(name: str, result: BarFigureResult) -> str:
    lines = [f"{name}: per-flow goodput [Mbps]"]
    for label, run, paper in (
            ("FIFO", result.fifo, result.paper_jfi_fifo),
            ("Cebinae", result.cebinae, result.paper_jfi_cebinae)):
        ordered = sorted(run.goodputs_bps)
        lines.append(
            f"  {label}: JFI={run.jfi:.3f} (paper {paper:.3f}) "
            f"min={ordered[0] / 1e6:.2f} median="
            f"{ordered[len(ordered) // 2] / 1e6:.2f} "
            f"max={ordered[-1] / 1e6:.2f}")
    return "\n".join(lines)


def figure9_report(points: Sequence[Figure9Point]) -> str:
    headers = ["RTT ms", "JFI fifo", "JFI fq", "JFI ceb",
               "goodput fifo", "goodput fq", "goodput ceb"]
    rows = []
    for point in points:
        rows.append([f"{point.rtt_ms:.0f}"]
                    + [f"{point.jfi(d):.3f}" for d in
                       (Discipline.FIFO, Discipline.FQ,
                        Discipline.CEBINAE)]
                    + [mbps(point.goodput_bps(d)) for d in
                       (Discipline.FIFO, Discipline.FQ,
                        Discipline.CEBINAE)])
    return "Figure 9: RTT asymmetry sweep\n" + format_table(headers,
                                                            rows)


def figure10_report(result: Figure10Result) -> str:
    lines = ["Figure 10: per-second JFI (NewReno joins @5 s, "
             "Cubic @25 s)"]
    for discipline in (Discipline.FIFO, Discipline.FQ,
                       Discipline.CEBINAE):
        series = result.jfi_series(discipline)
        samples = " ".join(f"{value:.2f}" for value in series[::5])
        lines.append(f"  {discipline.value:>7} (every 5 s): {samples}")
    return "\n".join(lines)


def figure11_report(results: Sequence[Figure11Result]) -> str:
    lines = ["Figure 11: parking lot, goodput vs ideal max-min"]
    for result in results:
        lines.append(f"  {result.discipline.value}: normalized "
                     f"JFI={result.normalized_jfi:.3f}")
        for label, rate, ideal in zip(result.flow_labels,
                                      result.goodputs_bps,
                                      result.ideal_bps):
            lines.append(f"    {label:>8}: {rate / 1e6:6.2f} Mbps "
                         f"(ideal {ideal / 1e6:6.2f})")
    return "\n".join(lines)


def figure12_report(result: Figure12Result) -> str:
    headers = ["threshold", "JFI", "goodput Mbps"]
    rows = [[f"{point.threshold:.0%}", f"{point.jfi:.3f}",
             mbps(point.goodput_bps)]
            for point in result.cebinae_points]
    table = format_table(headers, rows)
    return ("Figure 12: threshold sensitivity (δp=δf=τ)\n"
            f"  FIFO baseline: JFI={result.fifo_jfi:.3f} "
            f"goodput={mbps(result.fifo_goodput_bps)} Mbps\n"
            f"  FQ baseline:   JFI={result.fq_jfi:.3f} "
            f"goodput={mbps(result.fq_goodput_bps)} Mbps\n" + table)


def faults_report(points: Sequence["FaultSweepPoint"]) -> str:
    """The fault-intensity sweep: degradation counters and recovery."""
    from .faults import FaultSweepPoint  # noqa: F401 - typing only
    headers = ["intensity", "JFI", "recovery s", "CP misses",
               "failopen rounds", "lost pkts", "status"]
    rows: List[List[str]] = []
    for point in points:
        if point.failed:
            failed = point.result
            status = "TIMED OUT" if failed.timed_out else "FAILED"
            rows.append([f"{point.intensity:g}", "-", "-", "-", "-",
                         "-", f"{status} ({failed.error})"])
            continue
        result = point.result
        summary = result.fault_summary or {}
        cp = summary.get("control_plane", {})
        lost = sum(link.get("lost_packets", 0)
                   for link in summary.get("links", {}).values())
        recovery = "-" if point.recovery_s is None \
            else f"{point.recovery_s:.0f}"
        rows.append([f"{point.intensity:g}", f"{result.jfi:.3f}",
                     recovery, str(cp.get("deadline_misses", 0)),
                     str(cp.get("failopen_rounds", 0)), str(lost),
                     "ok"])
    intro = ("Fault-recovery sweep: CP outage + bottleneck loss "
             "during the middle of the run; 'recovery s' is the time "
             "after the faults clear for per-second JFI to return to "
             "its pre-fault level")
    return intro + "\n" + format_table(headers, rows)


def control_timeline_report(rounds: Sequence[ControlRound],
                            jfi_series: Optional[Sequence[float]] = None
                            ) -> str:
    """The per-``dT`` control-plane timeline, one row per round.

    ``rounds`` is what a
    :class:`~repro.obs.sinks.ControlTimelineSink` collected; with a
    per-second ``jfi_series`` (``ScenarioResult.jfi_series()``) each
    round also shows the fairness index of the second it landed in, so
    rate decisions read directly against their fairness effect.
    """
    headers = ["t s", "port", "round", "kind", "sat", "util",
               "top MB/s", "bottom MB/s", "|top|", "recomp"]
    if jfi_series is not None:
        headers.append("JFI")
    rows: List[List[str]] = []
    for record in rounds:
        seconds = record.time_ns / 1e9
        row = [f"{seconds:.3f}", record.port, str(record.round_index),
               record.kind, "y" if record.saturated else "n",
               f"{record.utilization:.2f}",
               f"{record.top_rate_bytes_per_sec / 1e6:.3f}",
               f"{record.bottom_rate_bytes_per_sec / 1e6:.3f}",
               str(len(record.top_flows)),
               "y" if record.recomputed else "n"]
        if jfi_series is not None:
            index = int(seconds)
            row.append(f"{jfi_series[index]:.3f}"
                       if 0 <= index < len(jfi_series) else "-")
        rows.append(row)
    fail_open = sum(1 for record in rounds
                    if record.kind == "fail_open")
    missed = sum(1 for record in rounds if record.kind == "missed")
    intro = (f"Control-plane timeline: {len(rounds)} rounds, "
             f"{fail_open} fail-open, {missed} missed")
    return intro + "\n" + format_table(headers, rows)


def figure13_report(results: Sequence[DetectionResult],
                    variable: str = "round_interval_ms") -> str:
    headers = ["stages", "slots", "interval ms", "FPR", "FNR"]
    rows = [[result.stages, result.slots_per_stage,
             f"{result.round_interval_ms:.0f}",
             f"{result.false_positive_rate:.2e}",
             f"{result.false_negative_rate:.4f}"]
            for result in results]
    return ("Figure 13: ⊤-flow detection accuracy\n"
            + format_table(headers, rows))
