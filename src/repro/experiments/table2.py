"""Table 2: the 25-configuration sweep.

Each row carries the paper's configuration *and* its reported numbers
(throughput, goodput, JFI for FIFO / FQ / Cebinae) so reports can print
paper-vs-measured side by side.  The reproduction target is the shape:
Cebinae's JFI should land far above FIFO's and near FQ's, with a
goodput cost bounded by the (scaled) tax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .runner import Discipline, ScenarioResult, run_comparison
from .scenarios import DEFAULT_POLICY, ScalePolicy, ScenarioSpec


@dataclass(frozen=True)
class PaperNumbers:
    """One discipline's reported (throughput, goodput, JFI) in a row."""

    throughput_mbps: float
    goodput_mbps: float
    jfi: float


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2 with the paper's published results."""

    spec: ScenarioSpec
    fifo: PaperNumbers
    fq: PaperNumbers
    cebinae: PaperNumbers

    def paper(self, discipline: Discipline) -> PaperNumbers:
        return {Discipline.FIFO: self.fifo, Discipline.FQ: self.fq,
                Discipline.CEBINAE: self.cebinae}[discipline]


def _row(index: int, rate_mbps: float, rtts: Tuple[float, ...],
         buf: int, mix: Tuple[Tuple[str, int], ...],
         fifo: Tuple[float, float, float],
         fq: Tuple[float, float, float],
         ceb: Tuple[float, float, float]) -> Table2Row:
    spec = ScenarioSpec(name=f"table2_row{index:02d}",
                        rate_bps=rate_mbps * 1e6,
                        rtts_ms=rtts, buffer_mtus=buf, cca_mix=mix)
    return Table2Row(spec=spec,
                     fifo=PaperNumbers(*fifo),
                     fq=PaperNumbers(*fq),
                     cebinae=PaperNumbers(*ceb))


#: The full Table 2 as published (throughput Mbps, goodput Mbps, JFI).
TABLE2_ROWS: List[Table2Row] = [
    _row(1, 100, (20.8, 28), 250,
         (("newreno", 2), ("newreno", 8)),
         (98.95, 95.35, 0.740), (95.62, 92.16, 0.982),
         (95.92, 92.44, 0.999)),
    _row(2, 100, (20.4, 40), 350,
         (("cubic", 8), ("cubic", 2)),
         (98.96, 95.37, 0.539), (98.95, 95.37, 1.000),
         (98.00, 94.45, 0.980)),
    _row(3, 100, (20.4, 60), 500,
         (("vegas", 2), ("vegas", 8)),
         (98.88, 95.29, 0.873), (98.83, 95.24, 1.000),
         (98.88, 95.29, 0.993)),
    _row(4, 100, (200,), 1700,
         (("newreno", 16), ("cubic", 1)),
         (98.28, 94.38, 0.446), (90.99, 87.61, 0.995),
         (94.53, 91.02, 0.925)),
    _row(5, 100, (100,), 850,
         (("newreno", 16), ("cubic", 1)),
         (98.72, 95.11, 0.857), (91.45, 88.10, 0.998),
         (95.58, 92.08, 0.960)),
    _row(6, 100, (50,), 420,
         (("newreno", 16), ("cubic", 1)),
         (98.90, 95.30, 0.936), (93.86, 90.45, 0.999),
         (95.37, 91.90, 0.993)),
    _row(7, 100, (50,), 420,
         (("vegas", 16), ("cubic", 1)),
         (98.90, 95.30, 0.096), (98.90, 95.30, 1.000),
         (95.47, 91.99, 0.988)),
    _row(8, 100, (100,), 850,
         (("vegas", 16), ("newreno", 1)),
         (98.71, 95.07, 0.093), (97.77, 94.19, 0.999),
         (95.67, 92.16, 0.985)),
    _row(9, 100, (100,), 850,
         (("vegas", 128), ("newreno", 1)),
         (98.88, 95.26, 0.189), (98.74, 95.10, 0.966),
         (97.45, 93.88, 0.976)),
    _row(10, 100, (60,), 500,
         (("vegas", 8), ("newreno", 8), ("cubic", 2)),
         (98.87, 95.27, 0.510), (98.02, 94.45, 0.991),
         (96.52, 93.00, 0.973)),
    _row(11, 1000, (5,), 420,
         (("newreno", 32), ("cubic", 8)),
         (989.8, 954.0, 0.844), (989.8, 954.0, 0.988),
         (985.4, 949.7, 0.955)),
    _row(12, 1000, (10,), 850,
         (("vegas", 128), ("cubic", 1)),
         (989.8, 954.0, 0.048), (989.8, 954.0, 0.966),
         (968.0, 932.9, 0.953)),
    _row(13, 1000, (10,), 850,
         (("vegas", 1024), ("cubic", 2)),
         (989.8, 953.6, 0.275), (989.8, 953.6, 0.833),
         (949.2, 914.1, 0.846)),
    _row(14, 1000, (50,), 4200,
         (("newreno", 128), ("bbr", 1)),
         (988.7, 952.7, 0.992), (923.6, 890.0, 0.975),
         (981.6, 945.8, 0.990)),
    _row(15, 1000, (50,), 4200,
         (("newreno", 128), ("bbr", 2)),
         (988.9, 952.8, 0.951), (953.9, 919.2, 0.963),
         (979.9, 944.2, 0.981)),
    _row(16, 1000, (50,), 21000,
         (("newreno", 128), ("bbr", 2)),
         (988.8, 952.7, 0.773), (953.9, 919.2, 0.963),
         (963.8, 928.7, 0.936)),
    _row(17, 1000, (100,), 8350,
         (("newreno", 128), ("bbr", 2)),
         (986.9, 950.7, 0.884), (938.2, 903.9, 0.968),
         (956.3, 921.1, 0.967)),
    _row(18, 1000, (10,), 850,
         (("vegas", 64), ("newreno", 1)),
         (989.8, 953.8, 0.042), (989.8, 954.0, 0.967),
         (976.2, 940.7, 0.976)),
    _row(19, 1000, (100,), 8500,
         (("vegas", 4), ("newreno", 128)),
         (986.9, 950.8, 0.946), (917.6, 884.1, 0.970),
         (957.3, 922.2, 0.971)),
    _row(20, 1000, (100, 64), 8500,
         (("vegas", 4), ("newreno", 128)),
         (988.4, 952.4, 0.956), (941.1, 906.8, 0.970),
         (959.8, 924.7, 0.964)),
    _row(21, 1000, (100,), 8500,
         (("vegas", 8), ("newreno", 128)),
         (987.0, 950.8, 0.921), (936.1, 901.8, 0.968),
         (964.4, 929.0, 0.969)),
    _row(22, 1000, (10,), 850,
         (("vegas", 128), ("bbr", 1)),
         (989.8, 954.0, 0.886), (989.8, 954.0, 0.965),
         (987.3, 951.5, 0.985)),
    _row(23, 1000, (100,), 8500,
         (("bic", 2), ("cubic", 32)),
         (985.1, 944.9, 0.799), (960.3, 924.9, 0.999),
         (952.6, 911.3, 0.946)),
    _row(24, 10000, (50, 44), 41667,
         (("newreno", 128), ("cubic", 16)),
         (9876, 9514, 0.917), (9705, 9352, 0.969),
         (9780, 9420, 0.968)),
    _row(25, 10000, (28, 28), 25000,
         (("newreno", 128), ("cubic", 128)),
         (9891, 9532, 0.863), (9856, 9498, 0.942),
         (9787, 9432, 0.952)),
]


@dataclass
class Table2Comparison:
    """Measured-vs-paper numbers for one row."""

    row: Table2Row
    results: Dict[Discipline, ScenarioResult]

    def summary_line(self, discipline: Discipline) -> str:
        measured = self.results[discipline]
        paper = self.row.paper(discipline)
        return (f"{self.row.spec.name} {discipline.value:>7}: "
                f"JFI {measured.jfi:.3f} (paper {paper.jfi:.3f})  "
                f"goodput {measured.total_goodput_bps / 1e6:.1f} Mbps "
                f"of {measured.sim_rate_bps / 1e6:.0f} "
                f"(paper {paper.goodput_mbps:.0f} of "
                f"{self.row.spec.rate_bps / 1e6:.0f})")


def run_table2_row(row: Table2Row,
                   policy: ScalePolicy = DEFAULT_POLICY,
                   duration_s: Optional[float] = None,
                   disciplines: Sequence[Discipline] = (
                       Discipline.FIFO, Discipline.FQ,
                       Discipline.CEBINAE)) -> Table2Comparison:
    scaled = policy.apply(row.spec, duration_s=duration_s)
    results = run_comparison(scaled, disciplines=disciplines)
    return Table2Comparison(row=row, results=results)


def run_table2(rows: Optional[Sequence[Table2Row]] = None,
               policy: ScalePolicy = DEFAULT_POLICY,
               duration_s: Optional[float] = None,
               verbose: bool = False,
               workers: int = 1,
               cache_dir=None,
               use_cache: bool = True) -> List[Table2Comparison]:
    """Run (a subset of) Table 2 and return comparisons per row.

    The whole (row x discipline) grid — up to 75 independent
    simulations — is fanned out over one process pool, so the sweep's
    wall clock approaches the slowest single cell.
    """
    from .parallel import RunSpec, require, run_many
    selected = list(rows) if rows is not None else list(TABLE2_ROWS)
    disciplines = (Discipline.FIFO, Discipline.FQ, Discipline.CEBINAE)
    specs = []
    for row in selected:
        scaled = policy.apply(row.spec, duration_s=duration_s)
        specs.extend(RunSpec(scaled=scaled, discipline=discipline)
                     for discipline in disciplines)
    results = run_many(specs, workers=workers, cache_dir=cache_dir,
                       use_cache=use_cache)
    comparisons = []
    for index, row in enumerate(selected):
        chunk = results[index * len(disciplines):
                        (index + 1) * len(disciplines)]
        comparison = Table2Comparison(
            row=row,
            results={discipline: require(result) for discipline, result
                     in zip(disciplines, chunk)})
        comparisons.append(comparison)
        if verbose:
            for discipline in comparison.results:
                print(comparison.summary_line(discipline))
    return comparisons
