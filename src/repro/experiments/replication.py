"""Multi-seed replication: mean and confidence intervals for JFI.

Packet simulations of TCP are chaotic: a one-packet timing change can
flip which flow loses a given burst.  Single runs therefore carry run-
to-run variance, and comparisons between disciplines should quote a
confidence interval, not a point estimate.  The seeded host-jitter RNG
makes independent replications cheap: each seed produces a different
(but reproducible) realisation of the same scenario.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .runner import Discipline, ScenarioResult, run_scenario
from .scenarios import ScaledScenario

try:  # scipy is a dev-dependency; fall back to a normal quantile.
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - scipy ships in dev installs.
    _scipy_stats = None


def _t_quantile(confidence: float, dof: int) -> float:
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2, dof))
    return 1.96  # Normal approximation.


@dataclass
class ReplicatedMetric:
    """Mean, standard deviation and CI of one metric across seeds."""

    samples: List[float]
    confidence: float = 0.95

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def std(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples)
                         / (len(self.samples) - 1))

    @property
    def half_width(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        quantile = _t_quantile(self.confidence, len(self.samples) - 1)
        return quantile * self.std / math.sqrt(len(self.samples))

    @property
    def interval(self) -> Tuple[float, float]:
        return (self.mean - self.half_width,
                self.mean + self.half_width)

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_width:.3f}"


@dataclass
class ReplicatedResult:
    """Aggregated replications of one (scenario, discipline)."""

    discipline: Discipline
    runs: List[ScenarioResult]

    @property
    def jfi(self) -> ReplicatedMetric:
        return ReplicatedMetric([run.jfi for run in self.runs])

    @property
    def goodput_bps(self) -> ReplicatedMetric:
        return ReplicatedMetric([run.total_goodput_bps
                                 for run in self.runs])


def replicate(scaled: ScaledScenario, discipline: Discipline,
              seeds: Sequence[int] = (0, 1, 2),
              **run_kwargs) -> ReplicatedResult:
    """Run a scenario once per seed and aggregate."""
    runs = [run_scenario(scaled, discipline, seed=seed, **run_kwargs)
            for seed in seeds]
    return ReplicatedResult(discipline=discipline, runs=runs)


def replicate_comparison(scaled: ScaledScenario,
                         disciplines: Sequence[Discipline] = (
                             Discipline.FIFO, Discipline.CEBINAE),
                         seeds: Sequence[int] = (0, 1, 2)
                         ) -> Dict[Discipline, ReplicatedResult]:
    return {discipline: replicate(scaled, discipline, seeds=seeds)
            for discipline in disciplines}


def significantly_fairer(better: ReplicatedResult,
                         worse: ReplicatedResult) -> bool:
    """True if ``better``'s JFI interval clears ``worse``'s entirely."""
    return better.jfi.interval[0] > worse.jfi.interval[1]
