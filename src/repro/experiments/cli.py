"""Command-line entry point: ``cebinae-repro <experiment>``.

Runs any of the paper's experiments and prints the report that feeds
EXPERIMENTS.md.  ``--quick`` shrinks durations for smoke runs.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..core.resource_model import estimate_resources
from ..heavyhitter.evaluation import sweep_round_interval, \
    sweep_slot_count
from . import figures, report
from .runner import Discipline
from .table2 import TABLE2_ROWS, run_table2

EXPERIMENTS = ("table2", "figure1", "figure7", "figure8", "figure9",
               "figure10", "figure11", "figure12", "figure13",
               "table3", "scalability", "faults", "all")

#: Experiments excluded from ``all`` (opt-in extras, not paper tables).
NOT_IN_ALL = ("all", "faults")


def _duration(default: float, quick: bool) -> float:
    return min(default, 15.0) if quick else default


def run_experiment(name: str, quick: bool = False,
                   rows: Optional[List[int]] = None,
                   workers: int = 1,
                   cache_dir: Optional[str] = None,
                   use_cache: bool = True,
                   faults: Optional[List[str]] = None,
                   wall_limit_s: Optional[float] = None) -> str:
    """Run one experiment by name and return its report text.

    ``workers``/``cache_dir``/``use_cache`` flow into the parallel
    executor: independent simulation points fan out over a process
    pool, and finished points are replayed from the on-disk cache.
    ``faults`` (CLI ``--faults`` tokens) and ``wall_limit_s`` apply to
    the ``faults`` experiment only.
    """
    pool = {"workers": workers, "cache_dir": cache_dir,
            "use_cache": use_cache}
    if name == "faults":
        from ..faults.spec import parse_fault_tokens
        from .faults import demo_fault_spec, fault_recovery_sweep
        duration = _duration(40.0, quick)
        base = demo_fault_spec(duration)
        if faults:
            base = parse_fault_tokens(faults, base=base)
        points = fault_recovery_sweep(duration_s=duration, base=base,
                                      wall_limit_s=wall_limit_s, **pool)
        return report.faults_report(points)
    if faults:
        raise ValueError(
            f"--faults applies to the 'faults' experiment, not {name!r}")
    if name == "table2":
        selected = TABLE2_ROWS
        if rows:
            selected = [TABLE2_ROWS[i - 1] for i in rows]
        comparisons = run_table2(selected,
                                 duration_s=_duration(60.0, quick),
                                 verbose=True, **pool)
        return report.table2_report(comparisons)
    if name == "figure1":
        return report.figure1_report(
            figures.figure1(duration_s=_duration(50.0, quick), **pool))
    if name == "figure7":
        return report.bar_figure_report(
            "Figure 7 (16 Vegas vs 1 NewReno)",
            figures.figure7(duration_s=_duration(60.0, quick), **pool))
    if name == "figure8":
        part_a = report.bar_figure_report(
            "Figure 8a (128 NewReno vs 2 BBR)",
            figures.figure8a(duration_s=_duration(60.0, quick), **pool))
        part_b = report.bar_figure_report(
            "Figure 8b (128 NewReno vs 4 Vegas)",
            figures.figure8b(duration_s=_duration(60.0, quick), **pool))
        return part_a + "\n" + part_b
    if name == "figure9":
        rtts = (16, 64, 256) if quick else (16, 32, 64, 128, 256)
        return report.figure9_report(
            figures.figure9(rtts_ms=rtts,
                            duration_s=_duration(60.0, quick), **pool))
    if name == "figure10":
        return report.figure10_report(
            figures.figure10(duration_s=_duration(50.0, quick), **pool))
    if name == "figure11":
        results = [figures.figure11(discipline=d,
                                    duration_s=_duration(60.0, quick))
                   for d in (Discipline.FIFO, Discipline.CEBINAE)]
        return report.figure11_report(results)
    if name == "figure12":
        thresholds = (0.01, 0.1, 1.0) if quick else \
            (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)
        return report.figure12_report(
            figures.figure12(thresholds=thresholds,
                             duration_s=_duration(40.0, quick), **pool))
    if name == "figure13":
        trials = 1 if quick else 10
        duration = 0.15 if quick else 0.5
        results = sweep_round_interval(
            intervals_ms=(10, 50, 100) if quick else (10, 20, 50, 100),
            trials=trials, trace_duration_s=duration, **pool)
        results += sweep_slot_count(
            slot_options=(512, 2048) if quick else (512, 1024, 2048,
                                                    4096),
            trials=trials, trace_duration_s=duration, **pool)
        return report.figure13_report(results)
    if name == "scalability":
        from .scalability import format_points, rtt_sweep
        rtts = (20, 320) if quick else (20, 80, 320)
        points = rtt_sweep(rtts_ms=rtts,
                           duration_s=_duration(20.0, quick), **pool)
        return ("Cebinae vs AFQ under growing per-flow buffer "
                "requirements\n" + format_points(points))
    if name == "table3":
        lines = ["Table 3: Cebinae data plane resource usage"]
        for stages in (1, 2):
            usage = estimate_resources(cache_stages=stages)
            lines.append(
                f"  {stages}-stage: PHV={usage.phv_bits}b "
                f"SRAM={usage.sram_kb}KB TCAM={usage.tcam_kb}KB "
                f"VLIW={usage.vliw_instructions} "
                f"queues={usage.queues} "
                f"(max util {usage.max_utilization:.1%})")
        return "\n".join(lines)
    raise ValueError(f"unknown experiment {name!r}")


def _cache_main(argv: List[str]) -> int:
    """``cebinae-repro cache gc [--cache-dir DIR] [--json]``."""
    import json

    from .parallel import ResultCache
    parser = argparse.ArgumentParser(
        prog="cebinae-repro cache",
        description="Maintain the on-disk result cache.  'gc' detects "
                    "and removes corrupted, truncated, and "
                    "foreign-schema entries (the read path treats "
                    "them as misses, but they linger on disk forever) "
                    "plus temp files orphaned by crashed writers, and "
                    "reports the bytes reclaimed.")
    parser.add_argument("action", choices=("gc",))
    parser.add_argument("--cache-dir", default=".cebinae-cache",
                        help="cache directory (default .cebinae-cache)")
    parser.add_argument("--json", action="store_true",
                        help="print the report as JSON")
    args = parser.parse_args(argv)
    summary = ResultCache(args.cache_dir).prune()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"cache gc {args.cache_dir}: kept {summary['kept']} "
          f"entr(y/ies), removed {len(summary['removed'])}, "
          f"reclaimed {summary['reclaimed_bytes']} bytes")
    for name in summary["removed"]:
        print(f"  removed {name}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # ``cebinae-repro lint <paths>``: the simlint multi-pass
        # analyzer (determinism / taint / unit-inference / hygiene
        # rules, plus --sarif and --baseline reporting; see
        # repro.analysis).  Shares exit-code semantics with
        # ``python tools/simlint.py``.
        from ..analysis.cli import main as lint_main
        return lint_main(argv[1:])
    if argv and argv[0] == "trace":
        # ``cebinae-repro trace <scenario> --events <topics> --out
        # <dir>``: run one scenario with the repro.obs trace bus on and
        # write deterministic JSONL/packet-log/metrics artifacts.
        from ..obs.cli import main as trace_main
        return trace_main(argv[1:])
    if argv and argv[0] == "suite":
        # ``cebinae-repro suite <dir>``: run a directory of declarative
        # scenario specs through the parallel executor, with optional
        # golden-result conformance checking (see repro.suite).
        from ..suite.cli import main as suite_main
        return suite_main(argv[1:])
    if argv and argv[0] == "sweep":
        # ``cebinae-repro sweep init|work|watch|status|resume|merge|
        # run``: the crash-resumable distributed sweep fabric (see
        # repro.sweep): manifest of fingerprinted tasks, lease-claiming
        # workers, quarantine, kill -9-safe resume, live fleet watch.
        from ..sweep.cli import main as sweep_main
        return sweep_main(argv[1:])
    if argv and argv[0] == "bench":
        # ``cebinae-repro bench report BENCH_*.json ...``: fold
        # benchmark artifacts into one trend table with
        # normalised-ratio regression flagging (see
        # repro.experiments.bench_trend).
        from .bench_trend import main as bench_main
        return bench_main(argv[1:])
    if argv and argv[0] == "cache":
        # ``cebinae-repro cache gc``: prune corrupted/truncated result
        # cache entries (silent misses that linger on disk forever).
        return _cache_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="cebinae-repro",
        description="Reproduce the Cebinae (SIGCOMM 2022) evaluation. "
                    "Also: 'cebinae-repro lint <paths>' runs the "
                    "simlint determinism/unit-safety analyzer; "
                    "'cebinae-repro trace <scenario>' runs one "
                    "scenario with structured event tracing on; "
                    "'cebinae-repro suite <dir>' runs a directory of "
                    "declarative scenario specs with golden-result "
                    "conformance checking; 'cebinae-repro sweep ...' "
                    "drives the crash-resumable distributed sweep "
                    "fabric; 'cebinae-repro cache gc' prunes corrupt "
                    "result-cache entries.")
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument("--quick", action="store_true",
                        help="short durations for smoke runs")
    parser.add_argument("--rows", type=int, nargs="*",
                        help="table2 only: 1-based row numbers")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size for independent "
                             "simulation points (default 1: serial)")
    parser.add_argument("--cache-dir", default=".cebinae-cache",
                        help="directory for the on-disk result cache")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore cached results and re-simulate "
                             "every point")
    parser.add_argument("--faults", nargs="+", metavar="SPEC",
                        help="fault injection for the 'faults' "
                             "experiment: a JSON spec file and/or "
                             "key=value overrides (e.g. --faults "
                             "loss_rate=0.001 seed=7 "
                             "cp_outage_windows=12e9-24e9)")
    parser.add_argument("--wall-limit", type=float, metavar="SECONDS",
                        help="per-run wall-clock watchdog for the "
                             "'faults' experiment; a wedged run is "
                             "recorded as FAILED instead of hanging "
                             "the sweep")
    parser.add_argument("--profile", action="store_true",
                        help="profile the simulator hot path: "
                             "per-component event counts, events/sec "
                             "and the sim/wall ratio (in-process "
                             "runs only; use --workers 1)")
    parser.add_argument("--profile-json", metavar="PATH",
                        help="also write the profile to PATH in the "
                             "BENCH_*.json (pytest-benchmark) shape")
    args = parser.parse_args(argv)
    names = [name for name in EXPERIMENTS if name not in NOT_IN_ALL] \
        if args.experiment == "all" else [args.experiment]
    profiler = None
    if args.profile or args.profile_json:
        from ..netsim import profiling
        profiler = profiling.enable()
        if args.workers > 1:
            print("note: --profile observes in-process simulations "
                  "only; points run by pool workers are not counted "
                  "(use --workers 1 for full coverage)")
    for name in names:
        # Host-side progress timing, not simulation time.  Monotonic,
        # because time.time() can step backwards under NTP and print a
        # negative duration.
        start = time.monotonic()  # simlint: allow[D103] CLI timer
        print(f"=== {name} ===")
        print(run_experiment(name, quick=args.quick, rows=args.rows,
                             workers=args.workers,
                             cache_dir=args.cache_dir,
                             use_cache=not args.no_cache,
                             faults=args.faults,
                             wall_limit_s=args.wall_limit))
        elapsed = time.monotonic() - start  # simlint: allow[D103] CLI timer
        print(f"[{name}: {elapsed:.1f}s]\n")
    if profiler is not None:
        from ..netsim import profiling
        profiling.disable()
        profile = profiler.report()
        print(profile.format_text())
        if args.profile_json:
            profiling.write_bench_json(
                args.profile_json,
                name=f"cebinae-repro {args.experiment}",
                report=profile)
            print(f"[profile written to {args.profile_json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
