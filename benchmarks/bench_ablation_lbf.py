"""Ablation: the LBF design choices of section 4.3.

Two knobs the paper motivates but does not ablate explicitly:

* **ECN marking** — Cebinae marks delayed (¬headq) packets' ECN bits as
  an early congestion signal for ECN-capable flows.
* **vdT virtual rounds** — the credit line that limits end-of-round
  catch-up bursts; without it a group could buffer a full round's
  allocation and release it at once, breaking the drain-time bound.

The benchmark quantifies each on the Figure 1 scenario.
"""

from dataclasses import replace

import pytest

from repro.experiments.figures import figure1
from repro.experiments.runner import Discipline, run_scenario
from repro.experiments.scenarios import DEFAULT_POLICY, ScenarioSpec

from conftest import bench_duration_s, run_once


def _scenario(duration_s):
    spec = ScenarioSpec(name="ablation", rate_bps=100e6,
                        rtts_ms=(20.4, 40.0), buffer_mtus=350,
                        cca_mix=(("newreno", 1), ("newreno", 1)),
                        duration_s=duration_s)
    return DEFAULT_POLICY.apply(spec)


@pytest.mark.benchmark(group="ablation-lbf")
def test_ecn_marking_ablation(benchmark):
    """ECN on/off with non-ECN-capable flows must behave identically;
    the mechanism is opt-in by the transport."""
    def run_pair():
        scaled = _scenario(bench_duration_s(20.0))
        with_ecn = run_scenario(scaled, Discipline.CEBINAE)
        without = replace(scaled,
                          cebinae=replace(scaled.cebinae,
                                          ecn_marking=False))
        without_ecn = run_scenario(without, Discipline.CEBINAE)
        return with_ecn, without_ecn

    with_ecn, without_ecn = run_once(benchmark, run_pair)
    print(f"\nECN marking on : JFI {with_ecn.jfi:.3f}, "
          f"goodput {with_ecn.total_goodput_bps / 1e6:.1f} Mbps")
    print(f"ECN marking off: JFI {without_ecn.jfi:.3f}, "
          f"goodput {without_ecn.total_goodput_bps / 1e6:.1f} Mbps")
    # NewReno here is not ECN-capable, so marking changes nothing:
    # byte-identical runs.
    assert with_ecn.goodputs_bps == without_ecn.goodputs_bps


@pytest.mark.benchmark(group="ablation-lbf")
def test_vdt_granularity_ablation(benchmark):
    """Coarser virtual rounds permit larger catch-up bursts.  The run
    must stay functional across two orders of magnitude of vdT, with
    drops/delays shifting rather than fairness collapsing."""
    def run_sweep():
        results = {}
        base = _scenario(bench_duration_s(20.0))
        for divisor in (256, 16, 4):
            vdt = max(base.cebinae.dt_ns // divisor, 1_000)
            # Growing vdT consumes Equation (2) headroom: extend dT so
            # the drain-time bound still holds.
            params = replace(base.cebinae, vdt_ns=vdt, l_ns=vdt,
                             dt_ns=base.cebinae.dt_ns + 2 * vdt)
            results[divisor] = run_scenario(
                replace(base, cebinae=params), Discipline.CEBINAE)
        return results

    results = run_once(benchmark, run_sweep)
    print()
    for divisor, result in results.items():
        print(f"vdT = dT/{divisor:>3}: JFI {result.jfi:.3f}, "
              f"goodput {result.total_goodput_bps / 1e6:5.1f} Mbps, "
              f"lbf delays {result.lbf_delays}, "
              f"drops {result.lbf_drops}")
        benchmark.extra_info[f"jfi_dt_over_{divisor}"] = \
            round(result.jfi, 3)
        assert result.total_goodput_bps > 0.5 * result.sim_rate_bps
