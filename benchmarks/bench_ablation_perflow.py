"""Ablation: group-level vs per-flow Cebinae (paper section 7).

The shipped design taxes all bottlenecked flows through one shared
allocation — flows "compete within their groups just as they do
today".  The section 7 extension gives each ⊤ flow its own taxed rate.
With a single aggressor the two coincide; with *multiple unequal*
aggressors, per-flow tracking should equalise them while the group
design lets them fight inside the shared budget."""

import pytest

from repro.core.control_plane import cebinae_factory
from repro.core.params import CebinaeParams
from repro.core.perflow import perflow_cebinae_factory
from repro.fairness.metrics import jain_fairness_index
from repro.netsim.engine import Simulator, seconds
from repro.netsim.tracing import FlowMonitor
from repro.netsim.topology import build_dumbbell
from repro.tcp.flows import connect_flow, expand_mix

from conftest import bench_duration_s, run_once

RATE_BPS = 20e6
BUFFER_MTUS = 80
MIX = [("vegas", 6), ("cubic", 1), ("bbr", 1)]


def _params():
    return CebinaeParams.for_link(
        RATE_BPS, BUFFER_MTUS * 1500, max_rtt_ns=seconds(0.05),
        tau=0.05, delta_port=0.10, delta_flow=0.05,
        min_bottom_rate_fraction=0.02)


def _run(factory, duration_s):
    sim = Simulator()
    mix = expand_mix(MIX)
    dumbbell = build_dumbbell([seconds(0.05)] * len(mix), RATE_BPS,
                              factory, sim=sim)
    monitor = FlowMonitor(sim)
    flows = [connect_flow(dumbbell.senders[i], dumbbell.receivers[i],
                          cca, monitor=monitor, src_port=10_000 + i)
             for i, cca in enumerate(mix)]
    sim.run(until_ns=seconds(duration_s))
    return [monitor.goodputs_bps(seconds(duration_s))[f.flow_id]
            for f in flows]


@pytest.mark.benchmark(group="ablation-perflow")
def test_group_vs_perflow_with_two_aggressors(benchmark):
    def run_both():
        duration = bench_duration_s(30.0)
        group = _run(cebinae_factory(params=_params(),
                                     buffer_mtus=BUFFER_MTUS),
                     duration)
        perflow = _run(perflow_cebinae_factory(params=_params(),
                                               buffer_mtus=BUFFER_MTUS),
                       duration)
        return group, perflow

    group, perflow = run_once(benchmark, run_both)
    group_jfi = jain_fairness_index(group)
    perflow_jfi = jain_fairness_index(perflow)
    print(f"\n  group    JFI {group_jfi:.3f} "
          f"(cubic {group[6] / 1e6:.2f}, bbr {group[7] / 1e6:.2f})")
    print(f"  per-flow JFI {perflow_jfi:.3f} "
          f"(cubic {perflow[6] / 1e6:.2f}, bbr {perflow[7] / 1e6:.2f})")
    benchmark.extra_info["group_jfi"] = round(group_jfi, 3)
    benchmark.extra_info["perflow_jfi"] = round(perflow_jfi, 3)

    # Both variants mitigate the aggressors; per-flow should be at
    # least as fair as the shared-group design here.
    assert group_jfi > 0.5
    assert perflow_jfi > group_jfi - 0.05
    # Neither starves the Vegas crowd (a single flow may still be in a
    # post-loss transient at short bench durations, hence the low bar).
    assert min(group[:6]) > 0.005 * RATE_BPS
    assert min(perflow[:6]) > 0.005 * RATE_BPS
