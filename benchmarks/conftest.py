"""Shared helpers for the benchmark harness.

Every paper table/figure has a benchmark module that regenerates its
rows/series.  Benchmarks run scaled-down (see
``repro.experiments.scenarios.ScalePolicy``) and short by default so
the whole harness completes in minutes; set
``CEBINAE_BENCH_DURATION=60`` (seconds) to reproduce the headline
numbers recorded in EXPERIMENTS.md, which were measured at 60 s.

Each benchmark prints the same rows/series the paper reports and stores
the key numbers in ``benchmark.extra_info`` so they appear in
pytest-benchmark's JSON output.
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--backend", action="store", default="packet",
        choices=["packet", "hybrid", "all"],
        help="simulation backend(s) for backend-parametrised "
             "benchmarks (default: packet, so BENCH_hotpath.json "
             "stays comparable to the committed baseline; the CI "
             "perf-smoke job runs a second '--backend all' pass into "
             "BENCH_hybrid.json)")


def pytest_generate_tests(metafunc):
    if "bench_backend" in metafunc.fixturenames:
        option = metafunc.config.getoption("--backend")
        backends = ("packet", "hybrid") if option == "all" else (option,)
        # Packet first: the hybrid leg reads the packet leg's event
        # count to report the event-count reduction.
        metafunc.parametrize("bench_backend", backends)


def bench_duration_s(default: float = 12.0) -> float:
    """Simulated seconds per scenario (env-overridable)."""
    return float(os.environ.get("CEBINAE_BENCH_DURATION", default))


def bench_flows(default: int = 10_000) -> int:
    """Flow count for the scalability benchmarks (env-overridable).

    The headline hybrid-backend claim is measured at 10^4 flows; set
    ``CEBINAE_BENCH_FLOWS=500`` for a quick local pass (the shape
    assertions adapt, the magnitude assertions only apply at full
    scale).
    """
    return int(os.environ.get("CEBINAE_BENCH_FLOWS", default))


def bench_workers(default: int = 2) -> int:
    """Process-pool size for sweep benchmarks (env-overridable).

    Independent (scenario, discipline) points fan out over this many
    workers via ``repro.experiments.parallel``; set
    ``CEBINAE_BENCH_WORKERS=1`` to force the serial path.
    """
    return int(os.environ.get("CEBINAE_BENCH_WORKERS", default))


def bench_cache_dir() -> "str | None":
    """Result-cache directory, or None to disable caching.

    Defaults to ``.cebinae-cache`` in the working directory so a
    repeated benchmark invocation replays cached points instead of
    re-simulating them (the progress lines report each hit).  Set
    ``CEBINAE_CACHE_DIR=`` (empty) or ``off`` to disable.
    """
    value = os.environ.get("CEBINAE_CACHE_DIR", ".cebinae-cache")
    return None if value in ("", "0", "off", "none") else value


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive scenario exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def duration_s():
    return bench_duration_s()
