"""Figure 9: RTT-asymmetry sweep for Cubic over a 400 Mbps-class link.

4 Cubic flows at a fixed 256 ms RTT compete with 4 Cubic flows whose
RTT sweeps from 16 ms to 256 ms (asymmetry up to 16x).  Paper shape:
FIFO's JFI decays as asymmetry grows; FQ and Cebinae hold it high with
minimal goodput loss."""

import os

import pytest

from repro.experiments.figures import figure9
from repro.experiments.report import figure9_report
from repro.experiments.runner import Discipline

from conftest import bench_cache_dir, bench_duration_s, bench_workers, \
    run_once

SWEEP_RTTS_MS = (16, 64, 256) if "CEBINAE_BENCH_DURATION" not in \
    os.environ else (16, 32, 64, 128, 256)


@pytest.mark.benchmark(group="figure9")
def test_figure9_rtt_sweep(benchmark):
    # The sweep's (RTT x discipline) grid fans out over the process
    # pool; a repeated invocation replays every point from the cache.
    points = run_once(benchmark, figure9, rtts_ms=SWEEP_RTTS_MS,
                      duration_s=bench_duration_s(30.0),
                      workers=bench_workers(),
                      cache_dir=bench_cache_dir())
    print()
    print(figure9_report(points))
    for point in points:
        benchmark.extra_info[f"jfi_fifo_rtt{int(point.rtt_ms)}"] = \
            round(point.jfi(Discipline.FIFO), 3)
        benchmark.extra_info[f"jfi_ceb_rtt{int(point.rtt_ms)}"] = \
            round(point.jfi(Discipline.CEBINAE), 3)

    # Shape 1: at the largest asymmetry (16 ms vs 256 ms), Cebinae is
    # at least as fair as FIFO.
    worst = points[0]
    assert worst.rtt_ms == min(p.rtt_ms for p in points)
    assert worst.jfi(Discipline.CEBINAE) >= \
        worst.jfi(Discipline.FIFO) - 0.05

    # Shape 2: with symmetric RTTs everyone is fair.
    symmetric = points[-1]
    for discipline in Discipline:
        assert symmetric.jfi(discipline) > 0.8

    # Shape 3: efficiency stays comparable across disciplines.
    for point in points:
        fifo_goodput = point.goodput_bps(Discipline.FIFO)
        assert point.goodput_bps(Discipline.CEBINAE) > \
            0.75 * fifo_goodput
