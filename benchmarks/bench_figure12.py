"""Figure 12: sensitivity to the thresholds δp, δf and τ.

16 NewReno flows vs 1 Cubic flow while δp = δf = τ sweep from 1% to
100%.  Paper shape: JFI stays high across the sweep (Cebinae is robust
to its parameters), while goodput decays as the thresholds grow and
collapses at the degenerate 100% setting where every flow is always
taxed toward zero."""

import os

import pytest

from repro.experiments.figures import figure12
from repro.experiments.report import figure12_report

from conftest import bench_cache_dir, bench_duration_s, bench_workers, \
    run_once

THRESHOLDS = (0.01, 0.1, 0.5, 1.0) if "CEBINAE_BENCH_DURATION" not in \
    os.environ else (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)


@pytest.mark.benchmark(group="figure12")
def test_figure12_threshold_sweep(benchmark):
    # Baselines plus every threshold point share one pool and cache.
    result = run_once(benchmark, figure12, thresholds=THRESHOLDS,
                      duration_s=bench_duration_s(25.0),
                      workers=bench_workers(),
                      cache_dir=bench_cache_dir())
    print()
    print(figure12_report(result))
    for point in result.cebinae_points:
        benchmark.extra_info[f"jfi_at_{point.threshold:.0%}"] = \
            round(point.jfi, 3)
        benchmark.extra_info[f"goodput_at_{point.threshold:.0%}"] = \
            round(point.goodput_bps / 1e6, 2)

    by_threshold = {point.threshold: point
                    for point in result.cebinae_points}
    # Shape 1: goodput decays with aggressiveness; the degenerate 100%
    # setting loses most of the link (paper: drops sharply past the
    # flows' fair share).
    assert by_threshold[1.0].goodput_bps < \
        0.7 * by_threshold[0.01].goodput_bps
    # Shape 2: moderate thresholds keep fairness at least FIFO-grade.
    assert by_threshold[0.1].jfi > result.fifo_jfi - 0.1
    # Shape 3: the FQ baseline is near-perfectly fair.
    assert result.fq_jfi > 0.9
