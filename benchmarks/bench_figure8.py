"""Figure 8: goodput CDFs for (a) 128 NewReno vs 2 BBR and (b) 128
NewReno vs 4 Vegas over a 1 Gbps-class bottleneck.

8a: BBR's loss-obliviousness grabs a large share under FIFO; Cebinae
taxes it back (paper JFI 0.774 -> 0.936).
8b: a high aggregate JFI masks four starved Vegas flows; Cebinae lifts
the left tail of the CDF (paper 0.956 -> 0.964)."""

import pytest

from repro.experiments.figures import figure8a, figure8b
from repro.experiments.report import bar_figure_report

from conftest import bench_duration_s, run_once


@pytest.mark.benchmark(group="figure8")
def test_figure8a_bbr_aggression(benchmark):
    result = run_once(benchmark, figure8a,
                      duration_s=bench_duration_s(30.0))
    print()
    print(bar_figure_report("Figure 8a (NewReno crowd vs BBR)", result))
    benchmark.extra_info["fifo_jfi"] = round(result.fifo.jfi, 3)
    benchmark.extra_info["cebinae_jfi"] = round(result.cebinae.jfi, 3)
    # The BBR flows are the mix's tail entries.
    bbr_share_fifo = sum(result.fifo.goodputs_bps[-1:]) / \
        result.fifo.total_goodput_bps
    bbr_share_ceb = sum(result.cebinae.goodputs_bps[-1:]) / \
        result.cebinae.total_goodput_bps
    benchmark.extra_info["bbr_share_fifo"] = round(bbr_share_fifo, 3)
    benchmark.extra_info["bbr_share_cebinae"] = round(bbr_share_ceb, 3)
    # Shape: the paper's claim is the JFI lift (0.774 -> 0.936); at
    # bench scale the flow-scaled crowd already keeps FIFO fairly fair,
    # so the check is that Cebinae holds that fairness and bounds BBR
    # near its fair share.
    fair_share = 1.0 / len(result.cebinae.goodputs_bps)
    # At short bench durations Cebinae's taxation transients can sit a
    # little below the (already fair, flow-scaled) FIFO baseline; the
    # 60 s headline runs in EXPERIMENTS.md land within 0.015 of it.
    assert result.cebinae.jfi > result.fifo.jfi - 0.15
    assert bbr_share_ceb < 4 * fair_share


@pytest.mark.benchmark(group="figure8")
def test_figure8b_vegas_starvation_tail(benchmark):
    result = run_once(benchmark, figure8b,
                      duration_s=bench_duration_s(30.0))
    print()
    print(bar_figure_report("Figure 8b (NewReno crowd vs Vegas)",
                            result))
    # The CDF's left tail: the minimum-goodput flow under Cebinae
    # should not be more starved than under FIFO.
    fifo_min = min(result.fifo.goodputs_bps)
    ceb_min = min(result.cebinae.goodputs_bps)
    benchmark.extra_info["fifo_min_mbps"] = round(fifo_min / 1e6, 3)
    benchmark.extra_info["cebinae_min_mbps"] = round(ceb_min / 1e6, 3)
    cdf = result.cdf_points(result.cebinae.discipline)
    assert cdf[0][1] > 0 and cdf[-1][1] == pytest.approx(1.0)
