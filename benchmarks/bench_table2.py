"""Table 2: the 25-row sweep of bandwidths, RTTs, buffers, and CCA
mixes under FIFO / FQ / Cebinae.

Each benchmark runs one representative slice of the table (grouped by
link class) and prints measured-vs-paper JFI per row.  Run the full
25-row sweep with ``cebinae-repro table2`` (results recorded in
EXPERIMENTS.md).
"""

import pytest

from repro.experiments.report import table2_report
from repro.experiments.runner import Discipline
from repro.experiments.table2 import TABLE2_ROWS, run_table2

from conftest import bench_duration_s, run_once

#: Representative rows per link class (1-based row numbers): RTT
#: unfairness, intra-CCA, Vegas starvation, BBR aggression, 10G mix.
ROWS_100M = (1, 2, 7, 8)
ROWS_1G = (12, 15, 18, 23)
ROWS_10G = (24, 25)


def _run_rows(row_numbers):
    rows = [TABLE2_ROWS[number - 1] for number in row_numbers]
    comparisons = run_table2(rows, duration_s=bench_duration_s())
    print()
    print(table2_report(comparisons))
    return comparisons


def _check(benchmark, comparisons):
    for comparison in comparisons:
        for discipline, result in comparison.results.items():
            paper = comparison.row.paper(discipline)
            key = f"{comparison.row.spec.name}_{discipline.value}"
            benchmark.extra_info[key + "_jfi"] = round(result.jfi, 3)
            benchmark.extra_info[key + "_paper_jfi"] = paper.jfi
            assert 0.0 < result.jfi <= 1.0
            # Efficiency shape: every discipline keeps the link busy.
            assert result.total_goodput_bps > 0.5 * result.sim_rate_bps


@pytest.mark.benchmark(group="table2")
def test_table2_100mbps_rows(benchmark):
    comparisons = run_once(benchmark, _run_rows, ROWS_100M)
    _check(benchmark, comparisons)


@pytest.mark.benchmark(group="table2")
def test_table2_1gbps_rows(benchmark):
    comparisons = run_once(benchmark, _run_rows, ROWS_1G)
    _check(benchmark, comparisons)


@pytest.mark.benchmark(group="table2")
def test_table2_10gbps_rows(benchmark):
    comparisons = run_once(benchmark, _run_rows, ROWS_10G)
    _check(benchmark, comparisons)


@pytest.mark.benchmark(group="table2")
def test_table2_vegas_starvation_shape(benchmark):
    """Row 8's headline: Cebinae lifts JFI far above FIFO's."""
    comparisons = run_once(benchmark, _run_rows, (8,))
    results = comparisons[0].results
    fifo = results[Discipline.FIFO].jfi
    cebinae = results[Discipline.CEBINAE].jfi
    benchmark.extra_info["fifo_jfi"] = round(fifo, 3)
    benchmark.extra_info["cebinae_jfi"] = round(cebinae, 3)
    assert cebinae > fifo + 0.2, (
        f"Cebinae ({cebinae:.3f}) should clearly beat FIFO "
        f"({fifo:.3f}) on the Vegas-starvation row")
