"""Microbenchmarks of the per-event/per-packet hot path.

``bench_simulator.py`` tracks the cost of the coarse building blocks;
this family zooms into the inner loop that PR 3 rebuilt: scheduler
backends (heap vs calendar), cancellation storms, the link transmit
chain, queue-disc enqueue/dequeue cycles, and the tracing sinks.  Run
with ``--benchmark-json=BENCH_hotpath.json`` (as the CI perf-smoke job
does) to track the trajectory per PR.
"""

import pytest

from repro.experiments.runner import Discipline, run_scenario
from repro.experiments.scenarios import ScalePolicy, ScenarioSpec
from repro.netsim.engine import (CalendarScheduler, HeapScheduler,
                                 MICROSECOND, Simulator)
from repro.netsim.fq_codel import FqCoDelQueue
from repro.netsim.link import Link
from repro.netsim.node import Host
from repro.netsim.packet import FlowId, MTU_BYTES, Packet
from repro.netsim.queues import DropTailQueue
from repro.netsim.tracing import TimeSeries

from conftest import bench_duration_s, run_once


def _churn(scheduler_name, events=10_000):
    """Self-rescheduling timer chain: the engine's minimal workload."""
    sim = Simulator(scheduler=scheduler_name)
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < events:
            sim.schedule(1000, tick)

    sim.schedule(0, tick)
    sim.run()
    return count[0]


@pytest.mark.benchmark(group="hotpath-scheduler")
def test_heap_scheduler_churn(benchmark):
    assert benchmark(_churn, "heap") == 10_000


@pytest.mark.benchmark(group="hotpath-scheduler")
def test_calendar_scheduler_churn(benchmark):
    assert benchmark(_churn, "calendar") == 10_000


def _dense_backlog(scheduler_name, pending=2_000, rounds=5):
    """Many concurrently pending timers (the calendar queue's case)."""
    sim = Simulator(scheduler=scheduler_name)
    fired = [0]

    def fire():
        fired[0] += 1

    for round_index in range(rounds):
        base = round_index * MICROSECOND * pending
        for i in range(pending):
            sim.schedule_at(base + i * MICROSECOND, fire)
    sim.run()
    return fired[0]


@pytest.mark.benchmark(group="hotpath-scheduler")
def test_heap_dense_backlog(benchmark):
    assert benchmark(_dense_backlog, "heap") == 10_000


@pytest.mark.benchmark(group="hotpath-scheduler")
def test_calendar_dense_backlog(benchmark):
    assert benchmark(_dense_backlog, "calendar") == 10_000


@pytest.mark.benchmark(group="hotpath-scheduler")
def test_cancellation_storm(benchmark):
    """Retransmission-timer pattern: schedule far out, cancel, repeat."""
    def run():
        sim = Simulator()
        alive = [None]
        count = [0]

        def tick():
            if alive[0] is not None:
                alive[0].cancel()
            alive[0] = sim.schedule(1_000_000, lambda: None)
            count[0] += 1
            if count[0] < 5_000:
                sim.schedule(100, tick)

        sim.schedule(0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 5_000


def _drive_link(sim, queue, packets=2_000):
    """Push a packet train through one link; count deliveries."""
    src = Host(sim, 0, "src")
    dst = Host(sim, 1, "dst")
    link = Link(sim, src, dst, rate_bps=1e9, delay_ns=1000, queue=queue)
    delivered = [0]

    def count(packet):
        delivered[0] += 1

    dst.set_default_handler(count)
    flow = FlowId(0, 1, 1, 80)
    for i in range(packets):
        link.send(Packet(flow=flow, size_bytes=MTU_BYTES, seq=i))
    sim.run()
    return delivered[0]


@pytest.mark.benchmark(group="hotpath-packet")
def test_link_droptail_transmit_chain(benchmark):
    def run():
        return _drive_link(Simulator(), DropTailQueue(limit_packets=4096))

    assert benchmark(run) == 2_000


@pytest.mark.benchmark(group="hotpath-packet")
def test_link_fq_codel_transmit_chain(benchmark):
    def run():
        sim = Simulator()
        return _drive_link(sim, FqCoDelQueue(sim, limit_packets=4096))

    assert benchmark(run) == 2_000


@pytest.mark.benchmark(group="hotpath-packet")
def test_packet_construction(benchmark):
    """Packet allocation cost (meta dict is now lazy)."""
    flow = FlowId(0, 1, 1, 80)

    def make_1k():
        return [Packet(flow=flow, size_bytes=MTU_BYTES, seq=i)
                for i in range(1000)]

    packets = benchmark(make_1k)
    assert len(packets) == 1000 and not packets[0].has_meta


@pytest.mark.benchmark(group="hotpath-tracing")
def test_timeseries_add(benchmark):
    series = TimeSeries(bin_width_ns=1_000_000)

    def add_10k():
        add = series.add
        for i in range(10_000):
            add(i * 997, 1.0)

    benchmark(add_10k)
    assert series.total > 0


#: Packet-leg event counts, read by the hybrid leg of the same session
#: to report the event-count reduction (keyed by scenario name).
_BACKEND_EVENTS = {}


def _backend_scenario():
    """A warmup-plus-steady-state scenario where the hybrid backend
    has room to hand off: 30 simulated seconds against a ~9 s warmup
    (``CEBINAE_BENCH_DURATION=60`` doubles the fluid fraction and
    roughly doubles the reported reduction)."""
    spec = ScenarioSpec(name="bench-backend", rate_bps=5e6,
                        rtts_ms=(128.0, 256.0), buffer_mtus=40,
                        cca_mix=(("cubic", 4), ("cubic", 4)),
                        duration_s=bench_duration_s(30.0))
    return ScalePolicy().apply(spec)


@pytest.mark.benchmark(group="hotpath-backend")
def test_scenario_backend(benchmark, bench_backend):
    """One dumbbell scenario under the selected backend(s).

    ``extra_info`` carries the numbers BENCH_hybrid.json exists for:
    events, events/sec, sim/wall ratio, and (on the hybrid leg, when
    the packet leg ran in the same session) the event-count reduction.
    """
    scaled = _backend_scenario()
    result = run_once(benchmark, run_scenario, scaled, Discipline.FIFO,
                      backend=bench_backend)
    assert result.events > 0
    stats = getattr(benchmark, "stats", None)
    wall_s = stats.stats.median if stats is not None else 0.0
    benchmark.extra_info["backend"] = bench_backend
    benchmark.extra_info["events"] = result.events
    if wall_s > 0:
        benchmark.extra_info["events_per_sec"] = \
            round(result.events / wall_s)
        benchmark.extra_info["sim_wall_ratio"] = \
            round(result.duration_s / wall_s, 2)
    _BACKEND_EVENTS[scaled.spec.name] = \
        dict(_BACKEND_EVENTS.get(scaled.spec.name, {}),
             **{bench_backend: result.events})
    if bench_backend == "hybrid":
        summary = result.hybrid_summary or {}
        benchmark.extra_info["hybrid_mode"] = summary.get("mode", "")
        benchmark.extra_info["hybrid_reason"] = \
            summary.get("reason", "")
        assert summary.get("mode") == "fluid", \
            "scenario too short for a fluid handoff"
        packet_events = \
            _BACKEND_EVENTS[scaled.spec.name].get("packet")
        if packet_events:
            benchmark.extra_info["event_reduction_x"] = \
                round(packet_events / result.events, 2)


@pytest.mark.benchmark(group="hotpath-scheduler")
def test_scheduler_raw_push_pop(benchmark):
    """Backend push/pop cost without the Simulator wrapper."""
    from repro.netsim.engine import Event

    def cycle():
        popped = 0
        for scheduler in (HeapScheduler(), CalendarScheduler()):
            entries = [(i * 1000, i, Event(i * 1000, i, lambda: None, ()))
                       for i in range(2_000)]
            for entry in entries:
                scheduler.push(entry)
            while scheduler.pop() is not None:
                popped += 1
        return popped

    assert benchmark(cycle) == 4_000
