"""Figure 11: the multi-bottleneck 'Parking Lot'.

8 NewReno flows cross three bottlenecks contending with 2 Bic, 8 Vegas
and 4 Cubic cross flows.  The metric is the JFI *normalised to the
ideal max-min allocation* (computed by water-filling): paper 0.852
(FIFO) -> 0.978 (Cebinae)."""

import pytest

from repro.experiments.figures import FIGURE11_PAPER_JFI, figure11
from repro.experiments.report import figure11_report
from repro.experiments.runner import Discipline

from conftest import bench_duration_s, run_once


def _run_both(duration_s):
    return [figure11(discipline=discipline, duration_s=duration_s)
            for discipline in (Discipline.FIFO, Discipline.CEBINAE)]


@pytest.mark.benchmark(group="figure11")
def test_figure11_parking_lot(benchmark):
    results = run_once(benchmark, _run_both,
                       bench_duration_s(30.0))
    print()
    print(figure11_report(results))
    fifo, cebinae = results
    benchmark.extra_info["fifo_njfi"] = round(fifo.normalized_jfi, 3)
    benchmark.extra_info["cebinae_njfi"] = round(
        cebinae.normalized_jfi, 3)
    benchmark.extra_info["paper_fifo_njfi"] = \
        FIGURE11_PAPER_JFI[Discipline.FIFO]
    benchmark.extra_info["paper_cebinae_njfi"] = \
        FIGURE11_PAPER_JFI[Discipline.CEBINAE]

    # Shape: Cebinae moves the network toward the max-min ideal.
    assert cebinae.normalized_jfi > fifo.normalized_jfi - 0.05

    # Sanity: the ideal allocation reflects the topology (long flows
    # bottlenecked at the most contended middle link).
    ideal = dict(zip(cebinae.flow_labels, cebinae.ideal_bps))
    assert ideal["long0"] == pytest.approx(ideal["vegas0"])
    assert ideal["bic0"] > ideal["long0"]


@pytest.mark.benchmark(group="figure11")
def test_figure11_long_flows_not_crushed(benchmark):
    """Long flows face three taxation points; Cebinae must still leave
    them a usable share (Definition 2 says only their *bottleneck* link
    should constrain them)."""
    result = run_once(benchmark, figure11,
                      discipline=Discipline.CEBINAE,
                      duration_s=bench_duration_s(30.0))
    long_rates = [rate for label, rate in
                  zip(result.flow_labels, result.goodputs_bps)
                  if label.startswith("long")]
    ideal_long = result.ideal_bps[0]
    benchmark.extra_info["long_avg_vs_ideal"] = round(
        sum(long_rates) / len(long_rates) / ideal_long, 3)
    assert sum(long_rates) / len(long_rates) > 0.3 * ideal_long
