"""Figure 7: per-flow goodput, 16 Vegas vs 1 NewReno over 100 Mbps.

Paper: FIFO lets the single NewReno flow take ~80% of the link (JFI
0.093); Cebinae redistributes it (JFI 0.985)."""

import pytest

from repro.experiments.figures import figure7
from repro.experiments.report import bar_figure_report

from conftest import bench_duration_s, run_once


@pytest.mark.benchmark(group="figure7")
def test_figure7_goodput_bars(benchmark):
    result = run_once(benchmark, figure7,
                      duration_s=bench_duration_s(30.0))
    print()
    print(bar_figure_report("Figure 7 (16 Vegas vs 1 NewReno)", result))
    benchmark.extra_info["fifo_jfi"] = round(result.fifo.jfi, 3)
    benchmark.extra_info["cebinae_jfi"] = round(result.cebinae.jfi, 3)

    # Shape 1: FIFO lets NewReno (the last flow) dominate.
    fifo_reno = result.fifo.goodputs_bps[-1]
    fifo_vegas_avg = sum(result.fifo.goodputs_bps[:-1]) / 16
    assert fifo_reno > 3 * fifo_vegas_avg

    # Shape 2: Cebinae cuts the aggressor and lifts overall fairness.
    ceb_reno = result.cebinae.goodputs_bps[-1]
    assert ceb_reno < fifo_reno
    assert result.cebinae.jfi > result.fifo.jfi + 0.2

    # Shape 3: efficiency cost stays small.
    assert result.cebinae.total_goodput_bps > \
        0.8 * result.fifo.total_goodput_bps
