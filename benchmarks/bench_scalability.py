"""The section 5.5 scalability contrast: Cebinae vs AFQ.

AFQ's per-packet fair-queuing emulation needs its calendar
(``BpR x nQ``) to cover every flow's buffer requirement (Equation 1);
long-RTT traffic blows through a fixed calendar and gets horizon-
dropped.  Cebinae's two-queue, eventual enforcement is insensitive to
RTT.  The benchmark sweeps RTT at a fixed 32-queue budget and also
contrasts the resource model's queue counts."""

import time

import pytest

from repro.core.resource_model import queues_required
from repro.experiments.runner import Discipline, run_scenario
from repro.experiments.scalability import (format_points, rtt_sweep,
                                           run_point)
from repro.experiments.scenarios import ScalePolicy, ScenarioSpec
from repro.netsim.fluid import HybridPolicy

from conftest import bench_duration_s, bench_flows, run_once


@pytest.mark.benchmark(group="scalability")
def test_rtt_sweep_afq_vs_cebinae(benchmark):
    points = run_once(benchmark, rtt_sweep,
                      rtts_ms=(20, 80, 320), num_flows=4,
                      duration_s=bench_duration_s(15.0))
    print()
    print(format_points(points))
    by_key = {(p.mechanism, p.rtt_ms): p for p in points}
    for (mechanism, rtt), point in by_key.items():
        benchmark.extra_info[f"{mechanism}_jfi_rtt{rtt:.0f}"] = \
            round(point.jfi, 3)

    # Shape 1: AFQ horizon drops grow with RTT; Cebinae has none.
    assert by_key[("afq", 320.0)].horizon_drops >= \
        by_key[("afq", 20.0)].horizon_drops
    assert all(point.horizon_drops == 0 for point in points
               if point.mechanism == "cebinae")

    # Shape 2: at the longest RTT, Cebinae's efficiency holds up at
    # least as well as AFQ's.
    afq_long = by_key[("afq", 320.0)]
    ceb_long = by_key[("cebinae", 320.0)]
    assert ceb_long.goodput_bps > 0.5 * afq_long.goodput_bps

    # Both remain fair for homogeneous flows everywhere.
    for point in points:
        assert point.jfi > 0.6


@pytest.mark.benchmark(group="scalability")
def test_afq_fairness_at_short_rtt(benchmark):
    """Where Equation (1) is satisfied, AFQ is (near-)perfectly fair —
    the baseline works, which is what makes the long-RTT contrast
    meaningful."""
    point = run_once(benchmark, run_point, "afq", 4, 20.0,
                     duration_s=bench_duration_s(15.0))
    benchmark.extra_info["afq_jfi"] = round(point.jfi, 3)
    assert point.jfi > 0.85


@pytest.mark.benchmark(group="scalability")
def test_queue_budget_model(benchmark):
    table = run_once(
        benchmark,
        lambda: {flows: queues_required(flows, "fq")
                 for flows in (100, 10_000, 400_000)})
    assert table[400_000] == 400_000
    assert queues_required(400_000, "cebinae") == 2


def _heavy_tailed_scenario(flows, duration_s):
    """A >=10^4-flow heavy-tailed dumbbell: most flows short-RTT, a
    long tail of progressively slower ones (80/15/4/1 percent split
    over a doubling RTT ladder).  The rate floor that keeps every
    flow above TCP's minimum operating point (~3 MSS/RTT) puts the
    bottleneck in the Gbps range, so this is the regime the paper's
    scalability argument — and the hybrid backend — are about."""
    ladder = ((256.0, 0.80), (384.0, 0.15), (512.0, 0.04),
              (768.0, 0.01))
    counts = [max(1, round(flows * fraction)) for _, fraction in ladder]
    counts[0] += flows - sum(counts)
    # 29000 paper MTUs scale to ~2 buffer packets per flow at every
    # CEBINAE_BENCH_FLOWS setting (the sim-rate floor grows linearly
    # with the flow count, and buffers scale with rate), keeping the
    # packet baseline out of RTO collapse — the fluid tier models
    # steady CCA operation, not loss-synchronised starvation.
    spec = ScenarioSpec(
        name=f"scale-hybrid-{flows}",
        rate_bps=2e9,
        rtts_ms=tuple(rtt for rtt, _ in ladder),
        buffer_mtus=29_000,
        cca_mix=tuple(("cubic", count) for count in counts),
        duration_s=duration_s)
    policy = ScalePolicy(max_flows=flows, max_rate_bps=2e9)
    return policy.apply(spec)


@pytest.mark.benchmark(group="scalability-hybrid")
def test_hybrid_backend_at_scale(benchmark):
    """The hybrid backend's headline claim: >=3x wall-clock speedup
    and >=5x event-count reduction over the packet backend on a
    >=10^4-flow heavy-tailed scenario.

    The packet leg runs untimed (plain ``perf_counter``) so
    pytest-benchmark's JSON records the hybrid leg; both walls and the
    derived ratios land in ``extra_info``.  At reduced scale
    (``CEBINAE_BENCH_FLOWS``) only the shape assertions apply.
    """
    flows = bench_flows()
    duration_s = bench_duration_s(75.0)
    scaled = _heavy_tailed_scenario(flows, duration_s)
    # settle_rtts=10 keeps the packet warmup proportionate to the
    # 768 ms RTT tail; the anchors average over thousands of flows per
    # class, so the shorter probe loses no fidelity here.
    policy = HybridPolicy(settle_rtts=10.0)

    started = time.perf_counter()  # simlint: allow[D103] wall timing
    packet = run_scenario(scaled, Discipline.FIFO)
    packet_wall_s = time.perf_counter() - started  # simlint: allow[D103] wall timing

    hybrid = run_once(benchmark, run_scenario, scaled, Discipline.FIFO,
                      backend="hybrid", hybrid_policy=policy)
    stats = getattr(benchmark, "stats", None)
    hybrid_wall_s = stats.stats.median if stats is not None else 0.0

    summary = hybrid.hybrid_summary or {}
    reduction = packet.events / hybrid.events
    benchmark.extra_info["flows"] = flows
    benchmark.extra_info["packet_events"] = packet.events
    benchmark.extra_info["hybrid_events"] = hybrid.events
    benchmark.extra_info["event_reduction_x"] = round(reduction, 2)
    benchmark.extra_info["packet_wall_s"] = round(packet_wall_s, 2)
    benchmark.extra_info["hybrid_mode"] = summary.get("mode", "")
    benchmark.extra_info["jfi_packet"] = round(packet.jfi, 4)
    benchmark.extra_info["jfi_hybrid"] = round(hybrid.jfi, 4)
    if hybrid_wall_s > 0:
        speedup = packet_wall_s / hybrid_wall_s
        benchmark.extra_info["hybrid_wall_s"] = round(hybrid_wall_s, 2)
        benchmark.extra_info["wall_speedup_x"] = round(speedup, 2)

    # Shape: the handoff happened and the fluid tier tracks fairness.
    # Heavy multiplexing (~2 buffer packets/flow) is the edge of the
    # fluid tier's contract — persistent within-class dispersion that
    # the packet engine slowly mixes stays frozen in the anchors — so
    # the tolerance here is wider than the steady-state 0.05 bound
    # asserted in tests/test_hybrid_backend.py, and the bias is
    # conservative: the hybrid run under-reports fairness (measured
    # 0.79 vs 0.88 at 10^4 flows) rather than idealising it.  See
    # DESIGN.md §14.5.
    assert summary.get("mode") == "fluid"
    assert reduction > 1.0
    assert abs(hybrid.jfi - packet.jfi) < 0.12
    assert hybrid.jfi <= packet.jfi + 0.02
    # Magnitude: the headline numbers, asserted at full scale only.
    if flows >= 10_000 and duration_s >= 75.0:
        assert reduction >= 5.0
        assert hybrid_wall_s > 0 and \
            packet_wall_s / hybrid_wall_s >= 3.0
