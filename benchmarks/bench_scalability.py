"""The section 5.5 scalability contrast: Cebinae vs AFQ.

AFQ's per-packet fair-queuing emulation needs its calendar
(``BpR x nQ``) to cover every flow's buffer requirement (Equation 1);
long-RTT traffic blows through a fixed calendar and gets horizon-
dropped.  Cebinae's two-queue, eventual enforcement is insensitive to
RTT.  The benchmark sweeps RTT at a fixed 32-queue budget and also
contrasts the resource model's queue counts."""

import pytest

from repro.core.resource_model import queues_required
from repro.experiments.scalability import (format_points, rtt_sweep,
                                           run_point)

from conftest import bench_duration_s, run_once


@pytest.mark.benchmark(group="scalability")
def test_rtt_sweep_afq_vs_cebinae(benchmark):
    points = run_once(benchmark, rtt_sweep,
                      rtts_ms=(20, 80, 320), num_flows=4,
                      duration_s=bench_duration_s(15.0))
    print()
    print(format_points(points))
    by_key = {(p.mechanism, p.rtt_ms): p for p in points}
    for (mechanism, rtt), point in by_key.items():
        benchmark.extra_info[f"{mechanism}_jfi_rtt{rtt:.0f}"] = \
            round(point.jfi, 3)

    # Shape 1: AFQ horizon drops grow with RTT; Cebinae has none.
    assert by_key[("afq", 320.0)].horizon_drops >= \
        by_key[("afq", 20.0)].horizon_drops
    assert all(point.horizon_drops == 0 for point in points
               if point.mechanism == "cebinae")

    # Shape 2: at the longest RTT, Cebinae's efficiency holds up at
    # least as well as AFQ's.
    afq_long = by_key[("afq", 320.0)]
    ceb_long = by_key[("cebinae", 320.0)]
    assert ceb_long.goodput_bps > 0.5 * afq_long.goodput_bps

    # Both remain fair for homogeneous flows everywhere.
    for point in points:
        assert point.jfi > 0.6


@pytest.mark.benchmark(group="scalability")
def test_afq_fairness_at_short_rtt(benchmark):
    """Where Equation (1) is satisfied, AFQ is (near-)perfectly fair —
    the baseline works, which is what makes the long-RTT contrast
    meaningful."""
    point = run_once(benchmark, run_point, "afq", 4, 20.0,
                     duration_s=bench_duration_s(15.0))
    benchmark.extra_info["afq_jfi"] = round(point.jfi, 3)
    assert point.jfi > 0.85


@pytest.mark.benchmark(group="scalability")
def test_queue_budget_model(benchmark):
    table = run_once(
        benchmark,
        lambda: {flows: queues_required(flows, "fq")
                 for flows in (100, 10_000, 400_000)})
    assert table[400_000] == 400_000
    assert queues_required(400_000, "cebinae") == 2
