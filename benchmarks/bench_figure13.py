"""Figure 13: FPR/FNR of ⊤-flow detection on backbone-scale traces.

Replays synthetic CAIDA-equivalent traces (Zipf rates, 400k flows/min,
10 Gbps) through the passive flow cache for (a) a sweep of round
intervals at 2048 slots and (b) a sweep of slot counts at 100 ms.
Paper shape: FPR is negligible (< 0.005%) everywhere; FNR falls with
more stages/slots and is low (< 10%) at the default configuration."""

import os

import pytest

from repro.experiments.report import figure13_report
from repro.heavyhitter.evaluation import (sweep_round_interval,
                                          sweep_slot_count)

from conftest import bench_cache_dir, bench_workers, run_once

QUICK = "CEBINAE_BENCH_DURATION" not in os.environ
TRIALS = 1 if QUICK else 10
TRACE_S = 0.15 if QUICK else 0.5
FLOWS_PER_MINUTE = 400_000


@pytest.mark.benchmark(group="figure13")
def test_figure13a_round_interval_sweep(benchmark):
    intervals = (20, 100) if QUICK else (10, 20, 50, 100)
    results = run_once(benchmark, sweep_round_interval,
                       intervals_ms=intervals,
                       stages_options=(1, 2, 4),
                       slots_per_stage=2048, trials=TRIALS,
                       trace_duration_s=TRACE_S,
                       flows_per_minute=FLOWS_PER_MINUTE,
                       workers=bench_workers(),
                       cache_dir=bench_cache_dir())
    print()
    print(figure13_report(results))
    for result in results:
        key = f"s{result.stages}_i{result.round_interval_ms:.0f}"
        benchmark.extra_info[key + "_fpr"] = \
            result.false_positive_rate
        benchmark.extra_info[key + "_fnr"] = \
            round(result.false_negative_rate, 4)
        # Paper headline: negligible false positives everywhere.
        assert result.false_positive_rate < 1e-3
        # And bounded false negatives at the default configuration.
        if result.stages >= 2 and result.slots_per_stage >= 2048:
            assert result.false_negative_rate < 0.25


@pytest.mark.benchmark(group="figure13")
def test_figure13b_slot_sweep(benchmark):
    slots = (512, 2048) if QUICK else (512, 1024, 2048, 4096)
    results = run_once(benchmark, sweep_slot_count,
                       slot_options=slots, stages_options=(1, 2, 4),
                       round_interval_ms=100.0, trials=TRIALS,
                       trace_duration_s=TRACE_S,
                       flows_per_minute=FLOWS_PER_MINUTE,
                       workers=bench_workers(),
                       cache_dir=bench_cache_dir())
    print()
    print(figure13_report(results))
    # Shape: error is non-increasing in resources.  Compare smallest vs
    # largest configuration.
    smallest = min(results,
                   key=lambda r: r.stages * r.slots_per_stage)
    largest = max(results,
                  key=lambda r: r.stages * r.slots_per_stage)
    assert largest.false_negative_rate <= \
        smallest.false_negative_rate + 1e-9
    assert largest.false_positive_rate < 5e-4
