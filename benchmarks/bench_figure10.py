"""Figure 10: JFI time series under flow churn.

A population of Vegas flows reaches steady state; a NewReno flow joins
at ~5 s and a Cubic flow at ~25 s, each dragging fairness down under
FIFO.  Paper shape: Cebinae's per-second JFI recovers after each
arrival instead of staying depressed."""

import pytest

from repro.experiments.figures import figure10
from repro.experiments.report import figure10_report
from repro.experiments.runner import Discipline

from conftest import bench_cache_dir, bench_duration_s, bench_workers, \
    run_once


@pytest.mark.benchmark(group="figure10")
def test_figure10_churn_series(benchmark):
    duration = max(bench_duration_s(50.0), 35.0)  # Cubic joins at 25 s.
    result = run_once(benchmark, figure10, duration_s=duration,
                      num_vegas=16, workers=bench_workers(),
                      cache_dir=bench_cache_dir())
    print()
    print(figure10_report(result))
    fifo_series = result.jfi_series(Discipline.FIFO)
    ceb_series = result.jfi_series(Discipline.CEBINAE)
    assert len(fifo_series) == int(duration)

    # Before any aggressor joins, everyone is fair everywhere.
    assert fifo_series[4] > 0.7
    assert ceb_series[4] > 0.7

    # After the joins settle, Cebinae's fairness should be no worse
    # than FIFO's (paper: dramatically better).
    tail = int(duration) - 3
    fifo_tail = sum(fifo_series[tail:]) / 3
    ceb_tail = sum(ceb_series[tail:]) / 3
    benchmark.extra_info["fifo_tail_jfi"] = round(fifo_tail, 3)
    benchmark.extra_info["cebinae_tail_jfi"] = round(ceb_tail, 3)
    assert ceb_tail > fifo_tail - 0.1
