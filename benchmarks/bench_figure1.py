"""Figure 1: two NewReno flows with different RTTs, FIFO vs Cebinae.

The paper's opening figure: under FIFO the goodput gap between the
20.4 ms and 40 ms flows persists; Cebinae's taxation narrows it over
time.  The benchmark prints both goodput time series.
"""

import pytest

from repro.experiments.figures import figure1
from repro.experiments.report import figure1_report
from repro.experiments.runner import Discipline
from repro.fairness.metrics import jain_fairness_index

from conftest import bench_duration_s, run_once


@pytest.mark.benchmark(group="figure1")
def test_figure1_time_series(benchmark):
    result = run_once(benchmark, figure1,
                      duration_s=bench_duration_s(30.0))
    print()
    print(figure1_report(result))
    benchmark.extra_info["fifo_jfi"] = round(result.fifo.jfi, 3)
    benchmark.extra_info["cebinae_jfi"] = round(result.cebinae.jfi, 3)
    # Both runs keep the link efficient...
    for run in (result.fifo, result.cebinae):
        assert run.total_goodput_bps > 0.6 * run.sim_rate_bps
    # ...and the series cover the whole run for both flows.
    assert len(result.fifo.goodput_series_bps) == 2
    assert len(result.fifo.goodput_series_bps[0]) == \
        int(result.fifo.duration_s)


@pytest.mark.benchmark(group="figure1")
def test_figure1_late_window_fairness(benchmark):
    """Convergence shape: over the last third of the run, Cebinae's
    per-second JFI should not be below FIFO's."""
    result = run_once(benchmark, figure1,
                      duration_s=bench_duration_s(30.0))

    def late_jfi(run):
        series = run.goodput_series_bps
        tail = len(series[0]) // 3
        values = [jain_fairness_index([flow[i] for flow in series])
                  for i in range(len(series[0]) - tail,
                                 len(series[0]))]
        return sum(values) / len(values)

    fifo = late_jfi(result.fifo)
    cebinae = late_jfi(result.cebinae)
    benchmark.extra_info["late_fifo_jfi"] = round(fifo, 3)
    benchmark.extra_info["late_cebinae_jfi"] = round(cebinae, 3)
    assert cebinae > fifo - 0.1
