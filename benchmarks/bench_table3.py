"""Table 3: Cebinae data-plane resource usage on a 32-port Tofino.

The resource model reproduces the published one- and two-stage rows
and the scalability argument of section 5.5: Cebinae's queue count is
constant in the number of flows, against linear for ideal fair
queuing."""

import pytest

from repro.core.resource_model import (estimate_resources,
                                       queues_required)

from conftest import run_once


def _table3_rows():
    return [estimate_resources(cache_stages=stages,
                               slots_per_port=4096)
            for stages in (1, 2)]


@pytest.mark.benchmark(group="table3")
def test_table3_resource_rows(benchmark):
    rows = run_once(benchmark, _table3_rows)
    print()
    print("Table 3: stages  pipe  PHV[b]  SRAM[KB]  TCAM[KB]  VLIW  Q")
    for usage in rows:
        print(f"         {usage.cache_stages:>6}  {usage.pipeline_stages:>4}"
              f"  {usage.phv_bits:>6}  {usage.sram_kb:>8}"
              f"  {usage.tcam_kb:>8}  {usage.vliw_instructions:>4}"
              f"  {usage.queues}")
        benchmark.extra_info[f"sram_kb_{usage.cache_stages}stage"] = \
            usage.sram_kb
    one, two = rows
    # Paper values (exact calibration checked in unit tests; here the
    # cross-row structure).
    assert two.sram_kb > one.sram_kb
    assert two.phv_bits - one.phv_bits == 105
    assert one.queues == two.queues == 64
    for usage in rows:
        assert usage.max_utilization < 0.25


@pytest.mark.benchmark(group="table3")
def test_queue_scalability_comparison(benchmark):
    """Section 5.5: constant queues vs flow count."""
    def sweep():
        return {flows: {mech: queues_required(flows, mech)
                        for mech in ("cebinae", "afq", "fq")}
                for flows in (10, 1000, 400_000)}

    table = run_once(benchmark, sweep)
    print()
    print("flows      cebinae  afq  ideal-fq")
    for flows, row in table.items():
        print(f"{flows:>9}  {row['cebinae']:>7}  {row['afq']:>3}  "
              f"{row['fq']:>8}")
    assert all(row["cebinae"] == 2 for row in table.values())
    assert table[400_000]["fq"] == 400_000
