"""Ablation: convergence speed vs the tax rate τ.

Section 3.2, example (2), models convergence as a geometric decay: a
flow holding ``excess``x its fair share is squeezed in
``ln(1/excess)/ln(1-τ)`` taxation steps.  This benchmark measures the
time for the 20.4 ms NewReno flow's per-second goodput to first fall
within 50% of fair share, across τ values, and checks the ordering the
model predicts (higher τ converges no slower)."""

from dataclasses import replace

import pytest

from repro.core.params import CebinaeParams
from repro.experiments.runner import Discipline, run_scenario
from repro.experiments.scenarios import DEFAULT_POLICY, ScenarioSpec

from conftest import bench_duration_s, run_once


def _convergence_time_s(result):
    """First second when both flows are within 50% of fair share."""
    series = result.goodput_series_bps
    fair = result.sim_rate_bps / len(series)
    for second in range(len(series[0])):
        rates = [flow[second] for flow in series]
        if all(abs(rate - fair) <= 0.5 * fair for rate in rates):
            return float(second)
    return float("inf")


def _run_sweep(duration_s):
    spec = ScenarioSpec(name="tax_ablation", rate_bps=100e6,
                        rtts_ms=(20.4, 40.0), buffer_mtus=350,
                        cca_mix=(("newreno", 1), ("newreno", 1)),
                        duration_s=duration_s)
    scaled = DEFAULT_POLICY.apply(spec)
    results = {}
    for tau in (0.01, 0.04, 0.08):
        params = replace(scaled.cebinae, tau=tau,
                         delta_port=min(2 * tau, 0.16))
        results[tau] = run_scenario(replace(scaled, cebinae=params),
                                    Discipline.CEBINAE,
                                    collect_series=True)
    return results


@pytest.mark.benchmark(group="ablation-tax")
def test_tax_rate_convergence(benchmark):
    results = run_once(benchmark, _run_sweep,
                       max(bench_duration_s(40.0), 20.0))
    print()
    print("tau    model steps (1.5x excess)   measured convergence")
    times = {}
    for tau, result in results.items():
        model = CebinaeParams(tau=tau).convergence_steps(1.5)
        measured = _convergence_time_s(result)
        times[tau] = measured
        print(f"{tau:.2f}   {model:10.1f}                 "
              f"{measured if measured != float('inf') else 'n/a':>6} s"
              f"   (JFI {result.jfi:.3f})")
        benchmark.extra_info[f"convergence_s_tau{tau}"] = measured
    # Ordering shape: the highest tax should converge at least as fast
    # as the lowest (ties allowed; both may converge immediately at
    # small scale).
    assert times[0.08] <= times[0.01] + 5.0
