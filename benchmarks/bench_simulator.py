"""Microbenchmarks of the substrate itself.

Not a paper artifact: these track the cost of the building blocks
(event engine, LBF admission, flow-cache updates) so performance
regressions in the simulator are visible.  Unlike the scenario
benchmarks these use pytest-benchmark's normal repeated timing."""

import pytest

from repro.core.lbf import FlowGroup, LeakyBucketFilter
from repro.core.params import CebinaeParams
from repro.heavyhitter.hashpipe import CebinaeFlowCache
from repro.netsim.engine import MILLISECOND, Simulator


@pytest.mark.benchmark(group="micro")
def test_engine_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(1000, tick)

        sim.schedule(0, tick)
        sim.run()
        return count[0]

    assert benchmark(run_10k_events) == 10_000


@pytest.mark.benchmark(group="micro")
def test_lbf_admission_throughput(benchmark):
    params = CebinaeParams(dt_ns=100 * MILLISECOND,
                           vdt_ns=MILLISECOND, l_ns=MILLISECOND)
    lbf = LeakyBucketFilter(params, 1e9)

    def admit_1k():
        for i in range(1000):
            lbf.admit(FlowGroup.TOP, 1500, i * 10_000)
        lbf.rotate(lbf.base_round_time_ns + params.dt_ns)

    benchmark(admit_1k)


@pytest.mark.benchmark(group="micro")
def test_flow_cache_update_throughput(benchmark):
    cache = CebinaeFlowCache(stages=2, slots_per_stage=2048)

    def update_1k():
        for i in range(1000):
            cache.update(i % 3000, 1500)

    benchmark(update_1k)
