"""Setup shim for environments without the ``wheel`` package.

The canonical metadata lives in pyproject.toml; this file only enables
the legacy ``pip install -e .`` code path (setup.py develop), which is
required in offline environments where PEP 660 editable installs cannot
build a wheel.
"""

from setuptools import setup

setup()
