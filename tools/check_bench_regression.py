"""Gate pytest-benchmark results against a committed baseline.

Usage::

    python tools/check_bench_regression.py BENCH_hotpath.json \
        benchmarks/BENCH_hotpath_baseline.json [--threshold 0.10]
    python tools/check_bench_regression.py BENCH_hotpath.json \
        benchmarks/BENCH_hotpath_baseline.json --update

The committed baseline and a CI run come from different machines, so
absolute medians are not comparable.  Instead each benchmark's median
is normalised by the geometric mean over the benchmarks common to both
files — a machine-speed factor multiplies every benchmark equally and
cancels out of the ratio — and the gate fails when any benchmark's
*normalised* cost grew by more than the threshold.  The trade-off is
explicit: a change that slows every hot path by the same factor is
invisible to this gate (nothing shifts relative to the geomean), but
the realistic regression — one code path getting slower — moves that
benchmark against its peers and is exactly what the ratio catches.

``--update`` rewrites the baseline from the current results (run it
locally after an intentional perf change and commit the diff).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Dict, List, Optional

#: Baseline document version; bump on layout changes.
BASELINE_SCHEMA_VERSION = 1


def load_medians(path: str) -> Dict[str, float]:
    """Per-benchmark median seconds from either file format.

    Accepts a raw pytest-benchmark JSON document (``benchmarks`` list)
    or a baseline written by ``--update`` (``medians`` mapping).
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if "medians" in data:
        version = data.get("schema_version")
        if version != BASELINE_SCHEMA_VERSION:
            raise ValueError(
                f"{path}: baseline schema_version {version!r} is not "
                f"{BASELINE_SCHEMA_VERSION}")
        return {str(name): float(value)
                for name, value in data["medians"].items()}
    medians: Dict[str, float] = {}
    for bench in data.get("benchmarks", ()):
        medians[str(bench["name"])] = float(bench["stats"]["median"])
    if not medians:
        raise ValueError(f"{path}: no benchmarks found")
    return medians


def write_baseline(path: str, medians: Dict[str, float]) -> None:
    document = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "note": "normalised-ratio baseline for "
                "tools/check_bench_regression.py; regenerate with "
                "--update after intentional perf changes",
        "medians": {name: medians[name] for name in sorted(medians)},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def normalised(medians: Dict[str, float],
               names: List[str]) -> Dict[str, float]:
    """Each median divided by the geomean over ``names``."""
    logs = [math.log(medians[name]) for name in names
            if medians[name] > 0]
    if not logs:
        raise ValueError("no positive medians to normalise against")
    geomean = math.exp(sum(logs) / len(logs))
    return {name: medians[name] / geomean for name in names}


def compare(current: Dict[str, float], baseline: Dict[str, float],
            threshold: float) -> List[str]:
    """Human-readable failures (empty = gate passes)."""
    common = sorted(set(current) & set(baseline))
    if not common:
        return ["no benchmarks in common between current run and "
                "baseline"]
    current_norm = normalised(current, common)
    baseline_norm = normalised(baseline, common)
    failures: List[str] = []
    for name in common:
        ratio = current_norm[name] / baseline_norm[name]
        marker = "REGRESSION" if ratio > 1.0 + threshold else "ok"
        print(f"  {name:<50} x{ratio:5.2f}  {marker}")
        if ratio > 1.0 + threshold:
            failures.append(
                f"{name}: normalised cost x{ratio:.2f} exceeds "
                f"+{threshold:.0%} threshold")
    only_baseline = sorted(set(baseline) - set(current))
    if only_baseline:
        print(f"  (baseline-only, skipped: {', '.join(only_baseline)})")
    only_current = sorted(set(current) - set(baseline))
    if only_current:
        print(f"  (new, unbaselined: {', '.join(only_current)})")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare pytest-benchmark medians against a "
                    "committed baseline using machine-independent "
                    "normalised ratios.")
    parser.add_argument("current", help="pytest-benchmark JSON output")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed normalised-cost growth "
                             "(default 0.10 = +10%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current "
                             "results instead of comparing")
    args = parser.parse_args(argv)

    current = load_medians(args.current)
    if args.update:
        write_baseline(args.baseline, current)
        print(f"wrote {args.baseline} ({len(current)} benchmark(s))")
        return 0
    baseline = load_medians(args.baseline)
    failures = compare(current, baseline, args.threshold)
    if failures:
        print(f"{len(failures)} benchmark regression(s):",
              file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("benchmark gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
