"""Gate pytest-benchmark results against a committed baseline.

Usage::

    python tools/check_bench_regression.py BENCH_hotpath.json \
        benchmarks/BENCH_hotpath_baseline.json [--threshold 0.10]
    python tools/check_bench_regression.py BENCH_hotpath.json \
        benchmarks/BENCH_hotpath_baseline.json --update

The committed baseline and a CI run come from different machines, so
absolute medians are not comparable.  Instead each benchmark's median
is normalised by the geometric mean over the benchmarks common to both
files — a machine-speed factor multiplies every benchmark equally and
cancels out of the ratio — and the gate fails when any benchmark's
*normalised* cost grew by more than the threshold.  The trade-off is
explicit: a change that slows every hot path by the same factor is
invisible to this gate (nothing shifts relative to the geomean), but
the realistic regression — one code path getting slower — moves that
benchmark against its peers and is exactly what the ratio catches.

``--update`` rewrites the baseline from the current results (run it
locally after an intentional perf change and commit the diff).

The comparison logic lives in :mod:`repro.experiments.bench_trend`
(shared with ``cebinae-repro bench report``); this script is the thin
CI gate over it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.bench_trend import (  # noqa: E402
    compare, load_medians, write_baseline)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare pytest-benchmark medians against a "
                    "committed baseline using machine-independent "
                    "normalised ratios.")
    parser.add_argument("current", help="pytest-benchmark JSON output")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed normalised-cost growth "
                             "(default 0.10 = +10%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current "
                             "results instead of comparing")
    args = parser.parse_args(argv)

    current = load_medians(args.current)
    if args.update:
        write_baseline(args.baseline, current)
        print(f"wrote {args.baseline} ({len(current)} benchmark(s))")
        return 0
    baseline = load_medians(args.baseline)
    failures = compare(current, baseline, args.threshold)
    if failures:
        print(f"{len(failures)} benchmark regression(s):",
              file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("benchmark gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
