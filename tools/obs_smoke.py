#!/usr/bin/env python3
"""CI smoke test for the repro.obs subsystem (the ``obs-smoke`` job).

Replays the observability contract on a figure-9-class scenario:

1. **Off-path purity** — running with the trace bus installed produces
   a ``ScenarioResult`` JSON byte-identical to a run without it, on
   both scheduler backends: tracing observes the simulation, never
   perturbs it.
2. **Trace determinism** — with tracing on, repeated runs and both
   scheduler backends emit byte-identical JSONL streams.
3. **Schema validity** — every emitted line round-trips through
   :func:`repro.obs.events.validate_record`.
4. **Overhead accounting** — wall-clock for the plain, bus-installed
   (all topics), and metrics-enabled runs lands in
   ``BENCH_obs_overhead.json`` (pytest-benchmark envelope) so the
   disabled-path ≤2% budget is reviewable per PR.

Exit status 0 on success; any contract violation raises.

Usage: PYTHONPATH=src python tools/obs_smoke.py [--duration 2.0]
                                                [--out BENCH_obs_overhead.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.runner import Discipline, run_scenario
from repro.experiments.scenarios import DEFAULT_POLICY, ScenarioSpec
from repro.obs import bus as obs_bus
from repro.obs import metrics as obs_metrics
from repro.obs.events import TOPICS, validate_record
from repro.obs.sinks import MemorySink, encode_record


def figure9_spec(duration_s: float) -> ScenarioSpec:
    return ScenarioSpec(name="figure9_rtt64", rate_bps=400e6,
                        rtts_ms=(256.0, 64.0), buffer_mtus=2000,
                        cca_mix=(("cubic", 4), ("cubic", 4)),
                        duration_s=duration_s)


def run_once(duration_s: float, traced: bool,
             scheduler: str) -> Tuple[str, List[str], float]:
    """One scenario run: (result JSON, JSONL lines, wall seconds)."""
    os.environ["REPRO_SCHEDULER"] = scheduler
    scaled = DEFAULT_POLICY.apply(figure9_spec(duration_s))
    sink = MemorySink()
    start = time.perf_counter()
    if traced:
        bus = obs_bus.TraceBus()
        bus.subscribe(TOPICS, sink)
        with obs_bus.tracing(bus):
            result = run_scenario(scaled, Discipline.CEBINAE)
        bus.close()
    else:
        result = run_scenario(scaled, Discipline.CEBINAE)
    wall_s = time.perf_counter() - start
    payload = json.dumps(result.to_dict(), sort_keys=True,
                         separators=(",", ":"))
    return payload, [encode_record(r) for r in sink.records], wall_s


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--out", default="BENCH_obs_overhead.json")
    args = parser.parse_args(argv)
    duration = args.duration

    # 1. Off-path purity: bus installed vs not, per scheduler backend.
    plain: dict = {}
    walls: dict = {}
    for scheduler in ("heap", "calendar"):
        plain[scheduler], lines, walls["plain", scheduler] = run_once(
            duration, traced=False, scheduler=scheduler)
        assert not lines
    assert plain["heap"] == plain["calendar"], \
        "ScenarioResult JSON differs across scheduler backends"

    traced: dict = {}
    trace_lines: dict = {}
    for scheduler in ("heap", "calendar"):
        traced[scheduler], trace_lines[scheduler], \
            walls["traced", scheduler] = run_once(
                duration, traced=True, scheduler=scheduler)
        assert traced[scheduler] == plain[scheduler], \
            f"tracing perturbed the {scheduler} run's ScenarioResult"
        assert trace_lines[scheduler], "tracing on but no records"

    # 2. Trace determinism: rerun + cross-backend byte identity.
    rerun, rerun_lines, _ = run_once(duration, traced=True,
                                     scheduler="heap")
    assert rerun == traced["heap"]
    assert rerun_lines == trace_lines["heap"], \
        "trace JSONL differs between identical runs"
    assert trace_lines["heap"] == trace_lines["calendar"], \
        "trace JSONL differs across scheduler backends"

    # 3. Schema validity of every emitted line.
    for line in trace_lines["heap"]:
        validate_record(json.loads(line))

    # 4. Metrics-enabled run: registry populated, snapshot round-trips.
    registry = obs_metrics.enable()
    try:
        start = time.perf_counter()
        metered, _, _ = run_once(duration, traced=False,
                                 scheduler="heap")
        walls["metered", "heap"] = time.perf_counter() - start
    finally:
        obs_metrics.disable()
    assert metered == plain["heap"], "metrics perturbed the run"
    snapshot = registry.snapshot()
    reloaded = obs_metrics.load_snapshot(snapshot)
    assert reloaded.snapshot() == snapshot, \
        "metrics snapshot does not round-trip"
    assert registry.counter("sim_runs_total").value >= 1

    bench = {"benchmarks": [{
        "group": "obs",
        "name": f"obs_smoke_figure9_{duration:g}s",
        "extra_info": {
            "duration_s": duration,
            "records": len(trace_lines["heap"]),
            "wall_plain_s": walls["plain", "heap"],
            "wall_traced_s": walls["traced", "heap"],
            "wall_metered_s": walls["metered", "heap"],
            "traced_overhead_ratio":
                walls["traced", "heap"] / walls["plain", "heap"],
        },
    }]}
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(bench, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"obs smoke OK: {len(trace_lines['heap'])} records, "
          f"result JSON byte-identical off/on and across backends; "
          f"overhead written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
