#!/usr/bin/env python3
"""CI smoke test for the repro.obs subsystem (the ``obs-smoke`` job).

Replays the observability contract on a figure-9-class scenario:

1. **Off-path purity** — running with the trace bus installed produces
   a ``ScenarioResult`` JSON byte-identical to a run without it, on
   both scheduler backends and with ``REPRO_DEBUG`` invariants on:
   tracing observes the simulation, never perturbs it.
2. **Trace determinism** — with tracing on, repeated runs and both
   scheduler backends emit byte-identical JSONL streams, after
   :func:`repro.obs.events.canonical_dict` strips the schema's one
   sanctioned wall-clock field (``SpanEvent.wall_s``).
3. **Schema validity** — every emitted line round-trips through
   :func:`repro.obs.events.validate_record`.
4. **Span structure** — the emitted spans form a valid tree
   (:func:`repro.obs.spans.span_tree`) with exactly one ``run`` root
   whose direct ``phase`` children account for the run's wall time to
   within 5%.
5. **Overhead accounting** — wall-clock for the plain, bus-installed
   (all topics), and metrics-enabled runs lands in
   ``BENCH_obs_overhead.json`` (pytest-benchmark envelope) so the
   disabled-path ≤2% budget is reviewable per PR.

Exit status 0 on success; any contract violation raises.

Usage: PYTHONPATH=src python tools/obs_smoke.py [--duration 2.0]
                                                [--out BENCH_obs_overhead.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import invariants
from repro.experiments.runner import Discipline, run_scenario
from repro.experiments.scenarios import DEFAULT_POLICY, ScenarioSpec
from repro.obs import bus as obs_bus
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.events import TOPICS, canonical_dict, validate_record
from repro.obs.sinks import MemorySink, encode_record


def figure9_spec(duration_s: float) -> ScenarioSpec:
    return ScenarioSpec(name="figure9_rtt64", rate_bps=400e6,
                        rtts_ms=(256.0, 64.0), buffer_mtus=2000,
                        cca_mix=(("cubic", 4), ("cubic", 4)),
                        duration_s=duration_s)


def run_once(duration_s: float, traced: bool,
             scheduler: str) -> Tuple[str, List[str], float]:
    """One scenario run: (result JSON, JSONL lines, wall seconds)."""
    os.environ["REPRO_SCHEDULER"] = scheduler
    scaled = DEFAULT_POLICY.apply(figure9_spec(duration_s))
    sink = MemorySink()
    start = time.perf_counter()
    if traced:
        bus = obs_bus.TraceBus()
        bus.subscribe(TOPICS, sink)
        with obs_bus.tracing(bus):
            result = run_scenario(scaled, Discipline.CEBINAE)
        bus.close()
    else:
        result = run_scenario(scaled, Discipline.CEBINAE)
    wall_s = time.perf_counter() - start
    payload = json.dumps(result.to_dict(), sort_keys=True,
                         separators=(",", ":"))
    return payload, [encode_record(r) for r in sink.records], wall_s


def canonical(lines: List[str]) -> List[str]:
    """Trace lines minus their sanctioned wall-clock fields."""
    return [json.dumps(canonical_dict(json.loads(line)),
                       sort_keys=True, separators=(",", ":"))
            for line in lines]


def check_span_tree(lines: List[str]) -> int:
    """Validate span structure; returns the number of span records."""
    records = [json.loads(line) for line in lines]
    spans = [data for data in records if data.get("type") == "SpanEvent"]
    assert spans, "tracing on but no span records"
    tree = obs_spans.span_tree(spans)    # raises on structural defects
    roots = [tree["nodes"][root_id] for root_id in tree["roots"]]
    run_roots = [node for node in roots if node["kind"] == "run"]
    assert len(run_roots) == 1, \
        f"expected exactly one run root, got {len(run_roots)}"
    run = run_roots[0]
    assert run["status"] == "ok" and run["count"] > 0
    phases = [tree["nodes"][child] for child in run["children"]
              if tree["nodes"][child]["kind"] == "phase"]
    assert phases, "run root has no phase children"
    phase_wall = sum(node["wall_s"] for node in phases)
    # The run's wall time is its phases plus negligible glue between
    # them; 5% is the contract's slack for that glue.
    assert phase_wall <= run["wall_s"] * 1.0001, \
        "phase wall-times exceed the run's"
    assert phase_wall >= run["wall_s"] * 0.95, \
        (f"phase wall-times ({phase_wall:.4f}s) cover less than 95% "
         f"of the run ({run['wall_s']:.4f}s)")
    engines = [node for node in tree["nodes"].values()
               if node["kind"] == "engine"]
    assert engines and all(node["name"] == "events" for node in engines), \
        "engine spans must be named 'events' (backend-neutral)"
    return len(spans)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--out", default="BENCH_obs_overhead.json")
    args = parser.parse_args(argv)
    duration = args.duration

    # 1. Off-path purity: bus installed vs not, per scheduler backend.
    plain: dict = {}
    walls: dict = {}
    for scheduler in ("heap", "calendar"):
        plain[scheduler], lines, walls["plain", scheduler] = run_once(
            duration, traced=False, scheduler=scheduler)
        assert not lines
    assert plain["heap"] == plain["calendar"], \
        "ScenarioResult JSON differs across scheduler backends"

    traced: dict = {}
    trace_lines: dict = {}
    for scheduler in ("heap", "calendar"):
        traced[scheduler], trace_lines[scheduler], \
            walls["traced", scheduler] = run_once(
                duration, traced=True, scheduler=scheduler)
        assert traced[scheduler] == plain[scheduler], \
            f"tracing perturbed the {scheduler} run's ScenarioResult"
        assert trace_lines[scheduler], "tracing on but no records"

    # 1b. The same purity with REPRO_DEBUG invariants active: debug
    # checks and tracing may not interact (the instruction streams are
    # independent by construction; this replays it).
    previous_debug = invariants.set_debug(True)
    try:
        debug_plain, _, _ = run_once(duration, traced=False,
                                     scheduler="heap")
        debug_traced, debug_lines, _ = run_once(duration, traced=True,
                                                scheduler="heap")
    finally:
        invariants.set_debug(previous_debug)
    assert debug_traced == debug_plain, \
        "tracing perturbed the REPRO_DEBUG run's ScenarioResult"
    assert canonical(debug_lines) == canonical(trace_lines["heap"]), \
        "trace JSONL differs between debug and non-debug runs"

    # 2. Trace determinism: rerun + cross-backend identity, after
    # stripping the sanctioned wall-clock field (SpanEvent.wall_s).
    rerun, rerun_lines, _ = run_once(duration, traced=True,
                                     scheduler="heap")
    assert rerun == traced["heap"]
    assert canonical(rerun_lines) == canonical(trace_lines["heap"]), \
        "trace JSONL differs between identical runs"
    assert canonical(trace_lines["heap"]) \
        == canonical(trace_lines["calendar"]), \
        "trace JSONL differs across scheduler backends"

    # 3. Schema validity of every emitted line.
    for line in trace_lines["heap"]:
        validate_record(json.loads(line))

    # 3b. Span structure: valid tree, one run root, phases cover ≥95%
    # of the run's wall time, backend-neutral engine naming.
    span_records = check_span_tree(trace_lines["heap"])

    # 4. Metrics-enabled run: registry populated, snapshot round-trips.
    registry = obs_metrics.enable()
    try:
        start = time.perf_counter()
        metered, _, _ = run_once(duration, traced=False,
                                 scheduler="heap")
        walls["metered", "heap"] = time.perf_counter() - start
    finally:
        obs_metrics.disable()
    assert metered == plain["heap"], "metrics perturbed the run"
    snapshot = registry.snapshot()
    reloaded = obs_metrics.load_snapshot(snapshot)
    assert reloaded.snapshot() == snapshot, \
        "metrics snapshot does not round-trip"
    assert registry.counter("sim_runs_total").value >= 1

    bench = {"benchmarks": [{
        "group": "obs",
        "name": f"obs_smoke_figure9_{duration:g}s",
        "extra_info": {
            "duration_s": duration,
            "records": len(trace_lines["heap"]),
            "span_records": span_records,
            "wall_plain_s": walls["plain", "heap"],
            "wall_traced_s": walls["traced", "heap"],
            "wall_metered_s": walls["metered", "heap"],
            "traced_overhead_ratio":
                walls["traced", "heap"] / walls["plain", "heap"],
        },
    }]}
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(bench, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"obs smoke OK: {len(trace_lines['heap'])} records "
          f"({span_records} spans), result JSON byte-identical off/on, "
          f"across backends, and under REPRO_DEBUG; overhead written "
          f"to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
