#!/usr/bin/env python3
"""CI chaos drill for the sweep fabric (the ``chaos-smoke`` job).

Proves the fabric's end-to-end recovery guarantee on real simulations:

1. Build a small suite (12 scenario points) in a temp directory and
   run it once, uninterrupted, for the reference merged document.
2. ``sweep init`` a second sweep over the same suite and launch three
   worker subprocesses against it.
3. Murder the fleet mid-flight: SIGKILL worker 0 (orphaned lease, no
   flush), SIGTERM worker 1 (graceful: lease released, completed
   results flushed), and SIGTERM worker 2 a little later.
4. ``sweep resume --workers 2`` and assert: zero pending, zero
   quarantined, zero leases left behind, no duplicate or missing
   fingerprints, and a merged result document **byte-identical** to
   the uninterrupted reference.

Artifacts (manifest, final status, worker/resume metrics, both merged
documents) are copied to ``--out-dir`` for CI upload.

Exit status 0 on success; any violated guarantee raises.

Usage: PYTHONPATH=src python tools/chaos_smoke.py [--out-dir DIR]
                                                  [--duration 6.0]
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sweep.cli import main as sweep_main           # noqa: E402
from repro.sweep.manifest import SweepDir                # noqa: E402

#: (cca_mix, disciplines) axes: 12 points = 6 scenarios x 2 disciplines.
MIXES = (
    [["newreno", 1], ["newreno", 1]],
    [["newreno", 2], ["vegas", 1]],
    [["cubic", 1], ["newreno", 1]],
)


def write_suite(directory: Path, duration_s: float) -> None:
    directory.mkdir(parents=True)
    for index, mix in enumerate(MIXES):
        (directory / f"chaos{index}.json").write_text(json.dumps({
            "schema_version": 1,
            "name": f"chaos{index}",
            "scenario": {"rate_bps": 100e6,
                         "rtts_ms": [20, 30],
                         "buffer_mtus": 60,
                         "cca_mix": mix,
                         "duration_s": duration_s},
            "policy": {"target_rate_bps": 5e6, "max_rate_bps": 5e6},
            "disciplines": ["fifo", "cebinae"],
            "repeats": 2,
        }, indent=2))


def spawn_worker(sweep_dir: Path, worker_id: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(__file__).resolve().parent.parent / "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep))
    return subprocess.Popen(
        [sys.executable, "-m", "repro.sweep.cli", "work",
         str(sweep_dir), "--worker-id", worker_id,
         "--expiry-s", "300"],
        env=env)


def wait_for_done(sweep_dir: Path, minimum: int, timeout_s: float,
                  procs) -> int:
    """Block until ``minimum`` tasks are done (or every worker exited)."""
    deadline = time.monotonic() + timeout_s  # simlint: allow[D103] chaos-drill orchestration
    while time.monotonic() < deadline:  # simlint: allow[D103] chaos-drill orchestration
        done = SweepDir(sweep_dir).status()["counts"]["done"]
        if done >= minimum:
            return done
        if all(proc.poll() is not None for proc in procs):
            return done
        time.sleep(0.05)
    raise AssertionError(
        f"timed out waiting for {minimum} completed task(s)")


def watch_json(sweep_dir: Path):
    """One ``sweep watch --once --json`` pass: (document, raw text)."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = sweep_main(["watch", str(sweep_dir), "--once", "--json"])
    assert code == 0, f"watch of {sweep_dir} exited {code}"
    text = buffer.getvalue()
    return json.loads(text), text


def merge(sweep_dir: Path, out: Path) -> dict:
    code = sweep_main(["merge", str(sweep_dir), "--out", str(out)])
    assert code == 0, f"merge of {sweep_dir} exited {code}"
    return json.loads(out.read_text())


def run_drill(root: Path, out_dir: Path, duration_s: float) -> None:
    suite = root / "suite"
    write_suite(suite, duration_s)

    # 1. Uninterrupted reference.
    reference_dir = root / "reference"
    assert sweep_main(["init", str(reference_dir), "--suite",
                       str(suite)]) == 0
    assert sweep_main(["resume", str(reference_dir), "--quiet"]) == 0
    reference = merge(reference_dir, out_dir / "merged_reference.json")
    total = len(reference["results"])
    print(f"[chaos] reference sweep done: {total} task(s)")

    # 2. The victim sweep + three workers.
    victim_dir = root / "victim"
    assert sweep_main(["init", str(victim_dir), "--suite",
                       str(suite)]) == 0
    workers = [spawn_worker(victim_dir, f"chaos-w{i}")
               for i in range(3)]

    # 3. Murder schedule: SIGKILL w0 early (orphaned lease), SIGTERM
    #    w1 right after (graceful flush), SIGTERM w2 a beat later.
    done_at_kill = wait_for_done(victim_dir, 2, 120.0, workers)
    workers[0].send_signal(signal.SIGKILL)
    print(f"[chaos] SIGKILLed chaos-w0 at {done_at_kill} done")
    workers[1].send_signal(signal.SIGTERM)
    wait_for_done(victim_dir, min(total, done_at_kill + 2), 120.0,
                  [workers[2]])
    workers[2].send_signal(signal.SIGTERM)
    exit_codes = [proc.wait() for proc in workers]
    print(f"[chaos] worker exit codes: {exit_codes}")
    assert exit_codes[0] == -signal.SIGKILL
    # SIGTERMed workers exit 3 (interrupted) — or 0 if the signal
    # landed after their final scan.
    assert exit_codes[1] in (0, 3) and exit_codes[2] in (0, 3)

    interrupted = SweepDir(victim_dir).status()
    print(f"[chaos] post-murder status: {interrupted['counts']}")
    assert interrupted["counts"]["done"] < total, \
        "murder schedule failed to interrupt the sweep; raise --duration"

    # Mid-flight fleet view: the watch aggregate must agree with the
    # sweep's own status even over a half-murdered metrics directory.
    watch_mid, watch_mid_text = watch_json(victim_dir)
    assert watch_mid["counts"] == interrupted["counts"], \
        (watch_mid["counts"], interrupted["counts"])
    assert watch_mid["total"] == total
    (out_dir / "watch_post_murder.json").write_text(watch_mid_text)

    # 4. Resume and verify every guarantee.
    assert sweep_main(["resume", str(victim_dir), "--workers", "2",
                       "--quiet"]) == 0
    final = SweepDir(victim_dir).status()
    assert final["counts"]["done"] == total, final
    assert final["counts"]["pending"] == 0, final
    assert final["counts"]["quarantined"] == 0, final
    assert list((victim_dir / "leases").glob("*.lease")) == []

    # No duplicated or missing results: one cache entry per manifest
    # fingerprint, exactly.
    manifest = SweepDir(victim_dir).load_manifest()
    fingerprints = {task.fingerprint for task in manifest.tasks}
    entries = {path.stem
               for path in (victim_dir / "cache").glob("*.json")}
    assert entries == fingerprints, (
        f"cache entries != manifest: extra={entries - fingerprints} "
        f"missing={fingerprints - entries}")

    # Post-resume fleet view: nothing lost, nothing duplicated, and
    # the canonical --once --json document is byte-stable on a
    # quiescent sweep (no live leases, wall clock out of the picture).
    watch_final, watch_final_text = watch_json(victim_dir)
    assert watch_final["counts"] == final["counts"], \
        (watch_final["counts"], final["counts"])
    assert watch_final["counts"]["done"] == total
    assert watch_final["integrity"] == {"missing_results": 0,
                                        "orphan_results": 0}, \
        watch_final["integrity"]
    assert watch_final["snapshot_errors"] == []
    _, watch_again_text = watch_json(victim_dir)
    assert watch_again_text == watch_final_text, \
        "watch --once --json is not byte-stable on a finished sweep"
    (out_dir / "watch_final.json").write_text(watch_final_text)
    print(f"[chaos] watch aggregate: 0 lost, 0 duplicated "
          f"({total} task(s) accounted for)")

    merged = merge(victim_dir, out_dir / "merged_resumed.json")
    assert merged["results"] == reference["results"], \
        "resumed merge differs from the uninterrupted reference"
    identical = (out_dir / "merged_resumed.json").read_bytes() == \
        (out_dir / "merged_reference.json").read_bytes()
    assert identical, "merged documents are not byte-identical"
    print(f"[chaos] resumed sweep merged byte-identically "
          f"({total} task(s), 0 lost, 0 duplicated)")

    # 5. Ship the artifacts.
    shutil.copy(victim_dir / "manifest.json",
                out_dir / "manifest.json")
    (out_dir / "status_final.json").write_text(
        json.dumps(final, indent=2, sort_keys=True) + "\n")
    (out_dir / "status_post_murder.json").write_text(
        json.dumps(interrupted, indent=2, sort_keys=True) + "\n")
    metrics_out = out_dir / "metrics"
    if (victim_dir / "metrics").is_dir():
        shutil.copytree(victim_dir / "metrics", metrics_out,
                        dirs_exist_ok=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Chaos drill: murder sweep workers, resume, "
                    "demand byte-identical results.")
    parser.add_argument("--out-dir", default="CHAOS_artifacts",
                        help="artifact directory for CI upload")
    parser.add_argument("--duration", type=float, default=6.0,
                        help="simulated seconds per scenario point; "
                             "longer widens the mid-task kill window")
    args = parser.parse_args(argv)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as root:
        run_drill(Path(root), out_dir, args.duration)
    print("[chaos] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
