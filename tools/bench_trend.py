"""Fold BENCH_*.json artifacts into one trend table (CI entry point).

Usage::

    python tools/bench_trend.py BENCH_hotpath.json BENCH_hybrid.json \
        BENCH_obs_overhead.json \
        --baseline benchmarks/BENCH_hotpath_baseline.json \
        --out BENCH_trend.json --markdown BENCH_trend.md

Thin wrapper over :func:`repro.experiments.bench_trend.report_main`
(also reachable as ``cebinae-repro bench report``); see that module
for the artifact shapes and the normalised-ratio flagging rule.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.bench_trend import report_main  # noqa: E402

if __name__ == "__main__":
    sys.exit(report_main(sys.argv[1:]))
