#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md's Table 2 rows from results_table2.log.

Usage: python tools/make_table2_md.py [results_table2.log]

Parses the CLI harness's per-row summary lines and emits the markdown
table body with measured (paper) JFI triplets, so the document never
contains hand-copied numbers.
"""

import re
import sys

from repro.experiments.table2 import TABLE2_ROWS
from repro.experiments.runner import Discipline

LINE = re.compile(
    r"table2_row(\d+)\s+(fifo|fq|cebinae): JFI ([0-9.]+) "
    r"\(paper ([0-9.]+)\)\s+goodput ([0-9.]+) Mbps of ([0-9.]+)")

NOTES = {
    4: "long-RTT row",
    7: "**headline: starvation repaired**",
    8: "**headline** (Figure 7)",
    9: "flow-scaled 129→N",
    12: "flow-scaled",
    13: "flow-scaled 1026→N; degenerate at scale",
    16: "deep-buffer BBR row",
    20: "(Figure 8b config)",
    24: "flow-scaled",
    25: "flow-scaled",
}


def main(path="results_table2.log"):
    measured = {}
    goodputs = {}
    for line in open(path):
        match = LINE.search(line)
        if not match:
            continue
        row, disc, jfi, paper, goodput, rate = match.groups()
        measured[(int(row), disc)] = (float(jfi), float(paper))
        goodputs[(int(row), disc)] = (float(goodput), float(rate))
    print("| row | config (paper) | JFI FIFO | JFI FQ | JFI Cebinae "
          "| goodput ceb/fifo | notes |")
    print("|---|---|---|---|---|---|---|")
    for index, row in enumerate(TABLE2_ROWS, start=1):
        spec = row.spec
        mix = " + ".join(f"{cca.capitalize()} {count}"
                         for cca, count in spec.cca_mix)
        rtt = "/".join(f"{r:g}" for r in spec.rtts_ms)
        config = (f"{spec.rate_bps / 1e6:.0f}M, {mix}, RTT {rtt}, "
                  f"buf {spec.buffer_mtus}")
        cells = []
        for disc in ("fifo", "fq", "cebinae"):
            if (index, disc) in measured:
                jfi, paper = measured[(index, disc)]
                cells.append(f"{jfi:.3f} ({paper:.3f})")
            else:
                cells.append("—")
        ratio = "—"
        if (index, "cebinae") in goodputs and (index, "fifo") in goodputs:
            ceb = goodputs[(index, "cebinae")][0]
            fifo = goodputs[(index, "fifo")][0]
            if fifo > 0:
                ratio = f"{ceb / fifo:.3f}"
        note = NOTES.get(index, "")
        print(f"| {index} | {config} | {cells[0]} | {cells[1]} | "
              f"{cells[2]} | {ratio} | {note} |")


if __name__ == "__main__":
    main(*sys.argv[1:])
