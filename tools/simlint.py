#!/usr/bin/env python3
"""Standalone entry point for simlint.

Usage::

    python tools/simlint.py src            # lint the source tree
    python tools/simlint.py --list-rules   # show the rule catalog
    python tools/simlint.py --json src     # machine-readable (CI)

Equivalent to ``cebinae-repro lint``; this wrapper only ensures
``repro`` is importable when the package is not installed.
"""

import sys
from pathlib import Path

try:
    from repro.analysis.cli import main
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent
                           / "src"))
    from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
