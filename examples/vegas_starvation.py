#!/usr/bin/env python3
"""Rescuing delay-based flows from loss-based aggressors (Figure 7).

TCP Vegas keeps only a few packets queued and retreats as soon as it
sees queueing delay; a single loss-based NewReno flow that fills the
buffer starves an entire population of Vegas flows.  Cebinae observes
that the NewReno flow is the port's heavy hitter, taxes it, and the
Vegas flows grow into the released headroom — restoring fairness
without touching either end host.

Run:
    python examples/vegas_starvation.py
"""

from repro.core import CebinaeParams, cebinae_factory
from repro.fairness import jain_fairness_index
from repro.netsim import (DropTailQueue, FlowMonitor, Simulator,
                          build_dumbbell, seconds)
from repro.tcp import connect_flow, expand_mix

BOTTLENECK_BPS = 50e6
RTT_S = 0.1
BUFFER_MTUS = 425          # The paper's 850 MTUs, scaled 2x.
NUM_VEGAS = 16
DURATION_S = 60.0


def run(label, queue_factory):
    sim = Simulator()
    mix = expand_mix([("vegas", NUM_VEGAS), ("newreno", 1)])
    dumbbell = build_dumbbell([seconds(RTT_S)] * len(mix),
                              BOTTLENECK_BPS, queue_factory, sim=sim)
    monitor = FlowMonitor(sim)
    flows = [connect_flow(dumbbell.senders[i], dumbbell.receivers[i],
                          cca, monitor=monitor, src_port=10_000 + i)
             for i, cca in enumerate(mix)]
    sim.run(until_ns=seconds(DURATION_S))
    goodputs = [monitor.goodputs_bps(seconds(DURATION_S))[f.flow_id]
                for f in flows]
    vegas = goodputs[:NUM_VEGAS]
    reno = goodputs[NUM_VEGAS]
    print(f"{label}:")
    print(f"  16x Vegas: avg {sum(vegas) / NUM_VEGAS / 1e6:5.2f} Mbps "
          f"(min {min(vegas) / 1e6:.2f})")
    print(f"  1x NewReno: {reno / 1e6:5.2f} Mbps "
          f"({reno / sum(goodputs):.0%} of the link)")
    print(f"  JFI {jain_fairness_index(goodputs):.3f}\n")


def main():
    run("FIFO drop-tail",
        lambda spec: DropTailQueue.from_mtu_count(BUFFER_MTUS))
    params = CebinaeParams.for_link(
        BOTTLENECK_BPS, BUFFER_MTUS * 1500, max_rtt_ns=seconds(RTT_S),
        tau=0.02, delta_port=0.04, delta_flow=0.02,
        min_bottom_rate_fraction=0.02)
    run("Cebinae", cebinae_factory(params=params,
                                   buffer_mtus=BUFFER_MTUS))


if __name__ == "__main__":
    main()
