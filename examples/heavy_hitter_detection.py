#!/usr/bin/env python3
"""Bottleneck-flow detection on a backbone-scale trace (Figure 13).

Cebinae's only per-flow state is a passive, multi-stage flow cache.
This example replays a synthetic 10 Gbps backbone trace (Zipf flow
rates, >400k flows/min — the statistical shape of the paper's CAIDA
traces) through caches of different sizes, and reports how accurately
the ⊤ (bottlenecked) flows are detected.

The headline properties: false positives are structurally ~0 (counts
can only undercount, so a flow can't look bigger than it is), and even
a 2-stage x 2048-slot cache — a fraction of one switch SRAM block —
keeps false negatives low at 400k flows/min, roughly 1000x beyond what
per-flow-queue schemes can track.

Run:
    python examples/heavy_hitter_detection.py
"""

from repro.heavyhitter import evaluate_detection


def main():
    print("⊤-flow detection on a synthetic 10 Gbps backbone trace")
    print(f"{'stages':>7} {'slots':>6} {'interval':>9} "
          f"{'FPR':>10} {'FNR':>8}")
    for stages, slots in ((1, 2048), (2, 2048), (4, 2048), (2, 512)):
        for interval_ms in (20, 100):
            result = evaluate_detection(
                stages=stages, slots_per_stage=slots,
                round_interval_ms=interval_ms, trials=3,
                trace_duration_s=0.3, flows_per_minute=400_000)
            print(f"{stages:>7} {slots:>6} {interval_ms:>7}ms "
                  f"{result.false_positive_rate:>10.2e} "
                  f"{result.false_negative_rate:>8.4f}")


if __name__ == "__main__":
    main()
