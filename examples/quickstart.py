#!/usr/bin/env python3
"""Quickstart: watch Cebinae repair RTT unfairness on one bottleneck.

This is the paper's Figure 1 in miniature: two TCP NewReno flows with
different round-trip times share a bottleneck.  Under FIFO the
short-RTT flow wins a persistently larger share; with Cebinae on the
bottleneck port, the router detects the dominant (bottlenecked) flow
with its flow cache, taxes it, and the other flow grows into the freed
headroom.

Run:
    python examples/quickstart.py
"""

from repro.core import CebinaeParams, cebinae_factory
from repro.fairness import jain_fairness_index
from repro.netsim import (DropTailQueue, FlowMonitor, Simulator,
                          build_dumbbell, seconds)
from repro.tcp import connect_flow

BOTTLENECK_BPS = 25e6          # A scaled-down 100 Mbps-class link.
RTTS_S = (0.0204, 0.040)       # The paper's 20.4 ms vs 40 ms.
BUFFER_MTUS = 87               # 350 MTUs scaled with the bandwidth.
DURATION_S = 40.0


def run(label, bottleneck_queue_factory):
    """Simulate the two-flow dumbbell and report per-flow goodput."""
    sim = Simulator()
    dumbbell = build_dumbbell(
        rtts_ns=[seconds(rtt) for rtt in RTTS_S],
        bottleneck_rate_bps=BOTTLENECK_BPS,
        bottleneck_queue=bottleneck_queue_factory,
        sim=sim)
    monitor = FlowMonitor(sim)
    flows = [
        connect_flow(dumbbell.senders[i], dumbbell.receivers[i],
                     "newreno", monitor=monitor, src_port=10_000 + i)
        for i in range(len(RTTS_S))
    ]
    sim.run(until_ns=seconds(DURATION_S))
    goodputs = [monitor.goodputs_bps(seconds(DURATION_S))[flow.flow_id]
                for flow in flows]
    print(f"{label}:")
    for rtt, goodput in zip(RTTS_S, goodputs):
        print(f"  RTT {rtt * 1e3:5.1f} ms -> {goodput / 1e6:6.2f} Mbps")
    print(f"  total {sum(goodputs) / 1e6:.2f} Mbps, "
          f"JFI {jain_fairness_index(goodputs):.3f}\n")
    return goodputs


def main():
    run("FIFO drop-tail",
        lambda spec: DropTailQueue.from_mtu_count(BUFFER_MTUS))

    # Cebinae parameters: thresholds/tax scaled for the 4x bandwidth
    # reduction (see DESIGN.md, 'Tax scaling'); timing derived from the
    # buffer drain time per Equation (2).
    params = CebinaeParams.for_link(
        BOTTLENECK_BPS, BUFFER_MTUS * 1500,
        max_rtt_ns=seconds(max(RTTS_S)),
        tau=0.04, delta_port=0.08, delta_flow=0.04,
        min_bottom_rate_fraction=0.02)
    run("Cebinae", cebinae_factory(params=params,
                                   buffer_mtus=BUFFER_MTUS))


if __name__ == "__main__":
    main()
