#!/usr/bin/env python3
"""Global max-min fairness over multiple bottlenecks (Figure 11).

Eight NewReno flows cross three bottleneck links in a 'Parking Lot'
topology, contending with Bic, Vegas, and Cubic cross-traffic at each
hop.  No single router can compute the global max-min allocation, but
per Definition 2 each link only needs local information: taxing its
locally-maximal flows pushes the whole network toward the global
water-filling optimum, computed here exactly for comparison.

Run:
    python examples/multi_bottleneck.py
"""

from repro.experiments.figures import figure11
from repro.experiments.runner import Discipline


def show(result):
    print(f"{result.discipline.value.upper()}: normalised JFI "
          f"{result.normalized_jfi:.3f} (1.0 = ideal max-min)")
    groups = {}
    for label, rate, ideal in zip(result.flow_labels,
                                  result.goodputs_bps,
                                  result.ideal_bps):
        key = label.rstrip("0123456789")
        groups.setdefault(key, []).append((rate, ideal))
    for key, values in groups.items():
        avg_rate = sum(rate for rate, _ in values) / len(values)
        ideal = values[0][1]
        print(f"  {key:>6} x{len(values)}: avg {avg_rate / 1e6:5.2f} "
              f"Mbps (ideal {ideal / 1e6:5.2f})")
    print()


def main():
    print("Parking lot: 8 NewReno long flows vs 2 Bic / 8 Vegas / "
          "4 Cubic cross flows on three 25 Mbps bottlenecks\n")
    for discipline in (Discipline.FIFO, Discipline.CEBINAE):
        show(figure11(discipline=discipline, duration_s=40.0))


if __name__ == "__main__":
    main()
