#!/usr/bin/env python3
"""The paper's section 7 extensions: per-flow tracking and adaptive τ.

Three Cebinae variants run the same scenario — a Cubic and a BBR
aggressor against a Vegas crowd:

* **group** — the paper's shipped design: one shared allocation for
  all bottlenecked (⊤) flows;
* **per-flow** — the section 7 extension: each ⊤ flow is taxed against
  its own measured rate, so two unequal aggressors cannot fight inside
  a shared budget;
* **adaptive** — a τ supervisor that damps oscillation and escalates
  on stagnation, per section 7's "fine-grained adaptation".

Run:
    python examples/extensions_demo.py
"""

from repro.core import (CebinaeParams, adaptive_cebinae_factory,
                        cebinae_factory, perflow_cebinae_factory)
from repro.fairness import jain_fairness_index
from repro.netsim import (DropTailQueue, FlowMonitor, Simulator,
                          build_dumbbell, seconds)
from repro.tcp import connect_flow, expand_mix

RATE_BPS = 20e6
RTT_S = 0.05
BUFFER_MTUS = 80
MIX = [("vegas", 6), ("cubic", 1), ("bbr", 1)]
DURATION_S = 40.0


def params():
    return CebinaeParams.for_link(
        RATE_BPS, BUFFER_MTUS * 1500, max_rtt_ns=seconds(RTT_S),
        tau=0.05, delta_port=0.10, delta_flow=0.05,
        min_bottom_rate_fraction=0.02)


def run(label, queue_factory):
    sim = Simulator()
    mix = expand_mix(MIX)
    dumbbell = build_dumbbell([seconds(RTT_S)] * len(mix), RATE_BPS,
                              queue_factory, sim=sim)
    monitor = FlowMonitor(sim)
    flows = [connect_flow(dumbbell.senders[i], dumbbell.receivers[i],
                          cca, monitor=monitor, src_port=10_000 + i)
             for i, cca in enumerate(mix)]
    sim.run(until_ns=seconds(DURATION_S))
    goodputs = [monitor.goodputs_bps(seconds(DURATION_S))[f.flow_id]
                for f in flows]
    vegas = goodputs[:6]
    cubic, bbr = goodputs[6], goodputs[7]
    print(f"{label:>9}: vegas avg {sum(vegas) / 6 / 1e6:5.2f}  "
          f"cubic {cubic / 1e6:5.2f}  bbr {bbr / 1e6:5.2f}  "
          f"JFI {jain_fairness_index(goodputs):.3f}  "
          f"total {sum(goodputs) / 1e6:5.2f} Mbps")


def main():
    print(f"6 Vegas vs 1 Cubic vs 1 BBR over {RATE_BPS / 1e6:.0f} Mbps "
          f"(fair share {RATE_BPS / 8 / 1e6:.1f} Mbps/flow)\n")
    run("FIFO", lambda spec: DropTailQueue.from_mtu_count(BUFFER_MTUS))
    run("group", cebinae_factory(params=params(),
                                 buffer_mtus=BUFFER_MTUS))
    run("per-flow", perflow_cebinae_factory(params=params(),
                                            buffer_mtus=BUFFER_MTUS))
    controllers = []
    run("adaptive", adaptive_cebinae_factory(
        params=params(), buffer_mtus=BUFFER_MTUS,
        controllers=controllers))
    if controllers and controllers[0].adjustments:
        moves = ", ".join(
            f"τ→{tau:.3f} ({reason} @ {t / 1e9:.0f}s)"
            for t, tau, reason in controllers[0].adjustments)
        print(f"\nadaptive τ adjustments: {moves}")
    else:
        print("\nadaptive τ: no adjustment needed (stable run)")


if __name__ == "__main__":
    main()
