#!/usr/bin/env python3
"""BBR vs a crowd of NewReno flows (the paper's Figure 8a scenario).

BBRv1 ignores loss: it paces at its bandwidth estimate and keeps about
two bandwidth-delay products in flight, so against any number of
loss-based flows it holds far more than its fair share.  Cebinae
detects the BBR flows as bottlenecked heavy hitters and taxes them,
returning capacity to the NewReno crowd — no per-flow queues required.

Run:
    python examples/bbr_aggression.py
"""

from repro.core import CebinaeParams, cebinae_factory
from repro.fairness import jain_fairness_index
from repro.netsim import (DropTailQueue, FlowMonitor, Simulator,
                          build_dumbbell, seconds)
from repro.tcp import connect_flow, expand_mix

BOTTLENECK_BPS = 20e6
RTT_S = 0.05
BUFFER_MTUS = 85           # ~1 BDP at this scale.
NUM_RENO = 8
NUM_BBR = 1
DURATION_S = 40.0


def run(label, queue_factory):
    sim = Simulator()
    mix = expand_mix([("newreno", NUM_RENO), ("bbr", NUM_BBR)])
    dumbbell = build_dumbbell([seconds(RTT_S)] * len(mix),
                              BOTTLENECK_BPS, queue_factory, sim=sim)
    monitor = FlowMonitor(sim)
    flows = [connect_flow(dumbbell.senders[i], dumbbell.receivers[i],
                          cca, monitor=monitor, src_port=10_000 + i)
             for i, cca in enumerate(mix)]
    sim.run(until_ns=seconds(DURATION_S))
    goodputs = [monitor.goodputs_bps(seconds(DURATION_S))[f.flow_id]
                for f in flows]
    reno = goodputs[:NUM_RENO]
    bbr = goodputs[NUM_RENO:]
    fair = sum(goodputs) / len(goodputs)
    print(f"{label}:")
    print(f"  NewReno avg {sum(reno) / NUM_RENO / 1e6:5.2f} Mbps  "
          f"(min {min(reno) / 1e6:.2f})")
    print(f"  BBR     avg {sum(bbr) / NUM_BBR / 1e6:5.2f} Mbps  "
          f"({sum(bbr) / NUM_BBR / fair:.1f}x its fair share)")
    print(f"  JFI {jain_fairness_index(goodputs):.3f}, total "
          f"{sum(goodputs) / 1e6:.1f} Mbps\n")


def main():
    run("FIFO drop-tail",
        lambda spec: DropTailQueue.from_mtu_count(BUFFER_MTUS))
    params = CebinaeParams.for_link(
        BOTTLENECK_BPS, BUFFER_MTUS * 1500, max_rtt_ns=seconds(RTT_S),
        tau=0.05, delta_port=0.10, delta_flow=0.05,
        min_bottom_rate_fraction=0.02)
    run("Cebinae", cebinae_factory(params=params,
                                   buffer_mtus=BUFFER_MTUS))


if __name__ == "__main__":
    main()
