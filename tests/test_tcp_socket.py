"""Tests for the shared TCP machinery (sender/receiver/RTT estimator).

These tests run real mini-networks: a sender host, one link each way,
and a receiver host, with a controllable bottleneck.
"""

import pytest

from repro.netsim.engine import MILLISECOND, SECOND, Simulator, seconds
from repro.netsim.link import Link
from repro.netsim.node import Host
from repro.netsim.packet import MSS_BYTES, FlowId
from repro.netsim.queues import DropTailQueue
from repro.netsim.tracing import FlowMonitor
from repro.tcp.cca import INITIAL_CWND_SEGMENTS, CongestionControl
from repro.tcp.newreno import NewReno
from repro.tcp.socket import (MIN_RTO_NS, RttEstimator, TcpReceiver,
                              TcpSender)


def make_pair(sim, rate_bps=80e6, delay_ns=MILLISECOND,
              queue_packets=1000):
    """A two-host network with symmetric links."""
    a = Host(sim, 0, "a")
    b = Host(sim, 1, "b")
    fwd = Link(sim, a, b, rate_bps, delay_ns,
               DropTailQueue(limit_packets=queue_packets))
    rev = Link(sim, b, a, rate_bps, delay_ns,
               DropTailQueue(limit_packets=queue_packets))
    a.attach_link(fwd)
    b.attach_link(rev)
    a.routes[1] = fwd
    b.routes[0] = rev
    return a, b, fwd, rev


def make_connection(sim, cca=None, max_bytes=None, **net_kwargs):
    a, b, fwd, rev = make_pair(sim, **net_kwargs)
    flow = FlowId(0, 1, 100, 80)
    monitor = FlowMonitor(sim)
    receiver = TcpReceiver(b, flow, monitor=monitor)
    sender = TcpSender(a, flow, cca or NewReno(),
                       max_bytes=max_bytes)
    return sender, receiver, fwd, monitor


class TestRttEstimator:
    def test_first_sample_initialises(self):
        est = RttEstimator()
        est.observe(100 * MILLISECOND)
        assert est.srtt_ns == 100 * MILLISECOND
        assert est.rttvar_ns == 50 * MILLISECOND

    def test_smoothing(self):
        est = RttEstimator()
        est.observe(100 * MILLISECOND)
        est.observe(200 * MILLISECOND)
        # srtt = 7/8*100 + 1/8*200 = 112.5 ms.
        assert est.srtt_ns == pytest.approx(112.5 * MILLISECOND, rel=.01)

    def test_rto_floor(self):
        est = RttEstimator()
        est.observe(1 * MILLISECOND)
        assert est.rto_ns >= MIN_RTO_NS

    def test_backoff_doubles(self):
        est = RttEstimator()
        est.observe(100 * MILLISECOND)
        before = est.rto_ns
        est.backoff()
        assert est.rto_ns == 2 * before


class TestBasicTransfer:
    def test_finite_transfer_completes(self):
        sim = Simulator()
        sender, receiver, _, _ = make_connection(
            sim, max_bytes=50 * MSS_BYTES)
        sender.start()
        sim.run(until_ns=seconds(5))
        assert sender.completed
        assert receiver.delivered_bytes == 50 * MSS_BYTES

    def test_completion_callback(self):
        sim = Simulator()
        done = []
        a, b, _, _ = make_pair(sim)
        flow = FlowId(0, 1, 100, 80)
        TcpReceiver(b, flow)
        sender = TcpSender(a, flow, NewReno(),
                           max_bytes=5 * MSS_BYTES,
                           on_complete=lambda: done.append(sim.now_ns))
        sender.start()
        sim.run(until_ns=seconds(2))
        assert len(done) == 1

    def test_initial_window_burst(self):
        sim = Simulator()
        sender, _, fwd, _ = make_connection(sim)
        sender.start()
        # Before any ACK returns, exactly IW segments are in flight.
        assert sender.in_flight_bytes == \
            INITIAL_CWND_SEGMENTS * MSS_BYTES

    def test_goodput_reaches_link_rate(self):
        sim = Simulator()
        sender, receiver, fwd, monitor = make_connection(
            sim, rate_bps=10e6, queue_packets=100)
        sender.start()
        sim.run(until_ns=seconds(10))
        goodput = receiver.delivered_bytes * 8 / 10
        assert goodput > 0.9 * 10e6

    def test_delivery_is_in_order(self):
        sim = Simulator()
        deliveries = []
        a, b, _, _ = make_pair(sim, rate_bps=10e6, queue_packets=20)
        flow = FlowId(0, 1, 100, 80)
        receiver = TcpReceiver(b, flow)
        original = receiver._deliver

        def spy(payload):
            deliveries.append(receiver.rcv_nxt)
            original(payload)

        receiver._deliver = spy
        sender = TcpSender(a, flow, NewReno())
        sender.start()
        sim.run(until_ns=seconds(3))
        assert deliveries == sorted(deliveries)


class TestSlowStart:
    def test_cwnd_doubles_per_rtt(self):
        sim = Simulator()
        sender, _, _, _ = make_connection(sim, rate_bps=1e9,
                                          delay_ns=10 * MILLISECOND)
        sender.start()
        sim.run(until_ns=seconds(0.021 * 3))
        # After ~3 RTTs of slow start the window should have grown
        # several-fold (ABC: +1 MSS per full-MSS ACK).
        assert sender.cca.cwnd_bytes >= 4 * INITIAL_CWND_SEGMENTS \
            * MSS_BYTES


class TestLossRecovery:
    def test_fast_retransmit_on_triple_dupack(self):
        sim = Simulator()
        # Tiny queue forces a loss burst once cwnd exceeds it.
        sender, receiver, _, _ = make_connection(
            sim, rate_bps=10e6, queue_packets=15)
        sender.start()
        sim.run(until_ns=seconds(5))
        assert sender.retransmits > 0
        # Fast retransmit, not timeout, should dominate recovery.
        assert sender.timeouts <= sender.retransmits

    def test_recovery_halves_window(self):
        sim = Simulator()
        sender, _, _, _ = make_connection(sim, rate_bps=5e6,
                                          queue_packets=10)
        sender.start()
        events = []
        cca = sender.cca
        original = cca.on_enter_recovery

        def spy(in_flight, now):
            before = cca.cwnd_bytes
            original(in_flight, now)
            events.append((before, cca.cwnd_bytes))

        cca.on_enter_recovery = spy
        sim.run(until_ns=seconds(5))
        assert events, "expected at least one recovery episode"
        for before, after in events:
            assert after <= before

    def test_rto_fires_when_all_acks_lost(self):
        sim = Simulator()
        a, b, fwd, rev = make_pair(sim, rate_bps=10e6)
        flow = FlowId(0, 1, 100, 80)
        TcpReceiver(b, flow)
        sender = TcpSender(a, flow, NewReno())
        # Break the forward path after the initial burst: every packet
        # sent is silently dropped.
        sender.start()
        fwd.queue.enqueue = lambda packet: False
        sim.run(until_ns=seconds(3))
        assert sender.timeouts >= 1
        # Exponential backoff: later timeouts are spaced further apart.
        assert sender.rtt.rto_ns > MIN_RTO_NS

    def test_sender_recovers_after_blackout(self):
        sim = Simulator()
        a, b, fwd, rev = make_pair(sim, rate_bps=10e6)
        flow = FlowId(0, 1, 100, 80)
        receiver = TcpReceiver(b, flow)
        sender = TcpSender(a, flow, NewReno())
        sender.start()
        real_enqueue = fwd.queue.enqueue
        fwd.queue.enqueue = lambda packet: False
        sim.run(until_ns=seconds(1))
        fwd.queue.enqueue = real_enqueue
        sim.run(until_ns=seconds(8))
        assert receiver.delivered_bytes > 100 * MSS_BYTES


class TestKarnsAlgorithm:
    def test_no_rtt_sample_from_retransmitted_range(self):
        sim = Simulator()
        sender, _, _, _ = make_connection(sim, rate_bps=10e6,
                                          queue_packets=10)
        samples = []
        original = sender.rtt.observe

        def spy(rtt_ns):
            samples.append(rtt_ns)
            original(rtt_ns)

        sender.rtt.observe = spy
        sender.start()
        sim.run(until_ns=seconds(5))
        assert sender.retransmits > 0
        # All collected samples must be plausible (>= the 2 ms base
        # RTT): a sample measured against a retransmission would be
        # wildly off.
        for sample in samples:
            assert sample >= 2 * MILLISECOND


class TestCloseAndHygiene:
    def test_close_releases_handler(self):
        sim = Simulator()
        sender, receiver, _, _ = make_connection(sim)
        sender.close()
        receiver.close()
        a = sender.host
        assert a._handlers == {}

    def test_sender_does_not_send_after_completion(self):
        sim = Simulator()
        sender, _, _, _ = make_connection(sim, max_bytes=MSS_BYTES)
        sender.start()
        sim.run(until_ns=seconds(2))
        sent = sender.sent_segments
        sim.run(until_ns=seconds(4))
        assert sender.sent_segments == sent
