"""simlint: per-rule must-flag / must-pass fixtures, suppression
semantics, CLI behaviour, and the self-check that the repository's own
sources are clean."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import RULES, lint_paths, lint_source
from repro.analysis.rules import CHECKER_RULE_IDS

REPO_ROOT = Path(__file__).resolve().parent.parent
SIMLINT = REPO_ROOT / "tools" / "simlint.py"


def findings_for(source, rule_id=None):
    found = lint_source(textwrap.dedent(source), path="fixture.py")
    if rule_id is None:
        return found
    return [f for f in found if f.rule_id == rule_id]


def rule_ids(source):
    return {f.rule_id for f in findings_for(source)}


# -- D101: builtin hash() ------------------------------------------------------

def test_d101_flags_builtin_hash():
    found = findings_for("""
        def bucket(flow, n):
            return hash(flow) % n
    """, "D101")
    assert len(found) == 1
    assert found[0].line == 3


def test_d101_flags_the_pr1_fq_codel_bug():
    # The exact shape of the hash-bucketing bug fixed in PR 1: builtin
    # hash() of a FlowId varies per process under PYTHONHASHSEED.
    found = findings_for("""
        class FqCoDelQueueDisc:
            def _bucket(self, flow):
                return hash(flow) % self.num_queues
    """, "D101")
    assert len(found) == 1


def test_d101_passes_stable_hash():
    assert not findings_for("""
        def bucket(flow, n):
            return flow.stable_hash() % n
    """, "D101")


# -- D102: unseeded randomness -------------------------------------------------

def test_d102_flags_global_random():
    assert findings_for("""
        import random

        def jitter():
            return random.random()
    """, "D102")


def test_d102_flags_unseeded_constructor():
    assert findings_for("""
        import random

        rng = random.Random()
    """, "D102")


def test_d102_passes_seeded_constructor():
    assert not findings_for("""
        import random

        rng = random.Random(42)

        def jitter():
            return rng.random()
    """, "D102")


# -- D103: wall-clock reads ----------------------------------------------------

def test_d103_flags_wall_clock():
    source = """
        import time

        def now():
            return time.time()
    """
    assert findings_for(source, "D103")


def test_d103_flags_monotonic_without_allow():
    assert findings_for("""
        import time

        def stamp():
            return time.monotonic()
    """, "D103")


def test_d103_respects_allow_comment():
    found = findings_for("""
        import time

        def stamp():
            return time.monotonic()  # simlint: allow[D103] CLI timer
    """)
    assert not [f for f in found if f.rule_id == "D103"]


# -- D104: set iteration order -------------------------------------------------

def test_d104_flags_for_over_set():
    assert findings_for("""
        def drop(active):
            finished = set()
            for flow in finished & active:
                del active[flow]
    """, "D104")


def test_d104_flags_annotated_set_param():
    assert findings_for("""
        from typing import Set

        def drop(active, finished: Set[int]):
            for flow in finished:
                del active[flow]
    """, "D104")


def test_d104_flags_list_of_set():
    assert findings_for("""
        def order(flows):
            tracked = set(flows)
            return list(tracked)
    """, "D104")


def test_d104_passes_sorted_and_aggregates():
    assert not findings_for("""
        def order(flows):
            tracked = set(flows)
            total = sum(tracked)
            return sorted(tracked), total, len(tracked), max(tracked)
    """, "D104")


# -- U201: float into the integer-ns clock -------------------------------------

def test_u201_flags_float_delay():
    assert findings_for("""
        def arm(sim, rtt_ns):
            sim.schedule(rtt_ns * 1.5, lambda: None)
    """, "U201")


def test_u201_flags_true_division_into_ns():
    assert findings_for("""
        def half(interval_ns):
            next_ns = interval_ns / 2
            return next_ns
    """, "U201")


def test_u201_passes_int_cleansed():
    assert not findings_for("""
        def arm(sim, rtt_ns):
            sim.schedule(int(rtt_ns * 1.5), lambda: None)
            next_ns = interval_ns // 2
    """, "U201")


# -- U202: unit-suffix mismatches ----------------------------------------------

def test_u202_flags_suffix_mismatch():
    assert findings_for("""
        def configure(run):
            run(timeout_ns=duration_seconds)
    """, "U202")


def test_u202_passes_matching_suffixes():
    assert not findings_for("""
        def configure(run):
            run(timeout_ns=duration_ns, budget_seconds=limit_seconds)
    """, "U202")


# -- H301: mutable defaults ----------------------------------------------------

def test_h301_flags_mutable_default():
    assert findings_for("""
        def collect(items=[]):
            return items
    """, "H301")


def test_h301_passes_none_default():
    assert not findings_for("""
        def collect(items=None):
            return items or []
    """, "H301")


# -- H302: shadowed module names -----------------------------------------------

def test_h302_flags_shadowed_module_def():
    assert findings_for("""
        import random

        def roll():
            random = 3
            return random
    """, "H302")


# -- suppression hygiene -------------------------------------------------------

def test_s901_requires_a_reason():
    found = findings_for("""
        import time

        def stamp():
            return time.time()  # simlint: allow[D103]
    """)
    ids = {f.rule_id for f in found}
    assert "S901" in ids
    assert "D103" not in ids  # Suppression still applies.


def test_s902_flags_stale_suppression():
    found = findings_for("""
        def quiet():
            return 1  # simlint: allow[D101] historical reasons
    """)
    assert {f.rule_id for f in found} == {"S902"}


def test_s903_flags_unknown_rule_id():
    found = findings_for("""
        def quiet():
            return 1  # simlint: allow[D999] typo'd rule id
    """)
    ids = {f.rule_id for f in found}
    assert "S903" in ids
    # The typo'd comment also matches nothing, so it is stale too.
    assert "S902" in ids


def test_select_skips_suppression_hygiene():
    found = lint_source(
        "x = 1  # simlint: allow[D101] nothing here\n",
        path="fixture.py", select={"D103"})
    assert found == []


# -- E901 ----------------------------------------------------------------------

def test_e901_on_syntax_error():
    found = findings_for("def broken(:\n")
    assert [f.rule_id for f in found] == ["E901"]


# -- catalog sanity ------------------------------------------------------------

def test_every_checker_rule_has_a_must_flag_fixture():
    # Each D/U/H rule has at least one must-flag case — the local
    # rules above, the cross-module ones in test_taint.py and
    # test_unitcheck.py (over tests/lint_fixtures/).  This pins the
    # catalog so adding a rule without a fixture fails loudly.
    assert set(CHECKER_RULE_IDS) == {
        "D101", "D102", "D103", "D104", "D201", "D202",
        "U201", "U202", "U401", "U402", "U403", "U404",
        "H301", "H302"}


def test_rules_have_ids_hints_and_series():
    for rule_id, rule in RULES.items():
        assert rule.rule_id == rule_id
        assert rule.hint
        assert rule.series in "DUHSE"


# -- the repository's own sources are clean ------------------------------------

def test_self_check_src_is_clean():
    findings = lint_paths([str(REPO_ROOT / "src")])
    assert findings == [], "\n".join(f.render() for f in findings)


# -- CLI behaviour -------------------------------------------------------------

def run_cli(args, cwd=None):
    return subprocess.run(
        [sys.executable, str(SIMLINT), *args],
        capture_output=True, text=True, cwd=cwd or str(REPO_ROOT))


def test_cli_exit_zero_on_clean_tree():
    result = run_cli(["src"])
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 findings" in result.stdout


def test_cli_exit_one_with_rule_ids_on_dirty_file(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(textwrap.dedent("""\
        import time

        def bucket(flow, n, mutable=[]):
            stamp = time.time()
            return hash(flow) % n
    """))
    result = run_cli([str(dirty)])
    assert result.returncode == 1
    for rule_id in ("D101", "D103", "H301"):
        assert rule_id in result.stdout


def test_cli_json_mode(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(flow):\n    return hash(flow)\n")
    result = run_cli(["--json", str(dirty)])
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload[0]["rule"] == "D101"
    assert payload[0]["line"] == 2
    assert payload[0]["hint"]


def test_cli_rejects_unknown_select():
    result = run_cli(["--select", "D999", "src"])
    assert result.returncode == 2


def test_cli_list_rules():
    result = run_cli(["--list-rules"])
    assert result.returncode == 0
    for rule_id in CHECKER_RULE_IDS:
        assert rule_id in result.stdout


def test_cebinae_repro_lint_subcommand(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(flow):\n    return hash(flow)\n")
    from repro.experiments.cli import main
    assert main(["lint", str(dirty)]) == 1
    assert main(["lint", "--select", "D102", str(dirty)]) == 0
