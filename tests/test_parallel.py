"""The generic executor: fingerprints, retries, and failure sentinels.

Covers the machinery under ``run_many``: stable cache keys that react
to every result-relevant parameter, a retry that rescues transient
failures, and graceful degradation to :class:`FailedRun` sentinels
that never take the rest of the sweep down.
"""

import dataclasses

import pytest

from repro.experiments import cli
from repro.experiments.parallel import (FailedRun, RunSpec, Task,
                                        fingerprint, require, run_tasks)
from repro.experiments.runner import Discipline
from repro.experiments.scenarios import ScalePolicy, ScenarioSpec

TINY_POLICY = ScalePolicy(target_rate_bps=5e6, max_rate_bps=5e6)


def tiny_scaled(name="fp", duration_s=2.0, tau=0.01):
    spec = ScenarioSpec(name=name, rate_bps=100e6, rtts_ms=(20, 30),
                        buffer_mtus=60,
                        cca_mix=(("newreno", 1), ("newreno", 1)),
                        duration_s=duration_s)
    scaled = TINY_POLICY.apply(spec)
    return dataclasses.replace(
        scaled, cebinae=dataclasses.replace(scaled.cebinae, tau=tau))


class TestFingerprints:
    def test_identical_specs_share_a_fingerprint(self):
        a = RunSpec(tiny_scaled(), Discipline.FIFO)
        b = RunSpec(tiny_scaled(), Discipline.FIFO)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("other", [
        RunSpec(tiny_scaled(), Discipline.CEBINAE),
        RunSpec(tiny_scaled(), Discipline.FIFO, seed=1),
        RunSpec(tiny_scaled(), Discipline.FIFO, collect_series=True),
        RunSpec(tiny_scaled(duration_s=3.0), Discipline.FIFO),
        RunSpec(tiny_scaled(tau=0.2), Discipline.FIFO),
    ])
    def test_any_parameter_change_changes_the_fingerprint(self, other):
        base = RunSpec(tiny_scaled(), Discipline.FIFO)
        assert other.fingerprint() != base.fingerprint()

    def test_kind_partitions_the_key_space(self):
        params = {"x": 1}
        assert fingerprint("A", params) != fingerprint("B", params)

    def test_unserialisable_params_are_rejected(self):
        with pytest.raises(TypeError):
            fingerprint("A", {"fn": object()})


def _ok(value):
    return {"value": value}


def _passthrough_task(fn, label, **kwargs):
    return Task(fn=fn, kwargs=kwargs, label=label,
                encode=lambda v: v, decode=lambda p: p)


class TestFailureHandling:
    def test_persistent_failure_becomes_a_sentinel(self):
        def boom(value):
            raise ValueError(f"no {value}")

        tasks = [_passthrough_task(_ok, "good-0", value=0),
                 _passthrough_task(boom, "bad", value=1),
                 _passthrough_task(_ok, "good-2", value=2)]
        results = run_tasks(tasks, workers=1, progress=None)
        # The sweep survives: neighbours of the crashing task complete.
        assert results[0] == {"value": 0}
        assert results[2] == {"value": 2}
        failed = results[1]
        assert isinstance(failed, FailedRun)
        assert failed.label == "bad"
        assert failed.attempts == 2  # first try + one retry
        assert "no 1" in failed.error
        with pytest.raises(RuntimeError, match="bad"):
            require(failed)

    def test_retry_rescues_a_transient_failure(self):
        attempts = []

        def flaky(value):
            attempts.append(value)
            if len(attempts) == 1:
                raise OSError("transient")
            return {"value": value}

        messages = []
        results = run_tasks([_passthrough_task(flaky, "flaky", value=9)],
                            workers=1, progress=messages.append)
        assert results == [{"value": 9}]
        assert len(attempts) == 2
        assert any("retry" in message for message in messages)

    def test_retries_zero_fails_immediately(self):
        def boom():
            raise ValueError("nope")

        results = run_tasks([_passthrough_task(boom, "boom")],
                            workers=1, retries=0, progress=None)
        assert isinstance(results[0], FailedRun)
        assert results[0].attempts == 1


class TestCliFlags:
    def test_pool_flags_reach_run_experiment(self, monkeypatch, capsys):
        seen = {}

        def fake_run(name, **kwargs):
            seen.update(kwargs, name=name)
            return "ok"

        monkeypatch.setattr(cli, "run_experiment", fake_run)
        assert cli.main(["table3", "--workers", "2", "--no-cache"]) == 0
        assert seen["name"] == "table3"
        assert seen["workers"] == 2
        assert seen["use_cache"] is False
        assert seen["cache_dir"] == ".cebinae-cache"
        assert "ok" in capsys.readouterr().out

    def test_cache_enabled_by_default(self, monkeypatch, capsys):
        seen = {}
        monkeypatch.setattr(
            cli, "run_experiment",
            lambda name, **kwargs: seen.update(kwargs) or "ok")
        cli.main(["table3", "--cache-dir", "/tmp/somewhere"])
        assert seen["use_cache"] is True
        assert seen["cache_dir"] == "/tmp/somewhere"
