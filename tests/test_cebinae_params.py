"""Tests for CebinaeParams (Table 1) and its derivation rules."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.params import CebinaeParams
from repro.netsim.engine import MICROSECOND, MILLISECOND, SECOND


class TestValidation:
    def test_defaults_are_paper_values(self):
        params = CebinaeParams()
        assert params.delta_port == 0.01
        assert params.delta_flow == 0.01
        assert params.tau == 0.01

    def test_vdt_must_be_smaller_than_dt(self):
        with pytest.raises(ValueError):
            CebinaeParams(dt_ns=MILLISECOND, vdt_ns=MILLISECOND)

    def test_l_bounded_by_dt_minus_vdt(self):
        with pytest.raises(ValueError):
            CebinaeParams(dt_ns=10 * MILLISECOND, vdt_ns=MILLISECOND,
                          l_ns=10 * MILLISECOND)

    def test_l_at_exact_bound_allowed(self):
        CebinaeParams(dt_ns=10 * MILLISECOND, vdt_ns=MILLISECOND,
                      l_ns=9 * MILLISECOND)

    def test_tau_range(self):
        with pytest.raises(ValueError):
            CebinaeParams(tau=-0.1)
        with pytest.raises(ValueError):
            CebinaeParams(tau=1.5)
        CebinaeParams(tau=1.0)  # Figure 12 sweeps to 100%.

    def test_p_at_least_one(self):
        with pytest.raises(ValueError):
            CebinaeParams(recompute_rounds=0)

    def test_min_bottom_fraction_range(self):
        with pytest.raises(ValueError):
            CebinaeParams(min_bottom_rate_fraction=1.0)
        CebinaeParams(min_bottom_rate_fraction=0.0)


class TestEquationTwo:
    def test_min_dt_formula(self):
        params = CebinaeParams(dt_ns=SECOND, vdt_ns=MILLISECOND,
                               l_ns=MILLISECOND)
        # 125 kB at 10 Mbps drains in 100 ms.
        expected = 100 * MILLISECOND + 2 * MILLISECOND
        assert params.min_dt_ns(10e6, 125_000) == expected

    def test_validate_for_link_rejects_small_dt(self):
        params = CebinaeParams(dt_ns=50 * MILLISECOND,
                               vdt_ns=MILLISECOND, l_ns=MILLISECOND)
        with pytest.raises(ValueError):
            params.validate_for_link(10e6, 125_000)

    def test_validate_for_link_accepts_large_dt(self):
        params = CebinaeParams(dt_ns=200 * MILLISECOND,
                               vdt_ns=MILLISECOND, l_ns=MILLISECOND)
        params.validate_for_link(10e6, 125_000)


class TestDerivation:
    def test_for_link_satisfies_equation_two(self):
        params = CebinaeParams.for_link(100e6, 500_000)
        params.validate_for_link(100e6, 500_000)

    def test_dt_is_multiple_of_vdt(self):
        params = CebinaeParams.for_link(100e6, 500_000)
        assert params.dt_ns % params.vdt_ns == 0

    def test_p_covers_max_rtt(self):
        params = CebinaeParams.for_link(100e6, 500_000,
                                        max_rtt_ns=SECOND)
        assert params.recompute_interval_ns >= SECOND

    def test_overrides_apply(self):
        params = CebinaeParams.for_link(100e6, 500_000, tau=0.05)
        assert params.tau == 0.05

    @given(st.floats(min_value=1e6, max_value=1e10),
           st.integers(min_value=10_000, max_value=10_000_000))
    def test_derivation_always_valid(self, rate_bps, buffer_bytes):
        params = CebinaeParams.for_link(rate_bps, buffer_bytes)
        params.validate_for_link(rate_bps, buffer_bytes)


class TestConvergenceModel:
    def test_paper_example(self):
        """Section 3.2 example (2): excess 3/2 at tau=1% needs
        ln(2/3)/ln(0.99) ~ 40 steps."""
        params = CebinaeParams(tau=0.01)
        expected = math.log(2 / 3) / math.log(0.99)
        assert params.convergence_steps(1.5) == pytest.approx(expected)

    def test_higher_tax_converges_faster(self):
        slow = CebinaeParams(tau=0.01).convergence_steps(2.0)
        fast = CebinaeParams(tau=0.05).convergence_steps(2.0)
        assert fast < slow

    def test_zero_tax_never_converges(self):
        assert CebinaeParams(tau=0.0).convergence_steps(2.0) == math.inf
