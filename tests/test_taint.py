"""The project-wide determinism-taint pass (D2xx).

Runs over the on-disk fixture packages in ``tests/lint_fixtures``:
``taint_chain`` (source → helper → sink across three modules, via
relative from-imports) must yield exactly one D201 and one D202 with
the full call chain; ``taint_clean`` (same shape, reasoned allow
comment on the source) must yield none — a suppression at either end
certifies the whole chain.
"""

import textwrap
from pathlib import Path

from repro.analysis import lint_paths, lint_source

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"


def d2xx(findings):
    return [f for f in findings if f.rule_id.startswith("D2")]


def test_taint_chain_reports_both_ends_once():
    found = d2xx(lint_paths([str(FIXTURES / "taint_chain")]))
    assert [f.rule_id for f in found] == ["D202", "D201"]
    source, sink = found
    assert Path(source.path).name == "clocks.py"
    assert Path(sink.path).name == "engine_use.py"


def test_taint_chain_messages_carry_the_call_chain():
    found = d2xx(lint_paths([str(FIXTURES / "taint_chain")]))
    source = next(f for f in found if f.rule_id == "D202")
    sink = next(f for f in found if f.rule_id == "D201")
    assert "drive -> mixed_delay -> jitter" in sink.message
    assert "jitter <- mixed_delay <- drive" in source.message
    assert "Simulator.schedule()" in source.message
    assert "wall-clock" in sink.message


def test_taint_findings_link_the_other_end():
    found = d2xx(lint_paths([str(FIXTURES / "taint_chain")]))
    sink = next(f for f in found if f.rule_id == "D201")
    source = next(f for f in found if f.rule_id == "D202")
    assert sink.related and len(sink.related) == 1
    related_path, related_line, note = sink.related[0]
    assert Path(related_path).name == "clocks.py"
    assert related_line == source.line
    assert note.startswith("source")
    assert source.related and \
        Path(source.related[0][0]).name == "engine_use.py"


def test_suppressed_source_stops_the_whole_chain():
    found = lint_paths([str(FIXTURES / "taint_clean")])
    assert not d2xx(found)
    # ... and the allow comment is counted as used, not stale.
    assert not [f for f in found if f.rule_id == "S902"]


def test_single_module_chain_via_lint_source():
    found = lint_source(textwrap.dedent("""
        import time


        def stamp():
            return time.monotonic()


        def drive(sim):
            sim.schedule(int(stamp()), print)
    """), path="one.py")
    ids = [f.rule_id for f in found]
    assert "D201" in ids and "D202" in ids


def test_self_method_edges_connect():
    found = lint_source(textwrap.dedent("""
        import time


        class Driver:
            def noisy(self):
                return time.monotonic()

            def arm(self, sim):
                sim.schedule(int(self.noisy()), print)
    """), path="cls.py")
    ids = [f.rule_id for f in found]
    assert "D201" in ids and "D202" in ids


def test_sink_without_any_source_is_silent():
    found = lint_source(textwrap.dedent("""
        def drive(sim, delay_ns):
            sim.schedule(delay_ns, print)
    """), path="quiet.py")
    assert not d2xx(found)


def test_source_without_a_reachable_sink_is_local_only():
    # The D103 stays; no taint findings appear for unreachable code.
    found = lint_source(textwrap.dedent("""
        import time


        def stamp():
            return time.monotonic()
    """), path="loose.py")
    assert [f.rule_id for f in found] == ["D103"]


def test_taint_output_is_stable_across_runs():
    first = [f.render() for f in
             lint_paths([str(FIXTURES / "taint_chain")])]
    second = [f.render() for f in
              lint_paths([str(FIXTURES / "taint_chain")])]
    assert first == second
