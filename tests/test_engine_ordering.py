"""Property-based test of the engine's event-ordering invariant.

Deterministic replay — and with it the parallel executor's
serial-equals-parallel guarantee — rests on the engine firing events
in nondecreasing time order with FIFO tie-breaking by insertion
sequence, regardless of scheduler backend internals or cancellations.
Hypothesis searches for batches that violate it, against both the
binary-heap and calendar-queue backends.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.engine import Simulator

SCHEDULER_NAMES = ["heap", "calendar"]

# Small time range to force plenty of same-timestamp ties.
EVENT_BATCH = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40),  # time_ns
              st.booleans()),                          # cancelled?
    min_size=0, max_size=120)


@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
@settings(deadline=None, max_examples=200)
@given(batch=EVENT_BATCH)
def test_events_fire_in_time_then_fifo_order(scheduler, batch):
    sim = Simulator(scheduler=scheduler)
    fired = []
    events = []
    for index, (time_ns, cancel) in enumerate(batch):
        events.append((sim.schedule_at(time_ns, fired.append, index),
                       time_ns, cancel))
    for event, _, cancel in events:
        if cancel:
            event.cancel()

    sim.run()

    live = [(time_ns, index)
            for index, (_, time_ns, cancel) in enumerate(events)
            if not cancel]
    # Nondecreasing time, FIFO among equal timestamps: exactly a
    # stable sort of the surviving batch by timestamp.
    expected = [index for _, index in
                sorted(live, key=lambda pair: pair[0])]
    assert fired == expected
    assert sim.processed_events == len(expected)


@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
@settings(deadline=None, max_examples=100)
@given(batch=EVENT_BATCH, delay=st.integers(min_value=1, max_value=10))
def test_ordering_holds_for_events_scheduled_mid_run(scheduler, batch,
                                                     delay):
    """Events scheduled from inside callbacks obey the same order."""
    sim = Simulator(scheduler=scheduler)
    firings = []  # (clock at firing, tag)

    def chain(tag):
        firings.append((sim.now_ns, tag))
        if tag < 2:  # Original events spawn two generations.
            sim.schedule(delay, chain, tag + 1)

    for time_ns, cancel in batch:
        event = sim.schedule_at(time_ns, chain, 0)
        if cancel:
            event.cancel()
    sim.run()

    clocks = [clock for clock, _ in firings]
    # The engine clock never steps backwards across firings, even with
    # events injected mid-run.
    assert clocks == sorted(clocks)
    live = sum(1 for _, cancel in batch if not cancel)
    assert sim.processed_events == len(firings) == 3 * live


@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
@settings(deadline=None, max_examples=100)
@given(times=st.lists(st.integers(min_value=0, max_value=40),
                      min_size=0, max_size=80),
       rng=st.randoms(use_true_random=False))
def test_cancellation_is_exact(scheduler, times, rng):
    """Exactly the non-cancelled events fire, in stable-sort order."""
    sim = Simulator(scheduler=scheduler)
    fired = []
    events = [sim.schedule_at(t, fired.append, i)
              for i, t in enumerate(times)]
    cancelled = {i for i in range(len(events)) if rng.random() < 0.5}
    for i in cancelled:
        events[i].cancel()
    sim.run()
    expected = [i for _, i in
                sorted(((t, i) for i, t in enumerate(times)
                        if i not in cancelled),
                       key=lambda pair: pair[0])]
    assert fired == expected
